//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the item shapes this
//! workspace uses: non-generic named-field structs, tuple structs, and
//! enums with unit or tuple variants, plus the `#[serde(skip)]` and
//! `#[serde(with = "module")]` field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("derive generated invalid Rust; this is a bug in serde_derive"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! always parses"),
    }
}

// ---------------------------------------------------------------- model

enum FieldAttr {
    Plain,
    Skip,
    With(String),
}

struct Field {
    name: String,
    attr: FieldAttr,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// --------------------------------------------------------------- parser

fn parse_item(ts: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;

    while is_attr(&toks, i) {
        i += 2;
    }
    skip_vis(&toks, &mut i);

    let kw = expect_ident(&toks, i)?;
    i += 1;
    let name = expect_ident(&toks, i)?;
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive shim: generic type {name} not supported"));
    }

    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::Named(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::Tuple(count_top_level_fields(g.stream())),
            }),
            _ => Ok(Item {
                name,
                shape: Shape::Unit,
            }),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::Enum(variants),
                })
            }
            _ => Err(format!("serde_derive shim: malformed enum {name}")),
        },
        other => Err(format!("serde_derive shim: cannot derive for `{other}` items")),
    }
}

fn is_attr(toks: &[TokenTree], i: usize) -> bool {
    matches!(
        (toks.get(i), toks.get(i + 1)),
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) if p.as_char() == '#'
    )
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: usize) -> Result<String, String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("serde_derive shim: expected identifier, got {other:?}")),
    }
}

/// Parses a `#[...]` attribute group at `toks[i]`, returning a field
/// attribute if it is a `serde` helper; `None` for doc comments etc.
fn parse_field_attr(toks: &[TokenTree], i: usize) -> Result<Option<FieldAttr>, String> {
    let TokenTree::Group(g) = &toks[i + 1] else {
        return Ok(None);
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return Err("serde_derive shim: bare #[serde] attribute".into());
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "skip" => Ok(Some(FieldAttr::Skip)),
        Some(TokenTree::Ident(id)) if id.to_string() == "with" => {
            let Some(TokenTree::Literal(lit)) = args.get(2) else {
                return Err("serde_derive shim: expected #[serde(with = \"path\")]".into());
            };
            let raw = lit.to_string();
            let path = raw.trim_matches('"').to_string();
            Ok(Some(FieldAttr::With(path)))
        }
        other => Err(format!(
            "serde_derive shim: unsupported serde attribute {other:?}"
        )),
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attr = FieldAttr::Plain;
        while is_attr(&toks, i) {
            if let Some(a) = parse_field_attr(&toks, i)? {
                attr = a;
            }
            i += 2;
        }
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, i)?;
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive shim: expected `:` after field {name}, got {other:?}")),
        }
        skip_type_until_comma(&toks, &mut i);
        fields.push(Field { name, attr });
    }
    Ok(fields)
}

/// Advances past a type (and an optional trailing comma), treating commas
/// inside angle brackets as part of the type.
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_top_level_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // A trailing comma does not start another field.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < toks.len() => {
                count += 1
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_attr(&toks, i) {
            i += 2;
        }
        let name = expect_ident(&toks, i)?;
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                arity = count_top_level_fields(g.stream());
                i += 1;
            } else {
                return Err(format!(
                    "serde_derive shim: struct variant {name} not supported"
                ));
            }
        }
        // Skip an optional `= discriminant` and the trailing comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

// -------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => "::serde::value::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                match &f.attr {
                    FieldAttr::Skip => {}
                    FieldAttr::Plain => pushes.push_str(&format!(
                        "m.push((::serde::value::Value::Str(::std::string::String::from({fname:?})), ::serde::Serialize::to_value(&self.{fname})));\n"
                    )),
                    FieldAttr::With(path) => pushes.push_str(&format!(
                        "m.push((::serde::value::Value::Str(::std::string::String::from({fname:?})), {path}::serialize(&self.{fname})));\n"
                    )),
                }
            }
            format!("let mut m = ::std::vec::Vec::new();\n{pushes}::serde::value::Value::Map(m)")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::Str(::std::string::String::from({vname:?})),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..v.arity).map(|i| format!("f{i}")).collect();
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    arms.push_str(&format!(
                        "{name}::{vname}({}) => ::serde::value::Value::Map(vec![(::serde::value::Value::Str(::std::string::String::from({vname:?})), ::serde::value::Value::Seq(vec![{}]))]),\n",
                        binds.join(", "),
                        elems.join(", ")
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => format!("let _ = v; ::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                .collect();
            format!(
                "let xs = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", {name:?}))?;\n\
                 if xs.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element sequence\", {name:?})); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                match &f.attr {
                    FieldAttr::Skip => inits.push_str(&format!(
                        "{fname}: ::std::default::Default::default(),\n"
                    )),
                    FieldAttr::Plain => inits.push_str(&format!(
                        "{fname}: ::serde::Deserialize::from_value(::serde::value::field(m, {fname:?}))?,\n"
                    )),
                    FieldAttr::With(path) => inits.push_str(&format!(
                        "{fname}: {path}::deserialize(::serde::value::field(m, {fname:?}))?,\n"
                    )),
                }
            }
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                if v.arity == 0 {
                    unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                } else {
                    let n = v.arity;
                    let elems: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                        .collect();
                    data_arms.push_str(&format!(
                        "{vname:?} => {{\n\
                           let xs = _payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"payload sequence\", {name:?}))?;\n\
                           if xs.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element payload\", {name:?})); }}\n\
                           ::std::result::Result::Ok({name}::{vname}({}))\n\
                         }}\n",
                        elems.join(", ")
                    ));
                }
            }
            format!(
                "match v {{\n\
                   ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\
                     other => ::std::result::Result::Err(::serde::Error(format!(\"unknown variant {{other}} for {name}\"))),\n\
                   }},\n\
                   ::serde::value::Value::Map(m) if m.len() == 1 => {{\n\
                     let (k, _payload) = &m[0];\n\
                     match k.as_str().unwrap_or(\"\") {{\n\
                       {data_arms}\
                       other => ::std::result::Result::Err(::serde::Error(format!(\"unknown variant {{other}} for {name}\"))),\n\
                     }}\n\
                   }}\n\
                   _ => ::std::result::Result::Err(::serde::Error::expected(\"variant\", {name:?})),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

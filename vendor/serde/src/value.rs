//! The owned value tree all (de)serialization flows through.

use std::cmp::Ordering;

/// A JSON-shaped value tree.
///
/// Integer variants are kept separate from floats so `u64`/`i64` fields
/// round-trip exactly; `U128` exists solely for wide bitmap fields (e.g.
/// the 128-chunk buffer map).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Wide unsigned integer (for 128-bit bitmaps).
    U128(u128),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence of values.
    Seq(Vec<Value>),
    /// Key→value pairs, in insertion (or sorted, for hash maps) order.
    Map(Vec<(Value, Value)>),
}

/// A static `null` to hand out when a struct field is absent.
pub static NULL: Value = Value::Null;

impl Value {
    /// Signed view of any integer variant that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::U128(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Unsigned view of any non-negative integer variant.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::U128(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Wide unsigned view of any non-negative integer variant.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::U128(n) => Some(*n),
            Value::U64(n) => Some(*n as u128),
            Value::I64(n) => u128::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric view: any integer or float variant, as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::U128(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(xs) => Some(xs),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Total order over values, used to sort hash-map entries so emitted
    /// artifacts are byte-stable. Cross-variant order is by variant rank;
    /// floats use IEEE total order.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::I64(_) | Value::U64(_) | Value::U128(_) | Value::F64(_) => 2,
                Value::Str(_) => 3,
                Value::Seq(_) => 4,
                Value::Map(_) => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let c = ka.total_cmp(kb).then_with(|| va.total_cmp(vb));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) if rank(a) == 2 && rank(b) == 2 => match (a.as_u128(), b.as_u128()) {
                (Some(x), Some(y)) => x.cmp(&y),
                _ => a
                    .as_f64()
                    .unwrap_or(f64::NAN)
                    .total_cmp(&b.as_f64().unwrap_or(f64::NAN)),
            },
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Looks up `name` among a struct's serialized fields; absent fields read
/// as `null`, which lets `Option` fields tolerate older artifacts.
pub fn field<'v>(fields: &'v [(Value, Value)], name: &str) -> &'v Value {
    fields
        .iter()
        .find(|(k, _)| k.as_str() == Some(name))
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, crate::Error> {
        Ok(v.clone())
    }
}

//! Offline stand-in for `serde`, vendored so the workspace builds with no
//! registry access.
//!
//! The design is deliberately simpler than real serde: serialization goes
//! through an owned [`value::Value`] tree instead of a visitor pipeline.
//! Only the surface this workspace uses is provided:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs, newtype
//!   structs, and enums (unit and tuple variants);
//! * `#[serde(skip)]` (field skipped on write, `Default::default()` on read);
//! * `#[serde(with = "module")]` where `module::serialize(&T) -> Value` and
//!   `module::deserialize(&Value) -> Result<T, Error>`;
//! * impls for primitives, `String`, `Option`, `Vec`, tuples, and the std
//!   map/set types.
//!
//! Map/set impls emit entries in sorted key order even for `HashMap` /
//! `HashSet`, so serialized artifacts are byte-stable regardless of hash
//! iteration order — this backs the repo's determinism contract (see
//! DESIGN.md, "Determinism contract & lint catalogue").

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An "expected X while decoding Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while decoding {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U128(*self)
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u128()
            .ok_or_else(|| Error::expected("unsigned integer", "u128"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().ok_or_else(|| Error::expected("char", "char"))?),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) if xs.len() == N => {
                let mut out = [T::default(); N];
                for (slot, x) in out.iter_mut().zip(xs) {
                    *slot = T::from_value(x)?;
                }
                Ok(out)
            }
            _ => Err(Error::expected("sequence of fixed length", "array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(xs) if xs.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&xs[$n])?,)+))
                    }
                    _ => Err(Error::expected("tuple sequence", "tuple")),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(Value, Value)> = entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    Value::Map(pairs)
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value, ctx: &str) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(pairs) => pairs
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect(),
        // Maps with non-string keys print as `[[k, v], …]`, which parses
        // back as a sequence of two-element sequences.
        Value::Seq(items) => items
            .iter()
            .map(|item| match item {
                Value::Seq(kv) if kv.len() == 2 => Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?)),
                _ => Err(Error::expected("[key, value] pair", ctx)),
            })
            .collect(),
        _ => Err(Error::expected("map", ctx)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v, "BTreeMap")?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v, "HashMap")?.into_iter().collect())
    }
}

fn set_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    let mut vals: Vec<Value> = items.map(Serialize::to_value).collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    Value::Seq(vals)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        set_to_value(self.iter())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", "BTreeSet")),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        set_to_value(self.iter())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", "HashSet")),
        }
    }
}

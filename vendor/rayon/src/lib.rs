//! Offline stand-in for `rayon`, vendored so the workspace builds with no
//! registry access.
//!
//! Provides the `par_iter()` / `into_par_iter()` → `map` → `collect`
//! pipeline this workspace uses, executed on `std::thread::scope` with
//! index-ordered chunking. Results are always reassembled in input order,
//! so a parallel map is bit-identical to its sequential counterpart —
//! which is exactly the determinism contract the `netaware-xtask` linter
//! enforces (rule ND03 forbids *unordered* parallel reductions; this shim
//! simply has none).

use std::thread;

/// Commonly-used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// How many worker threads a parallel map may use for `n` items.
fn workers_for(n: usize) -> usize {
    if n < 2 {
        return 1;
    }
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
}

/// Runs `f` over `items` on scoped threads, returning results in input
/// order regardless of which worker computed them.
fn ordered_parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers_for(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(
                h.join()
                    .expect("parallel map worker panicked; propagating"),
            );
        }
    });
    out
}

/// A to-be-mapped parallel pipeline over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel pipeline with a pending map stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item (executed at `collect` time).
    pub fn map<R, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Keeps items for which `pred` holds, preserving order.
    pub fn filter<P: Fn(&T) -> bool + Sync>(self, pred: P) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().filter(|x| pred(x)).collect(),
        }
    }

    /// Gathers the items into any `FromIterator` collection, in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Gathers mapped results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        ordered_parallel_map(self.items, self.f)
            .into_iter()
            .collect()
    }

    /// Ordered (left-to-right) sum of the mapped results.
    ///
    /// Unlike real rayon's tree reduction this is sequential over the
    /// mapped values, so float sums are reproducible run-to-run.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        ordered_parallel_map(self.items, self.f).into_iter().sum()
    }
}

/// `into_par_iter()` for owned collections.
pub trait IntoParallelIterator {
    /// Item type of the parallel pipeline.
    type Item: Send;
    /// Starts a parallel pipeline that consumes `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` for borrowed slices/vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type of the parallel pipeline.
    type Item: Send + 'a;
    /// Starts a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn into_par_iter_matches_sequential() {
        let xs: Vec<String> = (0..257).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = xs.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, xs.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_sum_is_reproducible() {
        let xs: Vec<f64> = (1..=1000).map(|i| 1.0 / i as f64).collect();
        let a: f64 = xs.par_iter().map(|&x| x).sum();
        let b: f64 = xs.iter().sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

//! Offline stand-in for `criterion`: same macro/API surface, simple
//! wall-clock timing. Each benchmark runs a short warm-up plus
//! `sample_size` timed batches and reports the per-iteration median to
//! stderr. Good enough to keep `cargo bench` meaningful offline; swap the
//! real crate back in for publication-grade statistics.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: Vec::new(),
        };
        f(&mut b);
        b.print(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark batch count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares the work per iteration (reported, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: Vec::new(),
        };
        f(&mut b);
        b.print(&format!("{}/{}", self.name, name));
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: Vec::new(),
        };
        f(&mut b, input);
        b.print(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Declared per-iteration workload.
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    report: Vec<f64>,
}

impl Bencher {
    /// Times `f`, recording per-iteration nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for ~5 ms per batch.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let per_batch = ((5_000_000 / once).max(1) as usize).min(1_000_000);

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            self.report
                .push(t.elapsed().as_nanos() as f64 / per_batch as f64);
        }
    }

    fn print(&mut self, name: &str) {
        if self.report.is_empty() {
            eprintln!("bench {name:<40} (no samples)");
            return;
        }
        self.report.sort_by(f64::total_cmp);
        let median = self.report[self.report.len() / 2];
        let (lo, hi) = (self.report[0], self.report[self.report.len() - 1]);
        eprintln!("bench {name:<40} median {median:>12.1} ns/iter (min {lo:.1}, max {hi:.1})");
        self.write_json(name, median, lo, hi);
    }

    /// When `NETAWARE_BENCH_JSON_DIR` is set, each finished benchmark
    /// also writes a `BENCH_<name>.json` snapshot there (sorted samples
    /// plus the median/min/max summary), so `cargo bench` runs leave
    /// machine-readable artifacts next to the `xtask perf` reports.
    fn write_json(&self, name: &str, median: f64, lo: f64, hi: f64) {
        let Ok(dir) = std::env::var("NETAWARE_BENCH_JSON_DIR") else {
            return;
        };
        let slug: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let samples: Vec<String> = self.report.iter().map(|v| format!("{v:.1}")).collect();
        let body = format!(
            "{{\n  \"schema\": 1,\n  \"name\": \"{name}\",\n  \"median_ns_per_iter\": {median:.1},\n  \
             \"min_ns_per_iter\": {lo:.1},\n  \"max_ns_per_iter\": {hi:.1},\n  \
             \"samples_ns_per_iter\": [{}]\n}}\n",
            samples.join(", ")
        );
        let path = std::path::Path::new(&dir).join(format!("BENCH_{slug}.json"));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("bench {name}: cannot write {}: {e}", path.display());
        }
    }
}

/// Re-export for bench files that import it from criterion.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, with or without a `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `serde_json` over the vendored [`serde`] value tree.
//!
//! Emits deterministic, byte-stable JSON: map entries from hash maps are
//! sorted by the `serde` shim before they reach the printer, floats print
//! via Rust's shortest-round-trip formatter, and key order of structs
//! follows declaration order. Maps with non-string keys print as
//! `[[key, value], …]` (plain JSON objects require string keys); the
//! parser and the `serde` map impls both understand that encoding.

pub use serde::value::Value;
pub use serde::value;
use serde::{Deserialize, Serialize};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `v` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `v` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// -------------------------------------------------------------- printer

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(
                    "non-finite f64 is not representable in JSON (wrap with nan_as_null)".into(),
                ));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep floats recognizable as floats on re-parse.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(x, out, indent, depth + 1)?;
            }
            if !xs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(m) => {
            let string_keys = m.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if string_keys {
                out.push('{');
                for (i, (k, val)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(k, out, indent, depth + 1)?;
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, depth + 1)?;
                }
                if !m.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            } else {
                // Non-string keys: encode as a sequence of [key, value].
                let pairs = Value::Seq(
                    m.iter()
                        .map(|(k, v)| Value::Seq(vec![k.clone(), v.clone()]))
                        .collect(),
                );
                write_value(&pairs, out, indent, depth)?;
            }
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.push((Value::Str(k), v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".into()))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map(vec![
            (Value::Str("a".into()), Value::U64(7)),
            (Value::Str("b".into()), Value::F64(1.5)),
            (
                Value::Str("c".into()),
                Value::Seq(vec![Value::Null, Value::Bool(true), Value::Str("x\"y".into())]),
            ),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s, None, 0).expect("finite values print");
        assert_eq!(parse_value(&s).expect("printer output parses"), v);
    }

    #[test]
    fn integer_float_distinction_survives() {
        let s = to_string(&vec![1.0f64, 2.5]).expect("serializes");
        assert_eq!(s, "[1.0,2.5]");
        let back: Vec<f64> = from_str(&s).expect("parses");
        assert_eq!(back, vec![1.0, 2.5]);
    }

    #[test]
    fn u128_round_trip() {
        let n: u128 = u128::MAX - 3;
        let s = to_string(&n).expect("serializes");
        let back: u128 = from_str(&s).expect("parses");
        assert_eq!(back, n);
    }
}

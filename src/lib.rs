//! # netaware — Network Awareness of P2P Live Streaming Applications
//!
//! A full reproduction of Ciullo et al., *"Network Awareness of P2P Live
//! Streaming Applications"*, IEEE IPDPS 2009 (the NAPA-WINE measurement
//! study), as a Rust workspace:
//!
//! * [`net`] — AS-level Internet substrate (geolocation, access links,
//!   hop/TTL and delay models);
//! * [`sim`] — deterministic discrete-event engine with packet-timing
//!   link models;
//! * [`trace`] — probe-side packet capture, binary trace format, pcap
//!   import/export;
//! * [`proto`] — the mesh-pull P2P-TV protocol with PPLive-, SopCast-
//!   and TVAnts-like behaviour profiles;
//! * [`analysis`] — the paper's passive network-awareness framework
//!   (contributor heuristic, packet-pair BW inference, TTL hop counting,
//!   preferential partitions, peer-/byte-wise preference metrics);
//! * [`testbed`] — the Table I testbed, the synthetic overlay
//!   population, and one-call experiment orchestration;
//! * [`obs`] — deterministic sim-time observability: structured event
//!   log, metrics registry, and span timing for the whole pipeline;
//! * [`faults`] — deterministic fault-injection plans: link
//!   loss/jitter/outages and peer churn, with protocol-level recovery
//!   in [`proto`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use netaware::testbed::{run_paper_suite, ExperimentOptions};
//!
//! // A CI-scale rendition of the paper's experiment suite.
//! let outputs = run_paper_suite(&ExperimentOptions::ci_scale(42));
//! for out in &outputs {
//!     let bw = out.analysis.preference("BW").unwrap();
//!     println!(
//!         "{}: {:.0}% of received bytes come from high-bandwidth peers",
//!         out.app, bw.download_all.bytes_pct
//!     );
//! }
//! ```

#![warn(missing_docs)]

pub use netaware_analysis as analysis;
pub use netaware_faults as faults;
pub use netaware_net as net;
pub use netaware_obs as obs;
pub use netaware_proto as proto;
pub use netaware_sim as sim;
pub use netaware_testbed as testbed;
pub use netaware_trace as trace;

pub use netaware_analysis::{analyze, analyze_corpus, AnalysisConfig, ExperimentAnalysis};
pub use netaware_faults::{ChurnPlan, FaultPlan, LinkFaultPlan, SessionModel, TrackerOutage};
pub use netaware_obs::Obs;
pub use netaware_proto::AppProfile;
pub use netaware_testbed::{
    run_experiment, run_paper_suite, run_streamed, ExperimentOptions,
};

//! `netaware-cli` — run and analyse P2P-TV network-awareness experiments.
//!
//! ```text
//! netaware-cli suite     [--scale F] [--secs N] [--seed N] [--json FILE]
//! netaware-cli replicate APP [--runs N] [--scale F] [--secs N]
//! netaware-cli run APP [--uniform] [--spill DIR] [--scale F] [--secs N] [--seed N] [--json FILE]
//!                      [--obs-log FILE] [--metrics FILE] [--profile FILE] [--shards N]
//!                      [--faults FILE] [--loss P] [--jitter-us N] [--churn]
//! netaware-cli nextgen [--scale F] [--secs N] [--seed N]
//! netaware-cli matrix  --config FILE [--out DIR] [--seed N] [--shards N] [--json FILE]
//! netaware-cli matrix  --example
//! netaware-cli testbed
//! netaware-cli export  --dir DIR [--app APP] [--scale F] [--secs N]
//! netaware-cli analyze --dir CORPUS | --probe IP FILE.pcap [--probe IP FILE.pcap …] [--profile FILE]
//! netaware-cli obs summarize FILE [--metrics FILE]
//! netaware-cli obs profile FILE
//! ```
//!
//! `APP` is any registered profile name or alias (`pplive`, `sopcast`,
//! `tvants`, `nextgen`, `pplive-unpop`, `epidemic-rp`, `epidemic-ba` —
//! see `AppProfile::all`).
//!
//! `matrix --config FILE` sweeps a scenario grid (profiles × scales ×
//! session models × fault plans, JSON `MatrixConfig`; start from
//! `matrix --example`) through the streaming pipeline and emits one
//! deterministic cross-scenario awareness report (markdown on stdout;
//! `--out DIR` additionally writes `report.json`/`report.md` plus a
//! re-analysable per-cell trace corpus). `--seed` overrides the
//! config's seed; same seed ⇒ byte-identical report, any `--shards`.
//! `run --spill DIR` spills the capture to an on-disk corpus as it is
//! produced and streams the analysis back off disk — constant memory in
//! the experiment size, and the corpus stays behind for `analyze --dir`.
//! `analyze --dir` streams a saved corpus through the single-pass engine
//! without loading it; `analyze --probe …` ingests classic pcap captures
//! (e.g. produced by `export` or by tcpdump against the same address
//! plan) and runs the passive framework over them using the
//! reconstructed testbed registry.
//!
//! `run --faults FILE` loads a fault-injection plan (JSON `FaultPlan`:
//! link loss/jitter/outages plus peer churn and tracker-outage windows);
//! `--loss P`, `--jitter-us N` and `--churn` are shorthands that
//! override/extend the plan (churn uses the default preset). Fault
//! draws ride dedicated RNG streams, so same-seed fault runs are
//! byte-identical too. The continuity ground truth printed at the end
//! (and the `swarm.continuity` events / `proto.continuity_*` metrics)
//! quantify the protocol's graceful degradation.
//!
//! `run --obs-log FILE` writes the run's structured event log as JSONL
//! (byte-identical across same-seed runs); `run --metrics FILE` writes
//! the metrics-registry snapshot (JSON, or CSV when FILE ends in
//! `.csv`). `obs summarize FILE` renders an event log: top targets,
//! error events, and the chunk-scheduler decision rate; pass
//! `--metrics FILE` to fold a metrics snapshot (counter throughput,
//! histogram percentiles) into the same report.
//!
//! `run --shards N` (any run-like subcommand accepts it) executes the
//! swarm event loop on N shard workers partitioned by home AS, with
//! conservative lookahead synchronisation. Traces, reports, obs logs
//! and metrics are byte-identical to `--shards 1` — parallelism is a
//! pure speed knob.
//!
//! `run --profile FILE` and `analyze --profile FILE` arm the span
//! profiler and write the finished run's `PerfReport` (the
//! `BENCH_*.json` format emitted by `xtask perf`) to FILE;
//! `obs profile FILE` renders such a snapshot as an indented
//! flame-style table with self/total wall time, calls, allocations and
//! per-phase throughput.

use netaware::analysis::tables;
use netaware::analysis::AnalysisConfig;
use netaware::net::Ip;
use netaware::testbed::{
    self, run_experiment, run_paper_suite, BuiltScenario, ExperimentOptions, ScenarioConfig,
};
use netaware::obs::{
    EventSink, Filter, JsonlSink, LogSummary, MetricsSnapshot, NullSink, PerfMeta, PerfReport,
    WallClock,
};
use netaware::trace::pcap::import_pcap;
use netaware::trace::TraceSet;
use netaware::{AppProfile, ChurnPlan, FaultPlan, Obs};
use std::process::ExitCode;
use std::sync::Arc;

/// Counting allocator: fills the allocation and peak-heap columns of
/// `--profile` snapshots. Two relaxed atomic adds per allocation when
/// nothing reads the counters.
#[global_allocator]
static ALLOC: netaware::obs::alloc::CountingAlloc = netaware::obs::alloc::CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: netaware-cli <suite|run|replicate|nextgen|matrix|testbed|export|analyze|obs> [options]\n\
         see the crate docs (cargo doc --open) for details"
    );
    ExitCode::from(2)
}

struct Common {
    scale: f64,
    secs: u64,
    seed: u64,
    runs: u64,
    json: Option<String>,
    csv: Option<String>,
    markdown: Option<String>,
    uniform: bool,
    persite: bool,
    spill: Option<String>,
    dir: Option<String>,
    app: Option<String>,
    pcaps: Vec<(Ip, String)>,
    obs_log: Option<String>,
    metrics: Option<String>,
    profile_out: Option<String>,
    faults: FaultPlan,
    shards: usize,
    config: Option<String>,
    out: Option<String>,
    example: bool,
    seed_set: bool,
}

fn parse_common(args: &[String]) -> Result<Common, String> {
    let mut c = Common {
        scale: 0.05,
        secs: 240,
        seed: 42,
        runs: 3,
        json: None,
        csv: None,
        markdown: None,
        uniform: false,
        persite: false,
        spill: None,
        dir: None,
        app: None,
        pcaps: Vec::new(),
        obs_log: None,
        metrics: None,
        profile_out: None,
        faults: FaultPlan::none(),
        shards: 1,
        config: None,
        out: None,
        example: false,
        seed_set: false,
    };
    let mut i = 0;
    let mut pending_probe: Option<Ip> = None;
    let mut faults_file: Option<String> = None;
    let mut loss: Option<f64> = None;
    let mut jitter_us: Option<u64> = None;
    let mut churn = false;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--scale" => c.scale = take(&mut i)?.parse().map_err(|e| format!("scale: {e}"))?,
            "--secs" => c.secs = take(&mut i)?.parse().map_err(|e| format!("secs: {e}"))?,
            "--seed" => {
                c.seed = take(&mut i)?.parse().map_err(|e| format!("seed: {e}"))?;
                c.seed_set = true;
            }
            "--config" => c.config = Some(take(&mut i)?),
            "--out" => c.out = Some(take(&mut i)?),
            "--example" => c.example = true,
            "--shards" => {
                c.shards = take(&mut i)?.parse().map_err(|e| format!("shards: {e}"))?
            }
            "--json" => c.json = Some(take(&mut i)?),
            "--csv" => c.csv = Some(take(&mut i)?),
            "--markdown" => c.markdown = Some(take(&mut i)?),
            "--spill" => c.spill = Some(take(&mut i)?),
            "--obs-log" => c.obs_log = Some(take(&mut i)?),
            "--metrics" => c.metrics = Some(take(&mut i)?),
            "--profile" => c.profile_out = Some(take(&mut i)?),
            "--dir" => c.dir = Some(take(&mut i)?),
            "--faults" => faults_file = Some(take(&mut i)?),
            "--loss" => loss = Some(take(&mut i)?.parse().map_err(|e| format!("loss: {e}"))?),
            "--jitter-us" => {
                jitter_us = Some(take(&mut i)?.parse().map_err(|e| format!("jitter-us: {e}"))?)
            }
            "--churn" => churn = true,
            "--app" => c.app = Some(take(&mut i)?),
            "--uniform" => c.uniform = true,
            "--persite" => c.persite = true,
            "--runs" => c.runs = take(&mut i)?.parse().map_err(|e| format!("runs: {e}"))?,
            "--probe" => {
                let ip: Ip = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--probe: {e}"))?;
                pending_probe = Some(ip);
            }
            other if !other.starts_with("--") => {
                if let Some(probe) = pending_probe.take() {
                    c.pcaps.push((probe, other.to_string()));
                } else if c.app.is_none() {
                    c.app = Some(other.to_string());
                } else {
                    return Err(format!("unexpected argument {other}"));
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    // Compile the fault plan: the plan file first, shorthand flags
    // overriding/extending it.
    let mut plan = match &faults_file {
        Some(path) => {
            let body = std::fs::read_to_string(path)
                .map_err(|e| format!("--faults {path}: {e}"))?;
            FaultPlan::from_json(&body).map_err(|e| format!("--faults {path}: {e}"))?
        }
        None => FaultPlan::none(),
    };
    if let Some(l) = loss {
        plan.link.loss = l;
    }
    if let Some(j) = jitter_us {
        plan.link.jitter_us = j;
    }
    if churn && plan.churn.is_none() {
        plan.churn = Some(ChurnPlan::preset());
    }
    plan.validate()?;
    c.faults = plan;
    Ok(c)
}

/// Writes the `--profile` snapshot, if one was requested. Returns false
/// when requested but unwritable.
fn write_profile_snapshot(obs: &Obs, scenario: &str, c: &Common) -> bool {
    let Some(path) = &c.profile_out else {
        return true;
    };
    let Some(report) = obs.perf_report(perf_meta(scenario.to_string(), c)) else {
        eprintln!("profile: profiler was not armed");
        return false;
    };
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("profile: writing snapshot to {path} failed: {e}");
        return false;
    }
    eprintln!("perf snapshot written to {path}");
    true
}

/// Cell identity for a `--profile` snapshot taken by this binary.
fn perf_meta(scenario: String, c: &Common) -> PerfMeta {
    let toolchain = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| String::from("rustc unknown"));
    PerfMeta {
        scenario,
        toolchain,
        seed: c.seed,
        scale_permille: (c.scale * 1000.0).round() as u64,
        sim_secs: c.secs,
    }
}

fn profile_by_name(name: &str) -> Option<AppProfile> {
    // Single source of truth: the profile registry (names and aliases).
    AppProfile::by_name(name)
}

fn opts_of(c: &Common) -> ExperimentOptions {
    ExperimentOptions {
        seed: c.seed,
        scale: c.scale,
        duration_us: c.secs * 1_000_000,
        faults: c.faults.clone(),
        shards: c.shards,
        ..Default::default()
    }
}

fn print_all_tables(outs: &[testbed::ExperimentOutput]) {
    let summaries: Vec<_> = outs.iter().map(|o| o.analysis.summary.clone()).collect();
    println!("{}", tables::render_table2(&summaries));
    let fig1: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.geo.clone()))
        .collect();
    println!("{}", tables::render_fig1(&fig1));
    let t3: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.selfbias))
        .collect();
    println!("{}", tables::render_table3(&t3));
    let blocks: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.preferences.clone()))
        .collect();
    println!("{}", tables::render_table4(&blocks));
    let fig2: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.asmatrix.clone()))
        .collect();
    println!("{}", tables::render_fig2(&fig2));
}

fn write_json(path: &str, outs: &[testbed::ExperimentOutput]) {
    let all: Vec<_> = outs.iter().map(|o| &o.analysis).collect();
    std::fs::write(path, serde_json::to_string_pretty(&all).expect("serialise"))
        .expect("write json");
    eprintln!("analysis written to {path}");
}

fn cmd_suite(c: &Common) -> ExitCode {
    println!("{}", testbed::hosts::render_table1());
    let outs = run_paper_suite(&opts_of(c));
    print_all_tables(&outs);
    if let Some(p) = &c.json {
        write_json(p, &outs);
    }
    if let Some(dir) = &c.csv {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let refs: Vec<&netaware::ExperimentAnalysis> =
            outs.iter().map(|o| &o.analysis).collect();
        use netaware::analysis::csv;
        std::fs::write(format!("{dir}/table4.csv"), csv::table4_csv(&refs)).unwrap();
        std::fs::write(format!("{dir}/fig1.csv"), csv::fig1_csv(&refs)).unwrap();
        std::fs::write(format!("{dir}/fig2.csv"), csv::fig2_csv(&refs)).unwrap();
        std::fs::write(format!("{dir}/hopdist.csv"), csv::hopdist_csv(&refs)).unwrap();
        eprintln!("CSV artifacts written to {dir}/");
    }
    if let Some(path) = &c.markdown {
        let refs: Vec<&netaware::ExperimentAnalysis> =
            outs.iter().map(|o| &o.analysis).collect();
        let md = netaware::analysis::markdown::render_report(
            &refs,
            "netaware reproduction suite",
        );
        std::fs::write(path, md).expect("write markdown");
        eprintln!("markdown report written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_run(c: &Common) -> ExitCode {
    let Some(name) = &c.app else {
        eprintln!("run: which app? (see AppProfile::all: pplive|sopcast|tvants|nextgen|pplive-unpop|epidemic-rp|epidemic-ba)");
        return ExitCode::from(2);
    };
    let Some(mut profile) = profile_by_name(name) else {
        eprintln!("unknown app {name}");
        return ExitCode::from(2);
    };
    if c.uniform {
        profile = profile.uniform_selection();
    }
    let mut opts = opts_of(c);
    opts.keep_traces = c.persite;
    // Observability: a JSONL sink when an event log is requested, a
    // counting null sink when only metrics/profiling are (events still
    // flow so the counters fill, but nothing is built or written).
    if c.obs_log.is_some() || c.metrics.is_some() || c.profile_out.is_some() {
        let sink: Arc<dyn EventSink> = match &c.obs_log {
            Some(path) => match JsonlSink::create(std::path::Path::new(path)) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("run: cannot create event log {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Arc::new(NullSink::new()),
        };
        opts.obs = if c.profile_out.is_some() {
            Obs::with_profiler(sink, Filter::all(), Arc::new(WallClock::new()))
        } else {
            Obs::new(sink)
        };
    }
    let out = if let Some(dir) = &c.spill {
        if c.persite {
            eprintln!("run: --persite needs in-memory traces and cannot be combined with --spill");
            return ExitCode::from(2);
        }
        match netaware::run_streamed(profile, &opts, std::path::Path::new(dir)) {
            Ok(out) => {
                eprintln!("trace corpus spilled to {dir}/ (manifest.json + .nawt)");
                out
            }
            Err(e) => {
                eprintln!("run: streaming to {dir} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        run_experiment(profile, &opts)
    };
    if c.persite {
        let traces = out.traces.as_ref().expect("keep_traces set");
        let scenario = BuiltScenario::build(
            &ScenarioConfig { seed: c.seed, scale: c.scale, ..Default::default() },
            1, // registry only; population size irrelevant here
        );
        let pfs = netaware::analysis::flows::aggregate(traces, &AnalysisConfig::default());
        let rows = netaware::analysis::persite::per_probe(
            &pfs,
            &scenario.registry,
            &AnalysisConfig::default(),
            out.analysis.hop_threshold,
        );
        println!("{}", netaware::analysis::persite::render(&rows));
    }
    let outs = vec![out];
    print_all_tables(&outs);
    let o = &outs[0];
    let f = &o.analysis.friendliness;
    println!(
        "friendliness: subnet {:.1}%  intra-AS {:.1}%  intra-CC {:.1}%  transit {:.1}%  {:.1} hops/byte",
        f.subnet_pct, f.intra_as_pct, f.intra_cc_pct, f.transit_pct, f.mean_hops_per_byte
    );
    println!(
        "ground truth: continuity {:.3}, {} events, {} chunks delivered",
        o.report.continuity(),
        o.report.events_dispatched,
        o.report.chunks_delivered
    );
    if !opts.faults.is_noop() {
        println!(
            "faults: {} packets dropped, {} departures, {} arrivals, {} requests re-queued, worst probe continuity {:.3}",
            o.report.packets_dropped,
            o.report.peers_departed,
            o.report.peers_arrived,
            o.report.requests_requeued,
            o.report.worst_probe().map_or(1.0, |p| p.continuity),
        );
    }
    if let Some(p) = &c.json {
        write_json(p, &outs);
    }
    let obs = &opts.obs;
    if let Err(e) = obs.flush() {
        eprintln!("run: flushing event log failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &c.obs_log {
        eprintln!("event log written to {path}");
    }
    if let Some(path) = &c.metrics {
        let Some(snap) = obs.metrics() else {
            eprintln!("run: no metrics recorded");
            return ExitCode::FAILURE;
        };
        let body = if path.ends_with(".csv") { snap.to_csv() } else { snap.to_json() };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("run: writing metrics to {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics snapshot written to {path}");
    }
    let scenario = format!(
        "{}_{}",
        name.to_ascii_lowercase(),
        if opts.faults.is_noop() { "clean" } else { "faulted" }
    );
    if !write_profile_snapshot(obs, &scenario, c) {
        return ExitCode::FAILURE;
    }
    if obs.is_enabled() {
        for t in obs.timings() {
            eprintln!("timing: {:<20} {:>10.3} ms", t.name, t.elapsed_us as f64 / 1000.0);
        }
    }
    ExitCode::SUCCESS
}

/// `obs summarize FILE [--metrics FILE]` — render an event-log summary,
/// optionally folding a metrics snapshot into the same report. Fails
/// (non-zero) on unreadable or malformed inputs, including truncated
/// JSONL lines. `obs profile FILE` renders a `BENCH_*.json` perf
/// snapshot as the flame-style span table.
fn cmd_obs(rest: &[String]) -> ExitCode {
    match rest {
        [sub, file, tail @ ..] if sub == "summarize" => {
            let metrics_path = match tail {
                [] => None,
                [flag, path] if flag == "--metrics" => Some(path.clone()),
                _ => {
                    eprintln!("usage: netaware-cli obs summarize FILE [--metrics FILE]");
                    return ExitCode::from(2);
                }
            };
            let f = match std::fs::File::open(file) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("obs summarize: cannot open {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let summary = match LogSummary::from_reader(std::io::BufReader::new(f)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("obs summarize: {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let metrics: Option<MetricsSnapshot> = match &metrics_path {
                None => None,
                Some(path) => {
                    let body = match std::fs::read_to_string(path) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("obs summarize: cannot open {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match LogSummary::parse_metrics(&body) {
                        Ok(m) => Some(m),
                        Err(e) => {
                            eprintln!("obs summarize: {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            print!("{}", summary.render_with_metrics(metrics.as_ref()));
            ExitCode::SUCCESS
        }
        [sub, file] if sub == "profile" => {
            let body = match std::fs::read_to_string(file) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("obs profile: cannot open {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match PerfReport::from_json(&body) {
                Ok(r) => {
                    print!("{}", r.render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("obs profile: {file}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: netaware-cli obs summarize FILE [--metrics FILE]\n       \
                 netaware-cli obs profile FILE"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_replicate(c: &Common) -> ExitCode {
    let Some(name) = &c.app else {
        eprintln!("replicate: which app? (see AppProfile::all: pplive|sopcast|tvants|nextgen|pplive-unpop|epidemic-rp|epidemic-ba)");
        return ExitCode::from(2);
    };
    let Some(profile) = profile_by_name(name) else {
        eprintln!("unknown app {name}");
        return ExitCode::from(2);
    };
    let seeds: Vec<u64> = (0..c.runs).map(|i| c.seed + i * 37).collect();
    let (summary, _) = netaware::testbed::run_replicated(&profile, &opts_of(c), &seeds);
    println!("{}", summary.render());
    ExitCode::SUCCESS
}

fn cmd_nextgen(c: &Common) -> ExitCode {
    let opts = opts_of(c);
    let mut profiles = AppProfile::paper_apps();
    profiles.push(AppProfile::nextgen());
    println!(
        "{:<10} {:>10} {:>10} {:>11} {:>11}",
        "app", "intraAS%", "transit%", "hops/byte", "continuity"
    );
    for p in profiles {
        let out = run_experiment(p, &opts);
        let f = &out.analysis.friendliness;
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>11.1} {:>11.3}",
            out.app,
            f.intra_as_pct,
            f.transit_pct,
            f.mean_hops_per_byte,
            out.report.continuity()
        );
    }
    ExitCode::SUCCESS
}

/// `matrix --config FILE` — run the scenario matrix and emit the
/// deterministic cross-scenario awareness report.
fn cmd_matrix(c: &Common) -> ExitCode {
    if c.example {
        println!("{}", netaware::testbed::MatrixConfig::example_json());
        return ExitCode::SUCCESS;
    }
    let Some(path) = &c.config else {
        eprintln!("matrix: --config FILE is required (start from `matrix --example`)");
        return ExitCode::from(2);
    };
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("matrix: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = match netaware::testbed::MatrixConfig::from_json(&body) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("matrix: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if c.seed_set {
        cfg.seed = c.seed;
    }
    let out_dir = c.out.as_ref().map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("matrix: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let report = match netaware::testbed::run_matrix(&cfg, c.shards, out_dir.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("matrix: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.to_markdown());
    if let Some(dir) = &out_dir {
        let json = dir.join("report.json");
        let md = dir.join("report.md");
        if std::fs::write(&json, report.to_json()).is_err()
            || std::fs::write(&md, report.to_markdown()).is_err()
        {
            eprintln!("matrix: writing report into {} failed", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "matrix report and per-cell corpora written to {}/",
            dir.display()
        );
    }
    if let Some(p) = &c.json {
        if let Err(e) = std::fs::write(p, report.to_json()) {
            eprintln!("matrix: writing {p} failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("matrix report written to {p}");
    }
    ExitCode::SUCCESS
}

fn cmd_testbed() -> ExitCode {
    println!("{}", testbed::hosts::render_table1());
    ExitCode::SUCCESS
}

fn cmd_export(c: &Common) -> ExitCode {
    let Some(dir) = &c.dir else {
        eprintln!("export: --dir is required");
        return ExitCode::from(2);
    };
    std::fs::create_dir_all(dir).expect("create dir");
    let profile = c
        .app
        .as_deref()
        .map(|n| profile_by_name(n).expect("known app"))
        .unwrap_or_else(AppProfile::sopcast);
    let mut opts = opts_of(c);
    opts.keep_traces = true;
    let out = run_experiment(profile, &opts);
    let traces = out.traces.expect("keep_traces set");
    // Corpus format: manifest.json + per-probe .nawt files…
    let manifest = traces
        .write_dir(std::path::Path::new(dir))
        .expect("write corpus");
    // …plus classic pcap next to each capture for standard tooling.
    for t in &traces.traces {
        let path = format!("{dir}/{}.pcap", t.probe);
        let mut p = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
        netaware::trace::pcap::export_pcap(t, &mut p).expect("write pcap");
    }
    eprintln!(
        "{} probe traces ({} packets) exported to {dir}/ (manifest.json + .nawt + .pcap)",
        manifest.probes.len(),
        manifest.total_packets
    );
    ExitCode::SUCCESS
}

fn cmd_analyze(c: &Common) -> ExitCode {
    // A saved corpus directory (from `export` or `run --spill`) analyses
    // in one step, streaming each probe's records straight off disk.
    let obs = if c.profile_out.is_some() {
        Obs::profiled()
    } else {
        Obs::default()
    };
    if let Some(dir) = &c.dir {
        let scenario = BuiltScenario::build(&ScenarioConfig { seed: 42, scale: 0.01, ..Default::default() }, 100);
        let a = match netaware::analysis::analyze_corpus_with_obs(
            std::path::Path::new(dir),
            &scenario.registry,
            &AnalysisConfig::default(),
            &scenario.highbw_probe_ips,
            &obs,
        ) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("analyze: reading corpus {dir} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", tables::render_table4(&[(a.app.clone(), a.preferences.clone())]));
        println!(
            "{} packets, {} peers observed, hop threshold {}",
            a.total_packets, a.geo.total_peers, a.hop_threshold
        );
        if let Some(p) = &c.json {
            std::fs::write(p, a.to_json()).expect("write json");
        }
        if !write_profile_snapshot(&obs, "analyze_corpus", c) {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    if c.pcaps.is_empty() {
        eprintln!("analyze: `--dir CORPUS` or at least one `--probe IP FILE.pcap` pair is required");
        return ExitCode::from(2);
    }
    let mut set = TraceSet::new("pcap-import", 0);
    let mut max_ts = 0u64;
    for (probe, path) in &c.pcaps {
        let mut f = std::io::BufReader::new(std::fs::File::open(path).expect("open pcap"));
        let (trace, skipped) = import_pcap(*probe, &mut f).expect("parse pcap");
        if skipped > 0 {
            eprintln!("{path}: skipped {skipped} non-UDP/IPv4 frames");
        }
        max_ts = max_ts.max(trace.records_unsorted().iter().map(|r| r.ts_us).max().unwrap_or(0));
        set.add(trace);
    }
    set.duration_us = max_ts + 1;
    set.finalize();

    // Resolve against the reconstructed testbed registry.
    let scenario = BuiltScenario::build(&ScenarioConfig { seed: 42, scale: 0.01, ..Default::default() }, 100);
    let a = netaware::analysis::analyze_with_obs(
        &set,
        &scenario.registry,
        &AnalysisConfig::default(),
        &scenario.highbw_probe_ips,
        &obs,
    );
    let outs_like = [(a.app.clone(), a.preferences.clone())];
    println!("{}", tables::render_table4(&outs_like));
    println!(
        "{} packets, {} peers observed, hop threshold {}",
        a.total_packets, a.geo.total_peers, a.hop_threshold
    );
    if let Some(p) = &c.json {
        std::fs::write(p, a.to_json()).expect("write json");
    }
    if !write_profile_snapshot(&obs, "analyze_pcap", c) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    // `obs` has positional subcommand syntax; route it before the flag parser.
    if cmd == "obs" {
        return cmd_obs(rest);
    }
    let common = match parse_common(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "suite" => cmd_suite(&common),
        "run" => cmd_run(&common),
        "replicate" => cmd_replicate(&common),
        "nextgen" => cmd_nextgen(&common),
        "matrix" => cmd_matrix(&common),
        "testbed" => cmd_testbed(),
        "export" => cmd_export(&common),
        "analyze" => cmd_analyze(&common),
        _ => usage(),
    }
}

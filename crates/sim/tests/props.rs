//! Randomized property tests for the DES primitives, driven by a seeded
//! [`DetRng`] so every run explores the same cases.

use netaware_sim::{
    AccessSerializer, DetRng, Histogram, MeanMax, RateMeter, Scheduler, SimTime, Welford,
};

const CASES: usize = 256;

fn vec_of<T>(rng: &mut DetRng, max_len: usize, mut f: impl FnMut(&mut DetRng) -> T) -> Vec<T> {
    let n = rng.range(0..max_len);
    (0..n).map(|_| f(rng)).collect()
}

/// The scheduler pops every event exactly once, in (time, insertion)
/// order — equivalent to a stable sort.
#[test]
fn scheduler_is_a_stable_sort() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/scheduler_stable_sort");
    for _ in 0..CASES {
        let times = vec_of(&mut rng, 200, |r| r.range(0..10_000u64));
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.push(SimTime::from_us(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = s.pop() {
            popped.push((t.as_us(), idx));
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        assert_eq!(popped, expected);
    }
}

/// run_until dispatches exactly the events at or before the horizon.
#[test]
fn run_until_partitions_by_horizon() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/run_until_partitions");
    for _ in 0..CASES {
        let times = vec_of(&mut rng, 200, |r| r.range(0..10_000u64));
        let horizon: u64 = rng.range(0..10_000u64);
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.push(SimTime::from_us(t), i);
        }
        let mut seen = Vec::new();
        s.run_until(SimTime::from_us(horizon), |_, t, _| seen.push(t.as_us()));
        assert_eq!(seen.len(), times.iter().filter(|&&t| t <= horizon).count());
        assert_eq!(s.len(), times.iter().filter(|&&t| t > horizon).count());
        assert!(s.now() >= SimTime::from_us(horizon));
    }
}

/// The serialiser is work-conserving and FIFO: departures are strictly
/// increasing, spaced at least one transmission time, and total busy time
/// equals the sum of transmission times.
#[test]
fn serializer_work_conservation() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/serializer_work_conservation");
    for _ in 0..CASES {
        let rate: u64 = rng.range(100_000..200_000_000u64);
        let mut arrivals =
            vec_of(&mut rng, 200, |r| (r.range(0..5_000_000u64), r.range(40..1500u32)));
        if arrivals.is_empty() {
            arrivals.push((rng.range(0..5_000_000u64), rng.range(40..1500u32)));
        }
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut l = AccessSerializer::new(rate);
        let mut prev_dep = SimTime::ZERO;
        let mut busy = 0u64;
        for &(t, size) in &sorted {
            let dep = l.enqueue(SimTime::from_us(t), size);
            let tx = l.tx_time_us(size);
            busy += tx;
            assert!(dep >= prev_dep + tx, "FIFO spacing violated");
            assert!(dep.as_us() >= t + tx, "departed before transmission finished");
            prev_dep = dep;
        }
        assert_eq!(l.busy_us(), busy);
        assert_eq!(l.total_packets(), sorted.len() as u64);
        // Last departure is at most (first arrival + total work + idle gaps).
        assert!(prev_dep.as_us() <= sorted.last().unwrap().0 + busy + sorted[0].0);
    }
}

fn signed_1e6(rng: &mut DetRng) -> f64 {
    rng.range(-1e6..1e6)
}

/// Welford matches the naive two-pass computation.
#[test]
fn welford_matches_naive() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/welford_naive");
    for _ in 0..CASES {
        let mut xs = vec_of(&mut rng, 200, signed_1e6);
        if xs.is_empty() {
            xs.push(signed_1e6(&mut rng));
        }
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var));
    }
}

/// Merging Welford accumulators over any split equals the whole.
#[test]
fn welford_merge_any_split() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/welford_merge");
    for _ in 0..CASES {
        let mut xs = vec_of(&mut rng, 200, signed_1e6);
        while xs.len() < 2 {
            xs.push(signed_1e6(&mut rng));
        }
        let cut = rng.range(0..xs.len());
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..cut].iter().for_each(|&x| a.push(x));
        xs[cut..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
    }
}

/// MeanMax max is the true max, mean within the value range.
#[test]
fn meanmax_invariants() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/meanmax");
    for _ in 0..CASES {
        let mut xs = vec_of(&mut rng, 100, signed_1e6);
        if xs.is_empty() {
            xs.push(signed_1e6(&mut rng));
        }
        let mut m = MeanMax::new();
        xs.iter().for_each(|&x| m.push(x));
        let true_max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(m.max(), true_max);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(m.mean() >= lo - 1e-9 && m.mean() <= true_max + 1e-9);
    }
}

/// Histogram quantiles agree with the sorted-vector definition.
#[test]
fn histogram_quantile_matches_sorted() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/histogram_quantile");
    for _ in 0..CASES {
        let mut vals = vec_of(&mut rng, 300, |r| r.range(0..100usize));
        if vals.is_empty() {
            vals.push(rng.range(0..100usize));
        }
        let q: f64 = rng.range(0.0..1.0);
        let mut h = Histogram::new(100);
        vals.iter().for_each(|&v| h.push(v));
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        assert_eq!(h.quantile(q), Some(sorted[rank - 1]));
    }
}

/// RateMeter conserves bytes and mean ≤ max.
#[test]
fn rate_meter_conserves() {
    let mut rng = DetRng::stream(0xD15EA5E, "sim/rate_meter");
    for _ in 0..CASES {
        let mut events =
            vec_of(&mut rng, 200, |r| (r.range(0..60_000_000u64), r.range(1..100_000u64)));
        if events.is_empty() {
            events.push((rng.range(0..60_000_000u64), rng.range(1..100_000u64)));
        }
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut m = RateMeter::new(SimTime::from_secs(1));
        for &(t, bytes) in &sorted {
            m.record(SimTime::from_us(t), bytes);
        }
        m.finish(SimTime::from_secs(61));
        assert_eq!(m.total_bytes(), sorted.iter().map(|&(_, b)| b).sum::<u64>());
        assert!(m.mean_kbps() <= m.max_kbps() + 1e-9);
        assert!(m.mean_kbps() >= 0.0);
    }
}

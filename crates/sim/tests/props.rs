//! Property tests for the DES primitives.

use netaware_sim::{AccessSerializer, Histogram, MeanMax, RateMeter, Scheduler, SimTime, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The scheduler pops every event exactly once, in (time, insertion)
    /// order — equivalent to a stable sort.
    #[test]
    fn scheduler_is_a_stable_sort(times in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.push(SimTime::from_us(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = s.pop() {
            popped.push((t.as_us(), idx));
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        prop_assert_eq!(popped, expected);
    }

    /// run_until dispatches exactly the events at or before the horizon.
    #[test]
    fn run_until_partitions_by_horizon(
        times in prop::collection::vec(0u64..10_000, 0..200),
        horizon in 0u64..10_000,
    ) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.push(SimTime::from_us(t), i);
        }
        let mut seen = Vec::new();
        s.run_until(SimTime::from_us(horizon), |_, t, _| seen.push(t.as_us()));
        prop_assert_eq!(seen.len(), times.iter().filter(|&&t| t <= horizon).count());
        prop_assert_eq!(s.len(), times.iter().filter(|&&t| t > horizon).count());
        prop_assert!(s.now() >= SimTime::from_us(horizon));
    }

    /// The serialiser is work-conserving and FIFO: departures are
    /// strictly increasing, spaced at least one transmission time, and
    /// total busy time equals the sum of transmission times.
    #[test]
    fn serializer_work_conservation(
        rate in 100_000u64..200_000_000,
        arrivals in prop::collection::vec((0u64..5_000_000, 40u32..1500), 1..200),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut l = AccessSerializer::new(rate);
        let mut prev_dep = SimTime::ZERO;
        let mut busy = 0u64;
        for &(t, size) in &sorted {
            let dep = l.enqueue(SimTime::from_us(t), size);
            let tx = l.tx_time_us(size);
            busy += tx;
            prop_assert!(dep >= prev_dep + tx, "FIFO spacing violated");
            prop_assert!(dep.as_us() >= t + tx, "departed before transmission finished");
            prev_dep = dep;
        }
        prop_assert_eq!(l.busy_us(), busy);
        prop_assert_eq!(l.total_packets(), sorted.len() as u64);
        // Last departure is at most (first arrival + total work + idle gaps).
        prop_assert!(prev_dep.as_us() <= sorted.last().unwrap().0 + busy + sorted[0].0);
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Merging Welford accumulators over any split equals the whole.
    #[test]
    fn welford_merge_any_split(xs in prop::collection::vec(-1e6f64..1e6, 2..200), cut in 0usize..200) {
        let cut = cut % xs.len();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..cut].iter().for_each(|&x| a.push(x));
        xs[cut..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
    }

    /// MeanMax max is the true max, mean within the value range.
    #[test]
    fn meanmax_invariants(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut m = MeanMax::new();
        xs.iter().for_each(|&x| m.push(x));
        let true_max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(m.max(), true_max);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(m.mean() >= lo - 1e-9 && m.mean() <= true_max + 1e-9);
    }

    /// Histogram quantiles agree with the sorted-vector definition.
    #[test]
    fn histogram_quantile_matches_sorted(vals in prop::collection::vec(0usize..100, 1..300), q in 0.0f64..=1.0) {
        let mut h = Histogram::new(100);
        vals.iter().for_each(|&v| h.push(v));
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(h.quantile(q), Some(sorted[rank - 1]));
    }

    /// RateMeter conserves bytes and mean ≤ max.
    #[test]
    fn rate_meter_conserves(
        events in prop::collection::vec((0u64..60_000_000, 1u64..100_000), 1..200),
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut m = RateMeter::new(SimTime::from_secs(1));
        for &(t, bytes) in &sorted {
            m.record(SimTime::from_us(t), bytes);
        }
        m.finish(SimTime::from_secs(61));
        prop_assert_eq!(m.total_bytes(), sorted.iter().map(|&(_, b)| b).sum::<u64>());
        prop_assert!(m.mean_kbps() <= m.max_kbps() + 1e-9);
        prop_assert!(m.mean_kbps() >= 0.0);
    }
}

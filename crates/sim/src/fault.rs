//! Per-link fault model: packet loss, latency jitter, transient outages.
//!
//! [`LinkFaults`] is the mechanism layer of the fault-injection
//! subsystem: one instance models the impairments of one access link and
//! answers, per packet, "does this packet survive, and how much extra
//! delay does it pick up?". Policy (which links get which parameters)
//! lives one level up in `netaware-faults`; the protocol layer decides
//! what a dropped packet *means* (lost chunk, lost request, …).
//!
//! ## Determinism contract
//!
//! Every random decision draws from the [`DetRng`] handed to
//! [`LinkFaults::new`] — callers derive it from a dedicated stream so
//! fault draws never perturb protocol or scenario streams. Disabled
//! impairments consume **zero** draws: a link with `loss = 0` never rolls
//! a loss coin, a link without jitter never rolls a jitter offset, and a
//! link without outages never advances the outage state machine. A no-op
//! parameter set therefore leaves the RNG untouched entirely, which is
//! what keeps fault-disabled runs byte-identical to pre-fault baselines.
//!
//! The outage machine is advanced lazily by packet arrivals using a
//! monotone high-water-mark clock, so out-of-order queries (transfers
//! evaluate future-timestamped packets) cannot rewind it.

use crate::rng::DetRng;

/// Impairment parameters of one link (all default to "healthy").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaultParams {
    /// Independent per-packet drop probability, `0.0..=1.0`.
    pub loss: f64,
    /// Maximum extra one-way delay per packet, µs (uniform in
    /// `0..=jitter_us`).
    pub jitter_us: u64,
    /// Transient-outage arrival rate while the link is up, Hz.
    pub outage_rate_hz: f64,
    /// Mean outage duration, µs (exponentially distributed).
    pub outage_mean_us: u64,
}

impl LinkFaultParams {
    /// `true` when no impairment is configured.
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0 && self.jitter_us == 0 && !self.has_outages()
    }

    fn has_outages(&self) -> bool {
        self.outage_rate_hz > 0.0 && self.outage_mean_us > 0
    }
}

/// What happened to one packet crossing a faulty link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// The packet was lost (loss coin or link outage).
    Dropped,
    /// The packet survived, delayed by `extra_delay_us` beyond the
    /// fault-free propagation time.
    Pass {
        /// Additional one-way delay from jitter, µs.
        extra_delay_us: u64,
    },
}

impl PacketFate {
    /// `true` when the packet was lost.
    pub fn is_dropped(&self) -> bool {
        matches!(self, PacketFate::Dropped)
    }
}

/// Fault state of one link: loss coin, jitter draw, and an alternating
/// up/down outage renewal process.
#[derive(Clone, Debug)]
pub struct LinkFaults {
    p: LinkFaultParams,
    rng: DetRng,
    /// Monotone high-water mark of query times, µs.
    clock_us: u64,
    /// Current outage-machine state.
    up: bool,
    /// Next up/down transition, µs (`u64::MAX` without outages).
    next_flip_us: u64,
    /// Packets dropped so far (loss + outage).
    drops: u64,
    /// Outages entered so far.
    outages: u64,
}

impl LinkFaults {
    /// Builds the fault state for one link. `rng` must be a dedicated
    /// stream (fault draws must not share a stream with protocol logic).
    pub fn new(params: LinkFaultParams, mut rng: DetRng) -> Self {
        let next_flip_us = if params.has_outages() {
            draw_up_period_us(&params, &mut rng)
        } else {
            u64::MAX
        };
        LinkFaults {
            p: params,
            rng,
            clock_us: 0,
            up: true,
            next_flip_us,
            drops: 0,
            outages: 0,
        }
    }

    /// The configured impairment parameters.
    pub fn params(&self) -> LinkFaultParams {
        self.p
    }

    /// Packets dropped so far (loss coin + outages).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Outage periods entered so far.
    pub fn outages(&self) -> u64 {
        self.outages
    }

    /// Decides the fate of one packet crossing the link at `now_us`.
    ///
    /// Draw order is fixed (outage machine, loss coin, jitter offset) and
    /// disabled impairments draw nothing — both are part of the
    /// determinism contract.
    pub fn packet_fate(&mut self, now_us: u64) -> PacketFate {
        if !self.advance(now_us) {
            self.drops += 1;
            return PacketFate::Dropped;
        }
        if self.p.loss > 0.0 && self.rng.chance(self.p.loss) {
            self.drops += 1;
            return PacketFate::Dropped;
        }
        let extra_delay_us = if self.p.jitter_us > 0 {
            self.rng.range(0..=self.p.jitter_us)
        } else {
            0
        };
        PacketFate::Pass { extra_delay_us }
    }

    /// Whether the link is up at `now_us` (advances the outage machine).
    pub fn is_up(&mut self, now_us: u64) -> bool {
        self.advance(now_us)
    }

    /// Advances the outage renewal process to `max(clock, now_us)` and
    /// returns whether the link is up there.
    fn advance(&mut self, now_us: u64) -> bool {
        self.clock_us = self.clock_us.max(now_us);
        if !self.p.has_outages() {
            return true;
        }
        while self.next_flip_us <= self.clock_us {
            self.up = !self.up;
            let hold = if self.up {
                draw_up_period_us(&self.p, &mut self.rng)
            } else {
                self.outages += 1;
                (self.rng.exp(self.p.outage_mean_us as f64) as u64).max(1)
            };
            self.next_flip_us = self.next_flip_us.saturating_add(hold);
        }
        self.up
    }
}

/// Draws the duration of one healthy period: outages arrive at
/// `outage_rate_hz` while the link is up, so up-periods are exponential
/// with mean `1/rate` seconds.
fn draw_up_period_us(p: &LinkFaultParams, rng: &mut DetRng) -> u64 {
    let mean_us = 1e6 / p.outage_rate_hz;
    (rng.exp(mean_us) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::stream(7, "fault-test")
    }

    #[test]
    fn noop_params_draw_nothing() {
        let mut healthy = LinkFaults::new(LinkFaultParams::default(), rng());
        for t in 0..1000u64 {
            assert_eq!(
                healthy.packet_fate(t * 1_000),
                PacketFate::Pass { extra_delay_us: 0 }
            );
        }
        // The RNG inside is still at its initial position.
        let mut untouched = rng();
        assert_eq!(healthy.rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn loss_rate_matches_parameter() {
        let mut f = LinkFaults::new(
            LinkFaultParams {
                loss: 0.2,
                ..LinkFaultParams::default()
            },
            rng(),
        );
        let n = 100_000;
        let dropped = (0..n).filter(|&t| f.packet_fate(t).is_dropped()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "observed loss {rate}");
        assert_eq!(f.drops(), dropped as u64);
    }

    #[test]
    fn jitter_is_bounded_and_exercised() {
        let mut f = LinkFaults::new(
            LinkFaultParams {
                jitter_us: 5_000,
                ..LinkFaultParams::default()
            },
            rng(),
        );
        let mut seen_nonzero = false;
        for t in 0..10_000u64 {
            match f.packet_fate(t) {
                PacketFate::Pass { extra_delay_us } => {
                    assert!(extra_delay_us <= 5_000);
                    seen_nonzero |= extra_delay_us > 0;
                }
                PacketFate::Dropped => panic!("jitter-only link dropped a packet"),
            }
        }
        assert!(seen_nonzero, "jitter never produced a delay");
    }

    #[test]
    fn outages_alternate_and_drop_everything_while_down() {
        let mut f = LinkFaults::new(
            LinkFaultParams {
                outage_rate_hz: 2.0, // mean 0.5 s up
                outage_mean_us: 300_000,
                ..LinkFaultParams::default()
            },
            rng(),
        );
        // Sample one packet per millisecond over 60 s of sim time.
        let mut drops = 0u64;
        for t in 0..60_000u64 {
            if f.packet_fate(t * 1_000).is_dropped() {
                drops += 1;
            }
        }
        assert!(f.outages() > 10, "only {} outages in 60 s", f.outages());
        // Expected down fraction = 0.3/(0.5+0.3) = 37.5%; allow slack.
        let frac = drops as f64 / 60_000.0;
        assert!((0.15..0.6).contains(&frac), "down fraction {frac}");
    }

    #[test]
    fn out_of_order_queries_do_not_rewind_the_machine() {
        let params = LinkFaultParams {
            outage_rate_hz: 5.0,
            outage_mean_us: 100_000,
            ..LinkFaultParams::default()
        };
        let mut a = LinkFaults::new(params, rng());
        let mut b = LinkFaults::new(params, rng());
        // Same query sequence, but `b` sees one stale timestamp; the
        // high-water clock must keep both machines in lockstep afterward.
        for t in [0u64, 400_000, 200_000, 800_000, 1_200_000] {
            a.packet_fate(t);
            b.packet_fate(t);
        }
        assert_eq!(a.packet_fate(1_300_000), b.packet_fate(1_300_000));
    }

    #[test]
    fn same_seed_same_fates() {
        let params = LinkFaultParams {
            loss: 0.1,
            jitter_us: 2_000,
            outage_rate_hz: 1.0,
            outage_mean_us: 200_000,
        };
        let run = || {
            let mut f = LinkFaults::new(params, rng());
            (0..5_000u64).map(|t| f.packet_fate(t * 500)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

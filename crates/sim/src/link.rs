//! Access-link packet timing.
//!
//! The paper's BW inference rests on a physical fact: a chunk is sent as a
//! burst of packets that serialise back-to-back on the sender's bottleneck
//! link, so the receiver sees them spaced by the bottleneck transmission
//! time ("packet-pairs"). [`AccessSerializer`] reproduces exactly that: a
//! work-conserving FIFO whose departure times are
//! `max(arrival, previous departure) + bytes·8/rate`.
//!
//! Cross-traffic (packets to *other* receivers interleaving in the same
//! queue) only ever stretches the gap observed by one receiver, never
//! shrinks it — which is why the minimum IPG is a conservative capacity
//! witness, as the paper argues.

use crate::time::SimTime;

/// Work-conserving FIFO serialiser for one direction of an access link.
///
/// ```
/// use netaware_sim::{AccessSerializer, SimTime};
///
/// // A 10 Mb/s link: a 1250-byte packet serialises in exactly 1 ms —
/// // the packet-pair constant behind the paper's BW threshold.
/// let mut link = AccessSerializer::new(10_000_000);
/// let d1 = link.enqueue(SimTime::ZERO, 1250);
/// let d2 = link.enqueue(SimTime::ZERO, 1250);
/// assert_eq!(d1, SimTime::from_ms(1));
/// assert_eq!(d2 - d1, 1_000); // µs
/// ```
#[derive(Debug, Clone)]
pub struct AccessSerializer {
    rate_bps: u64,
    next_free: SimTime,
    /// Total bytes ever enqueued (for utilisation accounting).
    bytes: u64,
    /// Total packets ever enqueued.
    packets: u64,
    /// Busy time accumulated, in microseconds.
    busy_us: u64,
}

impl AccessSerializer {
    /// A serialiser draining at `rate_bps` bits per second.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        AccessSerializer {
            rate_bps,
            next_free: SimTime::ZERO,
            bytes: 0,
            packets: 0,
            busy_us: 0,
        }
    }

    /// Transmission time of `bytes` on this link, in microseconds
    /// (rounded up — a packet is not delivered until its last bit).
    pub fn tx_time_us(&self, bytes: u32) -> u64 {
        let bits = bytes as u64 * 8;
        (bits * 1_000_000).div_ceil(self.rate_bps)
    }

    /// Enqueues a packet arriving at `now`; returns its departure time
    /// (when its last bit leaves the link).
    pub fn enqueue(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let start = now.max(self.next_free);
        let tx = self.tx_time_us(bytes);
        let dep = start + tx;
        self.next_free = dep;
        self.bytes += bytes as u64;
        self.packets += 1;
        self.busy_us += tx;
        dep
    }

    /// When the link next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Queueing backlog (µs of work) an arrival at `now` would wait for.
    pub fn backlog_us(&self, now: SimTime) -> u64 {
        self.next_free.since(now)
    }

    /// Configured rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Total bytes pushed through.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets pushed through.
    pub fn total_packets(&self) -> u64 {
        self.packets
    }

    /// Cumulative busy time in microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }
}

/// Downlink direction of an access link. Same mechanics as the uplink
/// serialiser; a separate type only so call sites cannot mix directions.
#[derive(Debug, Clone)]
pub struct DownlinkQueue {
    inner: AccessSerializer,
}

impl DownlinkQueue {
    /// A downlink draining at `rate_bps`.
    pub fn new(rate_bps: u64) -> Self {
        DownlinkQueue {
            inner: AccessSerializer::new(rate_bps),
        }
    }

    /// Enqueues an arriving packet; returns when its last bit is
    /// delivered to the host.
    pub fn deliver(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.inner.enqueue(now, bytes)
    }

    /// Underlying serialiser (read-only accounting).
    pub fn as_serializer(&self) -> &AccessSerializer {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_matches_paper_constants() {
        // 1250 B over 10 Mb/s = exactly 1 ms — the paper's BW threshold.
        let l = AccessSerializer::new(10_000_000);
        assert_eq!(l.tx_time_us(1250), 1_000);
        // Over a 100 Mb/s LAN: 0.1 ms.
        let lan = AccessSerializer::new(100_000_000);
        assert_eq!(lan.tx_time_us(1250), 100);
        // Over 512 kb/s DSL uplink: ~19.5 ms.
        let dsl = AccessSerializer::new(512_000);
        assert_eq!(dsl.tx_time_us(1250), 19_532);
    }

    #[test]
    fn burst_departures_are_spaced_by_tx_time() {
        let mut l = AccessSerializer::new(10_000_000);
        let t0 = SimTime::from_ms(5);
        let d1 = l.enqueue(t0, 1250);
        let d2 = l.enqueue(t0, 1250);
        let d3 = l.enqueue(t0, 1250);
        assert_eq!(d1, t0 + 1_000);
        assert_eq!(d2 - d1, 1_000);
        assert_eq!(d3 - d2, 1_000);
    }

    #[test]
    fn idle_link_restarts_at_arrival() {
        let mut l = AccessSerializer::new(1_000_000);
        let d1 = l.enqueue(SimTime::from_ms(0), 125); // 1ms tx
        assert_eq!(d1, SimTime::from_ms(1));
        // Arrive long after the queue drained.
        let d2 = l.enqueue(SimTime::from_ms(100), 125);
        assert_eq!(d2, SimTime::from_ms(101));
    }

    #[test]
    fn departures_never_decrease() {
        let mut l = AccessSerializer::new(2_000_000);
        let mut last = SimTime::ZERO;
        for i in 0..1000u64 {
            // Erratic arrivals, some while busy, some after idle gaps.
            let now = SimTime::from_us(i * 137 % 50_000);
            let now = now.max(last); // arrivals move forward in sim time
            let dep = l.enqueue(now, 100 + (i % 1150) as u32);
            assert!(dep >= last);
            assert!(dep > now);
            last = dep;
        }
    }

    #[test]
    fn work_conservation() {
        // Saturating arrivals: busy time equals wall time of the burst.
        let mut l = AccessSerializer::new(8_000_000); // 1 MB/s
        let t0 = SimTime::ZERO;
        for _ in 0..100 {
            l.enqueue(t0, 1000); // each takes 1ms
        }
        assert_eq!(l.next_free(), SimTime::from_ms(100));
        assert_eq!(l.busy_us(), 100_000);
        assert_eq!(l.total_bytes(), 100_000);
        assert_eq!(l.total_packets(), 100);
    }

    #[test]
    fn backlog_accounting() {
        let mut l = AccessSerializer::new(8_000_000);
        let t0 = SimTime::ZERO;
        l.enqueue(t0, 1000);
        l.enqueue(t0, 1000);
        assert_eq!(l.backlog_us(t0), 2_000);
        assert_eq!(l.backlog_us(SimTime::from_ms(1)), 1_000);
        assert_eq!(l.backlog_us(SimTime::from_ms(10)), 0);
    }

    #[test]
    fn interleaving_only_stretches_per_receiver_gaps() {
        // Packets to receiver A with a packet to B wedged between:
        // A's observed gap grows beyond the back-to-back tx time.
        let mut l = AccessSerializer::new(10_000_000);
        let t0 = SimTime::ZERO;
        let a1 = l.enqueue(t0, 1250);
        let _b = l.enqueue(t0, 1250);
        let a2 = l.enqueue(t0, 1250);
        assert_eq!(a2 - a1, 2_000); // 2 tx times, not 1
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = AccessSerializer::new(0);
    }

    #[test]
    fn downlink_wrapper() {
        let mut d = DownlinkQueue::new(4_000_000);
        let t = d.deliver(SimTime::ZERO, 500);
        assert_eq!(t, SimTime::from_us(1_000));
        assert_eq!(d.as_serializer().total_packets(), 1);
    }

    #[test]
    fn tx_time_rounds_up() {
        let l = AccessSerializer::new(3_000_000);
        // 100 B = 800 bits over 3 Mb/s = 266.66 µs → 267.
        assert_eq!(l.tx_time_us(100), 267);
    }
}

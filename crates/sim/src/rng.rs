//! Named deterministic RNG streams.
//!
//! Each simulation component draws from its own stream, derived from the
//! experiment seed and a label. Components therefore stay statistically
//! independent *and* insulated: adding a draw to the peer-selection stream
//! cannot shift the churn stream, which keeps A/B ablations comparable.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Derives the stream identified by `label` from `seed`.
    pub fn stream(seed: u64, label: &str) -> Self {
        let mut h = seed ^ 0xA076_1D64_78BD_642F;
        for b in label.bytes() {
            h = splitmix(h ^ b as u64);
        }
        DetRng {
            inner: SmallRng::seed_from_u64(splitmix(h)),
        }
    }

    /// Derives a sub-stream, e.g. one per peer.
    pub fn substream(seed: u64, label: &str, idx: u64) -> Self {
        let mut s = Self::stream(seed, label);
        // Burn the index in so substreams are independent.
        let derived = splitmix(s.inner.gen::<u64>() ^ splitmix(idx));
        DetRng {
            inner: SmallRng::seed_from_u64(derived),
        }
    }

    /// Uniform sample from a range.
    pub fn range<T: SampleUniform, R: SampleRange<T>>(&mut self, r: R) -> T {
        self.inner.gen_range(r)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Uniform float in `[0,1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Exponential variate with the given mean (rate = 1/mean).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Bounded Pareto variate (heavy-tailed session lengths, swarm sizes).
    pub fn pareto(&mut self, scale: f64, shape: f64, cap: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        (scale / u.powf(1.0 / shape)).min(cap)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.inner.gen_range(0..xs.len())]
    }

    /// Picks an index according to non-negative weights; `None` when all
    /// weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut x = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1) // float round-off fell off the end
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let a: Vec<u64> = {
            let mut r = DetRng::stream(1, "sel");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::stream(1, "sel");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::stream(1, "sel");
        let mut b = DetRng::stream(1, "churn");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::stream(1, "x");
        let mut b = DetRng::stream(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_are_independent_of_index() {
        let mut a = DetRng::substream(1, "peer", 0);
        let mut b = DetRng::substream(1, "peer", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_frequency() {
        let mut r = DetRng::stream(3, "p");
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn exp_mean() {
        let mut r = DetRng::stream(4, "e");
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut r = DetRng::stream(5, "par");
        for _ in 0..10_000 {
            let v = r.pareto(2.0, 1.2, 100.0);
            assert!((2.0..=100.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut r = DetRng::stream(6, "w");
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn pick_weighted_degenerate() {
        let mut r = DetRng::stream(7, "w");
        assert_eq!(r.pick_weighted(&[]), None);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(r.pick_weighted(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::stream(8, "sh");
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::stream(9, "rg");
        for _ in 0..1000 {
            let v: u32 = r.range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}

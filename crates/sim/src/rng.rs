//! Named deterministic RNG streams.
//!
//! Each simulation component draws from its own stream, derived from the
//! experiment seed and a label. Components therefore stay statistically
//! independent *and* insulated: adding a draw to the peer-selection stream
//! cannot shift the churn stream, which keeps A/B ablations comparable.
//!
//! The generator is a self-contained xoshiro256++ (public-domain
//! construction by Blackman & Vigna), state-expanded from the 64-bit
//! stream seed with SplitMix64 — no external crates, no ambient entropy,
//! and the exact draw sequence is part of the repo's determinism
//! contract: a given `(seed, label)` pair yields the same stream on every
//! platform and every run.

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Derives the stream identified by `label` from `seed`.
    pub fn stream(seed: u64, label: &str) -> Self {
        let mut h = seed ^ 0xA076_1D64_78BD_642F;
        for b in label.bytes() {
            h = splitmix(h ^ b as u64);
        }
        DetRng::from_u64_seed(splitmix(h))
    }

    /// Derives a sub-stream, e.g. one per peer.
    pub fn substream(seed: u64, label: &str, idx: u64) -> Self {
        let mut s = Self::stream(seed, label);
        // Burn the index in so substreams are independent.
        let derived = splitmix(s.next_u64() ^ splitmix(idx));
        DetRng::from_u64_seed(derived)
    }

    /// Expands a 64-bit seed into full generator state via SplitMix64,
    /// the standard seeding procedure for the xoshiro family.
    fn from_u64_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Uniform sample from a range.
    pub fn range<T: SampleUniform, R: SampleRange<T>>(&mut self, r: R) -> T {
        let (lo, hi, inclusive) = r.bounds();
        T::sample_between(self, lo, hi, inclusive)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform float in `[0,1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 mantissa bits of a draw → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential variate with the given mean (rate = 1/mean).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Bounded Pareto variate (heavy-tailed session lengths, swarm sizes).
    pub fn pareto(&mut self, scale: f64, shape: f64, cap: f64) -> f64 {
        let u: f64 = self.range(f64::MIN_POSITIVE..1.0);
        (scale / u.powf(1.0 / shape)).min(cap)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.range(0..xs.len())]
    }

    /// Picks an index according to non-negative weights; `None` when all
    /// weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1) // float round-off fell off the end
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Types [`DetRng::range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between(rng: &mut DetRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range shapes accepted by [`DetRng::range`].
pub trait SampleRange<T> {
    /// Decomposes into `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut DetRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                assert!(span > 0, "empty sample range");
                // Fixed-point scaling of one 64-bit draw onto the span
                // (bias ≤ 2⁻⁶⁴, far below simulation noise, and — unlike
                // rejection sampling — always exactly one draw, which
                // keeps stream positions aligned across platforms).
                let scaled = (rng.next_u64() as u128 * span) >> 64;
                lo + scaled as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between(rng: &mut DetRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty sample range");
        let v = lo + rng.unit() * (hi - lo);
        // Guard against round-up to the exclusive bound.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let a: Vec<u64> = {
            let mut r = DetRng::stream(1, "sel");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::stream(1, "sel");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::stream(1, "sel");
        let mut b = DetRng::stream(1, "churn");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::stream(1, "x");
        let mut b = DetRng::stream(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_are_independent_of_index() {
        let mut a = DetRng::substream(1, "peer", 0);
        let mut b = DetRng::substream(1, "peer", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn draw_sequence_is_pinned() {
        // The exact stream is part of the determinism contract: changing
        // the generator or its seeding invalidates recorded artifacts, so
        // it must not happen silently.
        let mut r = DetRng::stream(42, "contract");
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                993329967408822964,
                4470650153753996028,
                10992501957896032204,
                3647953716654104547,
            ]
        );
    }

    #[test]
    fn chance_frequency() {
        let mut r = DetRng::stream(3, "p");
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn exp_mean() {
        let mut r = DetRng::stream(4, "e");
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut r = DetRng::stream(5, "par");
        for _ in 0..10_000 {
            let v = r.pareto(2.0, 1.2, 100.0);
            assert!((2.0..=100.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut r = DetRng::stream(6, "w");
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&w).expect("weights are positive")] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn pick_weighted_degenerate() {
        let mut r = DetRng::stream(7, "w");
        assert_eq!(r.pick_weighted(&[]), None);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(r.pick_weighted(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::stream(8, "sh");
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::stream(9, "rg");
        for _ in 0..1000 {
            let v: u32 = r.range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut r = DetRng::stream(10, "incl");
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range(0u32..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                1 | 2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = DetRng::stream(11, "u");
        for _ in 0..100_000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }
}

//! Streaming statistics.
//!
//! Table II of the paper reports mean and maximum stream rates and peer
//! counts "as seen by NAPA-WINE peers": [`RateMeter`] reproduces its
//! windowed rate measurement (bytes per fixed [`SimTime`] window → kb/s,
//! with mean and max over windows — the meter is driven entirely by
//! simulated time, never the wall clock, so its readings are
//! deterministic), [`MeanMax`] and [`Welford`] aggregate scalar
//! observations, and [`Histogram`] supports the hop-median used by the
//! HOP partition and backs the `netaware-obs` metrics-registry
//! histograms.

use crate::time::SimTime;

/// Streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
    }
}

/// Tracks the mean and maximum of a series (the two columns of Table II).
#[derive(Debug, Clone, Default)]
pub struct MeanMax {
    w: Welford,
    max: f64,
}

impl MeanMax {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.w.push(x);
        if x > self.max || self.w.count() == 1 {
            self.max = x;
        }
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.w.mean()
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.w.count() == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.w.count()
    }

    /// Merges another tracker.
    pub fn merge(&mut self, other: &MeanMax) {
        if other.count() == 0 {
            return;
        }
        let had = self.w.count() > 0;
        self.w.merge(&other.w);
        self.max = if had { self.max.max(other.max) } else { other.max };
    }
}

/// Windowed byte-rate meter: accumulates bytes, closes fixed windows, and
/// reports the mean and max window rate in kb/s.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window_us: u64,
    window_start: SimTime,
    window_bytes: u64,
    rates_kbps: MeanMax,
    total_bytes: u64,
}

impl RateMeter {
    /// A meter with the given window length (the paper effectively uses
    /// seconds-scale windows; we default to 10 s in the testbed).
    pub fn new(window: SimTime) -> Self {
        assert!(window.as_us() > 0, "window must be positive");
        RateMeter {
            window_us: window.as_us(),
            window_start: SimTime::ZERO,
            window_bytes: 0,
            rates_kbps: MeanMax::new(),
            total_bytes: 0,
        }
    }

    /// Records `bytes` observed at time `now`, closing any windows that
    /// elapsed since the previous record.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.roll_to(now);
        self.window_bytes += bytes;
        self.total_bytes += bytes;
    }

    /// Closes windows up to `now` (call at experiment end before reading).
    pub fn finish(&mut self, now: SimTime) {
        self.roll_to(now);
        // Close the final partial window if it saw any traffic.
        if self.window_bytes > 0 {
            let elapsed = now.since(self.window_start).max(1);
            let kbps = self.window_bytes as f64 * 8.0 / elapsed as f64 * 1_000.0;
            self.rates_kbps.push(kbps);
            self.window_bytes = 0;
        }
    }

    fn roll_to(&mut self, now: SimTime) {
        while now.since(self.window_start) >= self.window_us {
            let kbps = self.window_bytes as f64 * 8.0 / self.window_us as f64 * 1_000.0;
            self.rates_kbps.push(kbps);
            self.window_bytes = 0;
            self.window_start += self.window_us;
        }
    }

    /// Mean window rate, kb/s.
    pub fn mean_kbps(&self) -> f64 {
        self.rates_kbps.mean()
    }

    /// Max window rate, kb/s.
    pub fn max_kbps(&self) -> f64 {
        self.rates_kbps.max()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

/// Dense integer histogram over `0..N`, with exact quantiles. Used for
/// hop-count distributions (hop counts fit comfortably in `0..256`).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram over values `0..upper`.
    pub fn new(upper: usize) -> Self {
        Histogram {
            counts: vec![0; upper],
            total: 0,
        }
    }

    /// Adds `v`, clamping into range.
    pub fn push(&mut self, v: usize) {
        let idx = v.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds `v` with a weight (e.g. bytes).
    pub fn push_weighted(&mut self, v: usize, w: u64) {
        let idx = v.min(self.counts.len() - 1);
        self.counts[idx] += w;
        self.total += w;
    }

    /// Total weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at a bucket.
    pub fn count(&self, v: usize) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Exact q-quantile (0 ≤ q ≤ 1) of the recorded distribution; `None`
    /// when empty. `quantile(0.5)` is the median the HOP partition uses.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(i);
            }
        }
        Some(self.counts.len() - 1)
    }

    /// Merges another histogram of the same size.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 19) as f64).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..30].iter().for_each(|&x| a.push(x));
        xs[30..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_empty_cases() {
        let mut a = Welford::new();
        a.merge(&Welford::new());
        assert_eq!(a.count(), 0);
        let mut b = Welford::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
    }

    #[test]
    fn meanmax_tracks_both() {
        let mut m = MeanMax::new();
        for x in [1.0, 5.0, 3.0] {
            m.push(x);
        }
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.max(), 5.0);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn meanmax_negative_values() {
        let mut m = MeanMax::new();
        m.push(-5.0);
        m.push(-2.0);
        assert_eq!(m.max(), -2.0);
    }

    #[test]
    fn meanmax_empty_reads_zero() {
        let m = MeanMax::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), 0.0);
    }

    #[test]
    fn meanmax_merge() {
        let mut a = MeanMax::new();
        a.push(1.0);
        let mut b = MeanMax::new();
        b.push(9.0);
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 9.0);
        assert!((a.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rate_meter_constant_rate() {
        // 48 kB/s = 384 kb/s (the paper's nominal stream rate).
        let mut m = RateMeter::new(SimTime::from_secs(1));
        for s in 0..60u64 {
            for p in 0..48u64 {
                m.record(SimTime::from_us(s * 1_000_000 + p * 20_000), 1000);
            }
        }
        m.finish(SimTime::from_secs(60));
        assert!((m.mean_kbps() - 384.0).abs() < 1.0, "{}", m.mean_kbps());
        assert!((m.max_kbps() - 384.0).abs() < 1.0);
        assert_eq!(m.total_bytes(), 60 * 48 * 1000);
    }

    #[test]
    fn rate_meter_bursty_max_above_mean() {
        let mut m = RateMeter::new(SimTime::from_secs(1));
        m.record(SimTime::from_ms(100), 100_000); // burst in window 0
        m.record(SimTime::from_secs(5), 1_000);
        m.finish(SimTime::from_secs(10));
        assert!(m.max_kbps() > m.mean_kbps());
        assert!((m.max_kbps() - 800.0).abs() < 1.0);
    }

    #[test]
    fn rate_meter_idle_windows_count_as_zero() {
        let mut m = RateMeter::new(SimTime::from_secs(1));
        m.record(SimTime::from_ms(500), 1000);
        m.finish(SimTime::from_secs(10));
        // one active window out of ten → mean is a tenth of the burst rate
        assert!(m.mean_kbps() < m.max_kbps());
        assert!((m.mean_kbps() - 0.8).abs() < 0.01, "{}", m.mean_kbps());
    }

    #[test]
    fn histogram_median_and_quantiles() {
        let mut h = Histogram::new(64);
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.push(v);
        }
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(9));
    }

    #[test]
    fn histogram_weighted_and_clamped() {
        let mut h = Histogram::new(8);
        h.push_weighted(3, 10);
        h.push(100); // clamps into last bucket
        assert_eq!(h.count(3), 10);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.total(), 11);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(8);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(8);
        a.push(1);
        let mut b = Histogram::new(8);
        b.push(2);
        b.push(2);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.quantile(0.5), Some(2));
    }
}

//! Typed simulation-engine errors.
//!
//! The engine used to police misuse (scheduling an event before the
//! clock) with a debug assertion only, so release builds silently
//! saturated. [`SimError`] makes the contract explicit: fallible entry
//! points return `Result<_, SimError>`, and the infallible convenience
//! paths document exactly which recovery they apply.

use crate::time::SimTime;
use std::fmt;

/// Errors the simulation engine can report to callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An event was scheduled before the scheduler's current time.
    ///
    /// Processing it would violate causality (its effects would be
    /// observed by events that already ran), so the fallible push
    /// ([`crate::Scheduler::try_push`]) refuses it. The infallible
    /// [`crate::Scheduler::push`] instead saturates the timestamp to
    /// `now` and counts the correction, so callers that treat "now" as
    /// an acceptable floor keep working while the drift stays visible.
    SchedulePast {
        /// The (past) time the event asked for.
        at: SimTime,
        /// The scheduler clock when the push was attempted.
        now: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SchedulePast { at, now } => write!(
                f,
                "event scheduled in the past: at {at} but the clock is already at {now}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_times() {
        let e = SimError::SchedulePast {
            at: SimTime::from_us(5),
            now: SimTime::from_ms(1),
        };
        let s = e.to_string();
        assert!(s.contains("0.000005s"), "{s}");
        assert!(s.contains("0.001000s"), "{s}");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::SchedulePast {
            at: SimTime::ZERO,
            now: SimTime::from_us(1),
        });
        assert!(e.to_string().contains("past"));
    }
}

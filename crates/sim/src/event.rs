//! The event queue.
//!
//! A binary-heap scheduler with two guarantees the simulation relies on:
//!
//! 1. **Monotonic time** — events pop in non-decreasing timestamp order,
//!    and scheduling in the past is a logic error caught by a debug
//!    assertion;
//! 2. **Stable ties** — events scheduled for the same instant pop in the
//!    order they were pushed, so the run is a pure function of the seed
//!    rather than of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, sequence).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic event scheduler.
///
/// ```
/// use netaware_sim::{Scheduler, SimTime};
///
/// let mut s = Scheduler::new();
/// s.push(SimTime::from_ms(2), "later");
/// s.push(SimTime::from_ms(1), "sooner");
/// let (t, ev) = s.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_ms(1), "sooner"));
/// assert_eq!(s.now(), SimTime::from_ms(1));
/// ```
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling strictly in the past is a logic error (debug-asserted);
    /// in release builds the event fires "now" instead, keeping time
    /// monotonic.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a relative delay in microseconds.
    pub fn push_after(&mut self, delay_us: u64, event: E) {
        let at = self.now + delay_us;
        self.push(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drains and handles events until the queue empties or the next
    /// event is past `horizon`; events beyond the horizon stay queued.
    /// Returns the number of events dispatched.
    pub fn run_until<F: FnMut(&mut Self, SimTime, E)>(
        &mut self,
        horizon: SimTime,
        mut handler: F,
    ) -> u64 {
        let start = self.popped;
        loop {
            match self.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break,
            }
            let Some((at, ev)) = self.pop() else { break };
            handler(self, at, ev);
        }
        // The experiment formally ends at the horizon even if the queue
        // drained early.
        if self.now < horizon {
            self.now = horizon;
        }
        self.popped - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_us(30), "c");
        s.push(SimTime::from_us(10), "a");
        s.push(SimTime::from_us(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.push(SimTime::from_us(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(2), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_ms(2));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(5), 1);
        s.pop();
        s.push_after(1_000, 2);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(6));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s = Scheduler::new();
        for i in 1..=10u64 {
            s.push(SimTime::from_ms(i), i);
        }
        let mut seen = Vec::new();
        let n = s.run_until(SimTime::from_ms(5), |_, _, e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.now(), SimTime::from_ms(5));
    }

    #[test]
    fn run_until_lets_handler_reschedule() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.push(SimTime::from_ms(1), 0);
        let mut count = 0;
        s.run_until(SimTime::from_ms(10), |sched, _, gen| {
            count += 1;
            if gen < 100 {
                sched.push_after(1_000, gen + 1);
            }
        });
        assert_eq!(count, 10); // 1ms..10ms inclusive
        assert_eq!(s.now(), SimTime::from_ms(10));
    }

    #[test]
    fn run_until_advances_clock_to_horizon_when_drained() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.push(SimTime::from_ms(1), ());
        s.run_until(SimTime::from_secs(60), |_, _, _| {});
        assert_eq!(s.now(), SimTime::from_secs(60));
        assert!(s.is_empty());
    }

    #[test]
    fn dispatched_counter() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_us(1), ());
        s.push(SimTime::from_us(2), ());
        s.pop();
        s.pop();
        assert_eq!(s.dispatched(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_asserts() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(10), 1);
        s.pop();
        s.push(SimTime::from_ms(5), 2);
    }
}

//! The event queue.
//!
//! A bucketed calendar-queue scheduler with the guarantees the
//! simulation relies on:
//!
//! 1. **Monotonic time** — events pop in non-decreasing timestamp
//!    order. Scheduling in the past is refused by [`Scheduler::try_push`]
//!    with [`SimError::SchedulePast`]; the infallible [`Scheduler::push`]
//!    saturates the timestamp to "now" and counts the correction in
//!    [`Scheduler::saturated`] so callers can surface the drift.
//! 2. **Canonical keys** — every entry carries an `(origin, oseq)`
//!    pair and pops in `(time, origin, oseq)` order. Origins are entity
//!    ids (probe index, or the reserved [`ORIGIN_INIT`]/[`ORIGIN_CHURN`]
//!    lanes) and `oseq` is the origin's own monotone emission counter,
//!    so the key of an event is a pure function of the *emitting
//!    entity's* history. That makes the pop order invariant under
//!    sharding: however the entities are partitioned across schedulers,
//!    merging the per-scheduler pop streams by key reproduces the
//!    single-queue order (see DESIGN.md, "Sharded parallel engine").
//! 3. **Stable ties** — entries pushed through the legacy
//!    [`Scheduler::push`] (origin [`ORIGIN_NONE`]) tie-break in
//!    insertion order, preserving the historical FIFO behaviour for
//!    callers that don't attribute events to entities.
//!
//! Internally the queue is a ring of time buckets (a calendar queue):
//! pushes append to their bucket unsorted, the bucket under the cursor
//! is sorted once when the cursor reaches it, and far-future entries
//! overflow into a `BTreeMap` keyed by bucket index until the ring
//! window slides over them. Bucket vectors are recycled as the ring
//! wraps, so steady-state push/pop traffic allocates nothing once
//! capacities have warmed up (pinned by the `CountingAlloc` tests).

use crate::error::SimError;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Ring size, in buckets. With the default granularity the ring spans
/// ~2 s of simulated time; anything further out overflows to the far
/// map and is pulled in as the window slides.
const SLOTS: usize = 512;

/// Default bucket granularity in microseconds (4.096 ms): comfortably
/// finer than the tick/retry cadences that dominate the swarm workload,
/// so a busy bucket holds a handful of events.
const DEFAULT_WIDTH_US: u64 = 4_096;

/// Origin id for unattributed pushes (the legacy [`Scheduler::push`]
/// API). Entity origins used by the sharded dispatcher start at 1.
pub const ORIGIN_NONE: u32 = 0;

/// Reserved origin for events pushed during single-threaded
/// bootstrap, before any shard worker runs.
pub const ORIGIN_INIT: u32 = u32::MAX - 1;

/// Reserved origin for replicated churn events. Sorts after every
/// entity origin at equal timestamps, so all shards observe churn
/// state transitions at the same point of the merged order.
pub const ORIGIN_CHURN: u32 = u32::MAX;

struct Entry<E> {
    at: u64,
    origin: u32,
    oseq: u32,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (u64, u32, u32, u64) {
        (self.at, self.origin, self.oseq, self.seq)
    }
}

/// A deterministic event scheduler.
///
/// ```
/// use netaware_sim::{Scheduler, SimTime};
///
/// let mut s = Scheduler::new();
/// s.push(SimTime::from_ms(2), "later");
/// s.push(SimTime::from_ms(1), "sooner");
/// let (t, ev) = s.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_ms(1), "sooner"));
/// assert_eq!(s.now(), SimTime::from_ms(1));
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    popped: u64,
    saturated: u64,
    seq: u64,
    len: usize,
    width: u64,
    /// Absolute index of the bucket under the cursor.
    cur: u64,
    /// Entries currently held in ring slots (as opposed to `far`).
    ring_len: usize,
    /// Whether the bucket under the cursor is sorted (descending by
    /// key, so the minimum pops from the back in O(1)).
    cur_sorted: bool,
    buckets: Vec<Vec<Entry<E>>>,
    far: BTreeMap<u64, Vec<Entry<E>>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Self::with_granularity(DEFAULT_WIDTH_US)
    }

    /// An empty scheduler with an explicit bucket width in
    /// microseconds (the default suits the swarm workload; tests use
    /// narrow widths to exercise ring wrap and far-map overflow).
    pub fn with_granularity(width_us: u64) -> Self {
        let width = width_us.max(1);
        let mut buckets = Vec::with_capacity(SLOTS);
        buckets.resize_with(SLOTS, Vec::new);
        Scheduler {
            now: SimTime::ZERO,
            popped: 0,
            saturated: 0,
            seq: 0,
            len: 0,
            width,
            cur: 0,
            ring_len: 0,
            cur_sorted: false,
            buckets,
            far: BTreeMap::new(),
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// How many pushes asked for a past timestamp and were saturated
    /// to "now" (see [`Scheduler::push`]).
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// A past `at` is corrected to "now" (time stays monotonic) and the
    /// correction is counted in [`Scheduler::saturated`]; callers that
    /// consider past scheduling a hard error use
    /// [`Scheduler::try_push`] instead.
    pub fn push(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.saturated += 1;
            self.now
        } else {
            at
        };
        self.insert(at, ORIGIN_NONE, 0, event);
    }

    /// Fallible [`Scheduler::push`]: refuses a past timestamp with
    /// [`SimError::SchedulePast`] instead of saturating.
    pub fn try_push(&mut self, at: SimTime, event: E) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::SchedulePast { at, now: self.now });
        }
        self.insert(at, ORIGIN_NONE, 0, event);
        Ok(())
    }

    /// Schedules `event` at `at` under the canonical `(origin, oseq)`
    /// key. The pop order among keyed entries is `(time, origin,
    /// oseq)`; callers keep one monotone `oseq` counter per origin so
    /// keys are globally unique. Past timestamps saturate to "now"
    /// exactly like [`Scheduler::push`].
    pub fn push_keyed(&mut self, at: SimTime, origin: u32, oseq: u32, event: E) {
        let at = if at < self.now {
            self.saturated += 1;
            self.now
        } else {
            at
        };
        self.insert(at, origin, oseq, event);
    }

    /// Schedules `event` after a relative delay in microseconds.
    pub fn push_after(&mut self, delay_us: u64, event: E) {
        let at = self.now + delay_us;
        self.push(at, event);
    }

    fn insert(&mut self, at: SimTime, origin: u32, oseq: u32, event: E) {
        let at_us = at.as_us();
        let e = Entry {
            at: at_us,
            origin,
            oseq,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        // The cursor can sit ahead of `now / width` after a far jump
        // (settle skips empty regions wholesale), so a perfectly legal
        // push at `now` may map to a bucket behind it. File such
        // entries into the cursor bucket: nothing earlier exists, and
        // within-bucket pops sort by full key, so order is preserved.
        let bi = (at_us / self.width).max(self.cur);
        if bi < self.cur + SLOTS as u64 {
            let slot = (bi % SLOTS as u64) as usize;
            if bi == self.cur && self.cur_sorted {
                // Keep the cursor bucket pop-ready.
                let k = e.key();
                let v = &mut self.buckets[slot];
                let pos = v.partition_point(|x| x.key() > k);
                v.insert(pos, e);
            } else {
                self.buckets[slot].push(e);
            }
            self.ring_len += 1;
        } else {
            self.far.entry(bi).or_default().push(e);
        }
    }

    /// Advances the cursor to the first non-empty bucket. Amortised
    /// O(1): each bucket is stepped over at most once per ring lap.
    fn settle(&mut self) {
        if self.len == 0 {
            return;
        }
        loop {
            if self.ring_len == 0 {
                // Jump the window straight to the first far bucket.
                let Some((&bi, _)) = self.far.iter().next() else {
                    return; // unreachable: len > 0 with empty ring implies far entries
                };
                self.cur = bi;
                self.cur_sorted = false;
                self.refill();
                continue;
            }
            let slot = (self.cur % SLOTS as u64) as usize;
            if !self.buckets[slot].is_empty() {
                return;
            }
            self.advance_one();
        }
    }

    fn advance_one(&mut self) {
        self.cur += 1;
        self.cur_sorted = false;
        // The bucket that just entered the window tail reuses the slot
        // the cursor left (which `settle` only vacates when empty).
        let newly = self.cur + SLOTS as u64 - 1;
        if let Some(mut v) = self.far.remove(&newly) {
            let slot = (newly % SLOTS as u64) as usize;
            self.ring_len += v.len();
            self.buckets[slot].append(&mut v);
        }
    }

    /// Pulls every far bucket inside the current window into the ring.
    fn refill(&mut self) {
        let end = self.cur + SLOTS as u64;
        while let Some((&bi, _)) = self.far.iter().next() {
            if bi >= end {
                break;
            }
            let Some(mut v) = self.far.remove(&bi) else {
                break; // unreachable: key was just observed
            };
            self.ring_len += v.len();
            let slot = (bi % SLOTS as u64) as usize;
            self.buckets[slot].append(&mut v);
        }
    }

    fn sort_current(&mut self) {
        if !self.cur_sorted {
            let slot = (self.cur % SLOTS as u64) as usize;
            self.buckets[slot].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.cur_sorted = true;
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.pop_entry()?;
        Some((SimTime::from_us(e.at), e.event))
    }

    fn pop_entry(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        self.sort_current();
        let slot = (self.cur % SLOTS as u64) as usize;
        let e = self.buckets[slot].pop()?;
        self.len -= 1;
        self.ring_len -= 1;
        self.popped += 1;
        debug_assert!(e.at >= self.now.as_us());
        self.now = SimTime::from_us(e.at);
        Some(e)
    }

    /// Drains every event sharing the earliest pending timestamp into
    /// `out` (cleared first, capacity reused), advancing the clock to
    /// that timestamp. Returns the batch size (0 when empty). Handlers
    /// that push new events *at the same timestamp* during batch
    /// processing get them in a later batch, still in key order.
    pub fn pop_batch(&mut self, out: &mut Vec<(SimTime, E)>) -> usize {
        out.clear();
        let Some((t, ev)) = self.pop() else {
            return 0;
        };
        out.push((t, ev));
        while self.len > 0 {
            self.settle();
            self.sort_current();
            let slot = (self.cur % SLOTS as u64) as usize;
            match self.buckets[slot].last() {
                // Equal timestamps always share a bucket, so the batch
                // ends as soon as the cursor bucket's minimum moves on.
                Some(e) if e.at == t.as_us() => {
                    let Some(pair) = self.pop() else { break };
                    out.push(pair);
                }
                _ => break,
            }
        }
        out.len()
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        for k in 0..SLOTS as u64 {
            let bi = self.cur + k;
            let v = &self.buckets[(bi % SLOTS as u64) as usize];
            if v.is_empty() {
                continue;
            }
            let at = if bi == self.cur && self.cur_sorted {
                v.last().map(|e| e.at)
            } else {
                v.iter().map(|e| e.at).min()
            };
            return at.map(SimTime::from_us);
        }
        let (_, v) = self.far.iter().next()?;
        v.iter().map(|e| e.at).min().map(SimTime::from_us)
    }

    /// Drains and handles events with timestamps strictly below
    /// `end_us`, in key order; later events stay queued and the clock
    /// is left at the last dispatched timestamp. Returns the number of
    /// events dispatched. This is the shard-window workhorse: one call
    /// per conservative window, no per-event peeking.
    pub fn run_window<F: FnMut(&mut Self, SimTime, E)>(
        &mut self,
        end_us: u64,
        mut handler: F,
    ) -> u64 {
        self.run_window_keyed(end_us, |s, at, _key, ev| handler(s, at, ev))
    }

    /// [`Scheduler::run_window`] with the popped entry's canonical
    /// `(origin, oseq)` key exposed to the handler. The sharded
    /// dispatcher tags the observability events emitted while handling
    /// an entry with that key, so per-shard event buffers can be merged
    /// back into the exact single-queue emission order.
    pub fn run_window_keyed<F: FnMut(&mut Self, SimTime, (u32, u32), E)>(
        &mut self,
        end_us: u64,
        mut handler: F,
    ) -> u64 {
        let start = self.popped;
        loop {
            if self.len == 0 {
                break;
            }
            self.settle();
            self.sort_current();
            // After `settle` the cursor bucket holds the queue minimum.
            let slot = (self.cur % SLOTS as u64) as usize;
            let next_at = match self.buckets[slot].last() {
                Some(e) => e.at,
                None => break, // unreachable: settle leaves a non-empty cursor
            };
            if next_at >= end_us {
                break;
            }
            let Some(e) = self.pop_entry() else { break };
            let at = SimTime::from_us(e.at);
            handler(self, at, (e.origin, e.oseq), e.event);
        }
        self.popped - start
    }

    /// Drains and handles events until the queue empties or the next
    /// event is past `horizon`; events beyond the horizon stay queued.
    /// Returns the number of events dispatched.
    pub fn run_until<F: FnMut(&mut Self, SimTime, E)>(
        &mut self,
        horizon: SimTime,
        handler: F,
    ) -> u64 {
        let n = self.run_window(horizon.as_us().saturating_add(1), handler);
        // The experiment formally ends at the horizon even if the queue
        // drained early.
        if self.now < horizon {
            self.now = horizon;
        }
        n
    }

    /// Advances the clock to `t` without dispatching (no-op when the
    /// clock is already past `t`). Used by the sharded driver to close
    /// the final window on the horizon.
    pub fn advance_to(&mut self, t: SimTime) {
        if self.now < t {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_us(30), "c");
        s.push(SimTime::from_us(10), "a");
        s.push(SimTime::from_us(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.push(SimTime::from_us(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_entries_pop_in_origin_then_oseq_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_ms(3);
        s.push_keyed(t, 7, 0, "g");
        s.push_keyed(t, 2, 1, "b");
        s.push_keyed(t, 2, 0, "a");
        s.push_keyed(SimTime::from_ms(2), 9, 5, "first");
        s.push_keyed(t, ORIGIN_CHURN, 0, "churn-last");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "a", "b", "g", "churn-last"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(2), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_ms(2));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(5), 1);
        s.pop();
        s.push_after(1_000, 2);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(6));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s = Scheduler::new();
        for i in 1..=10u64 {
            s.push(SimTime::from_ms(i), i);
        }
        let mut seen = Vec::new();
        let n = s.run_until(SimTime::from_ms(5), |_, _, e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.now(), SimTime::from_ms(5));
    }

    #[test]
    fn run_until_lets_handler_reschedule() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.push(SimTime::from_ms(1), 0);
        let mut count = 0;
        s.run_until(SimTime::from_ms(10), |sched, _, gen| {
            count += 1;
            if gen < 100 {
                sched.push_after(1_000, gen + 1);
            }
        });
        assert_eq!(count, 10); // 1ms..10ms inclusive
        assert_eq!(s.now(), SimTime::from_ms(10));
    }

    #[test]
    fn run_until_advances_clock_to_horizon_when_drained() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.push(SimTime::from_ms(1), ());
        s.run_until(SimTime::from_secs(60), |_, _, _| {});
        assert_eq!(s.now(), SimTime::from_secs(60));
        assert!(s.is_empty());
    }

    #[test]
    fn run_window_is_strictly_exclusive() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_us(999), 1);
        s.push(SimTime::from_us(1_000), 2);
        s.push(SimTime::from_us(1_001), 3);
        let mut seen = Vec::new();
        let n = s.run_window(1_000, |_, _, e| seen.push(e));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![1]);
        assert_eq!(s.len(), 2);
        // A later window picks up exactly where the first stopped.
        s.run_window(2_000, |_, _, e| seen.push(e));
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn dispatched_counter() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_us(1), ());
        s.push(SimTime::from_us(2), ());
        s.pop();
        s.pop();
        assert_eq!(s.dispatched(), 2);
    }

    #[test]
    fn try_push_refuses_past_times() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(10), 1);
        s.pop();
        let err = s.try_push(SimTime::from_ms(5), 2).unwrap_err();
        assert_eq!(
            err,
            SimError::SchedulePast {
                at: SimTime::from_ms(5),
                now: SimTime::from_ms(10),
            }
        );
        assert!(s.is_empty(), "refused event must not be queued");
        assert_eq!(s.saturated(), 0, "try_push never saturates");
        // At or after "now" is fine.
        assert!(s.try_push(SimTime::from_ms(10), 3).is_ok());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn push_saturates_past_times_and_counts() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(10), 1);
        s.pop();
        s.push(SimTime::from_ms(5), 2);
        assert_eq!(s.saturated(), 1);
        let (t, ev) = s.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_ms(10), 2), "fires at now, not in the past");
        s.push_keyed(SimTime::from_ms(3), 4, 0, 3);
        assert_eq!(s.saturated(), 2);
        assert_eq!(s.pop().unwrap().0, SimTime::from_ms(10));
    }

    #[test]
    fn pop_batch_drains_one_timestamp() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ms(1), 10);
        s.push(SimTime::from_ms(1), 11);
        s.push(SimTime::from_ms(2), 20);
        let mut buf = Vec::new();
        assert_eq!(s.pop_batch(&mut buf), 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ms(1), 10), (SimTime::from_ms(1), 11)]
        );
        assert_eq!(s.pop_batch(&mut buf), 1);
        assert_eq!(buf, vec![(SimTime::from_ms(2), 20)]);
        assert_eq!(s.pop_batch(&mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_ring_window() {
        // Narrow buckets so the ring spans only SLOTS µs.
        let mut s = Scheduler::with_granularity(1);
        s.push(SimTime::from_us(3), "near");
        s.push(SimTime::from_secs(600), "halo"); // far beyond the ring
        s.push(SimTime::from_us(700), "mid");
        assert_eq!(s.pop().unwrap().1, "near");
        assert_eq!(s.pop().unwrap().1, "mid");
        assert_eq!(s.pop().unwrap().1, "halo");
        assert_eq!(s.now(), SimTime::from_secs(600));
        assert!(s.pop().is_none());
    }

    #[test]
    fn peek_time_sees_ring_and_far_entries() {
        let mut s = Scheduler::with_granularity(1);
        assert_eq!(s.peek_time(), None);
        s.push(SimTime::from_secs(60), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(60)));
        s.push(SimTime::from_us(5), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_us(5)));
        s.pop();
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(60)));
    }

    /// The calendar queue must pop in exactly the reference order — a
    /// seeded random workload compared against a sorted-vector oracle,
    /// across granularities that stress bucket boundaries, ring wrap
    /// and the far map.
    #[test]
    fn matches_reference_order_on_random_workloads() {
        for &width in &[1u64, 7, 64, 4_096] {
            let mut rng = DetRng::stream(0xCA1E, "calendar");
            let mut s: Scheduler<u64> = Scheduler::with_granularity(width);
            let mut reference: Vec<(u64, u32, u32, u64, u64)> = Vec::new();
            let mut now = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for step in 0..4_000u64 {
                if rng.chance(0.6) || reference.is_empty() {
                    // Mix of near, clustered and far-future times.
                    let at = now
                        + match rng.range(0u32..10) {
                            0..=5 => rng.range(0u64..2_000),
                            6..=8 => rng.range(0u64..200_000),
                            _ => rng.range(0u64..5_000_000_000),
                        };
                    let origin = rng.range(1u32..6);
                    let oseq = step as u32; // unique per push
                    s.push_keyed(SimTime::from_us(at), origin, oseq, step);
                    reference.push((at, origin, oseq, u64::MAX, step));
                } else {
                    reference.sort_unstable();
                    let (at, _, _, _, v) = reference.remove(0);
                    now = at;
                    expected.push((at, v));
                    let (t, got) = s.pop().expect("oracle has entries");
                    popped.push((t.as_us(), got));
                }
            }
            reference.sort_unstable();
            for (at, _, _, _, v) in reference {
                expected.push((at, v));
                let (t, got) = s.pop().expect("oracle has entries");
                popped.push((t.as_us(), got));
            }
            assert_eq!(popped, expected, "width {width} diverged from oracle");
            assert!(s.pop().is_none());
        }
    }

    /// Interleaved pushes landing inside the already-sorted cursor
    /// bucket must keep the pop order exact.
    #[test]
    fn pushes_into_sorted_cursor_bucket_stay_ordered() {
        let mut s = Scheduler::with_granularity(1_000);
        s.push_keyed(SimTime::from_us(100), 1, 0, "a");
        s.push_keyed(SimTime::from_us(500), 1, 1, "d");
        assert_eq!(s.pop().unwrap().1, "a"); // sorts the cursor bucket
        s.push_keyed(SimTime::from_us(300), 2, 0, "b");
        s.push_keyed(SimTime::from_us(300), 3, 0, "c");
        assert_eq!(s.pop().unwrap().1, "b");
        assert_eq!(s.pop().unwrap().1, "c");
        assert_eq!(s.pop().unwrap().1, "d");
    }
}

//! Deterministic entity→shard partitioning for the parallel engine.
//!
//! The partitioner groups entities (probes) by an affinity key — in the
//! swarm, the home AS, so that the cheapest links stay shard-internal —
//! and packs whole groups onto shards with a longest-processing-time
//! heuristic over caller-supplied weights. The result is a pure
//! function of its inputs: groups are processed in (weight desc, key
//! asc) order and ties between shards break towards the lowest index,
//! so the same population partitions identically on every run and
//! every machine.
//!
//! Correctness never depends on the partition being *good*: the
//! conservative lookahead is derived afterwards from the actual
//! assignment via [`min_cross_delay_us`], so a poor split only costs
//! parallel efficiency, not determinism.

/// An entity→shard assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards actually used (≤ the requested count; empty
    /// shards are compacted away).
    pub n_shards: usize,
    /// Shard index of each entity, parallel to the partitioning input.
    pub of_entity: Vec<usize>,
}

impl ShardPlan {
    /// The trivial single-shard plan over `n` entities.
    pub fn single(n: usize) -> ShardPlan {
        ShardPlan {
            n_shards: 1,
            of_entity: vec![0; n],
        }
    }

    /// Entity indices owned by `shard`, in ascending order.
    pub fn owned(&self, shard: usize) -> Vec<usize> {
        self.of_entity
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == shard).then_some(i))
            .collect()
    }
}

/// Packs entities onto at most `n_shards` shards, keeping entities
/// with equal `group` keys together. `weights[i]` estimates entity
/// `i`'s event load (use 1 for uniform). When fewer groups than shards
/// exist, grouping is abandoned and entities are packed individually —
/// latency between group-mates then bounds the lookahead instead, which
/// is still correct, just tighter.
pub fn partition(groups: &[u64], weights: &[u64], n_shards: usize) -> ShardPlan {
    assert_eq!(groups.len(), weights.len(), "one weight per entity");
    let n = groups.len();
    if n == 0 || n_shards <= 1 {
        return ShardPlan::single(n);
    }
    let n_shards = n_shards.min(n);
    // Aggregate weight per group, BTreeMap for deterministic order.
    let mut by_group: std::collections::BTreeMap<u64, (u64, Vec<usize>)> =
        std::collections::BTreeMap::new();
    for (i, (&g, &w)) in groups.iter().zip(weights).enumerate() {
        let e = by_group.entry(g).or_insert((0, Vec::new()));
        e.0 += w.max(1);
        e.1.push(i);
    }
    let units: Vec<(u64, Vec<usize>)> = if by_group.len() >= n_shards {
        by_group.into_values().collect()
    } else {
        // Fewer groups than shards: split down to single entities.
        groups
            .iter()
            .zip(weights)
            .enumerate()
            .map(|(i, (_, &w))| (w.max(1), vec![i]))
            .collect()
    };
    // LPT: heaviest unit first onto the least-loaded shard. Ties on
    // weight break by the unit's smallest entity index; ties on shard
    // load break towards the lowest shard index.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(units[u].0), units[u].1[0]));
    let mut load = vec![0u64; n_shards];
    let mut of_entity = vec![0usize; n];
    for &u in &order {
        let (w, ref members) = units[u];
        let Some((shard, _)) = load.iter().enumerate().min_by_key(|&(i, &l)| (l, i)) else {
            break; // unreachable: n_shards ≥ 1
        };
        load[shard] += w;
        for &m in members {
            of_entity[m] = shard;
        }
    }
    // Compact away empty shards so shard indices are dense.
    let mut used: Vec<usize> = of_entity.clone();
    used.sort_unstable();
    used.dedup();
    let remap: std::collections::BTreeMap<usize, usize> =
        used.iter().enumerate().map(|(new, &old)| (old, new)).collect();
    for s in &mut of_entity {
        if let Some(&new) = remap.get(s) {
            *s = new;
        }
    }
    ShardPlan {
        n_shards: used.len(),
        of_entity,
    }
}

/// The conservative lookahead for a plan: the minimum one-way delay
/// over ordered entity pairs assigned to *different* shards, as
/// reported by `delay_us(src, dst)`. Cross-shard events are always
/// scheduled at least this far ahead of their emission, so windows of
/// this width never violate causality. `None` when the plan has no
/// cross-shard pair (single shard): the lookahead is unbounded.
pub fn min_cross_delay_us<F: FnMut(usize, usize) -> u64>(
    plan: &ShardPlan,
    mut delay_us: F,
) -> Option<u64> {
    let n = plan.of_entity.len();
    let mut min: Option<u64> = None;
    for a in 0..n {
        for b in 0..n {
            if a != b && plan.of_entity[a] != plan.of_entity[b] {
                let d = delay_us(a, b);
                min = Some(min.map_or(d, |m: u64| m.min(d)));
            }
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_plan_is_trivial() {
        let p = partition(&[1, 2, 3], &[5, 5, 5], 1);
        assert_eq!(p, ShardPlan::single(3));
        assert_eq!(p.owned(0), vec![0, 1, 2]);
    }

    #[test]
    fn groups_stay_together() {
        let groups = [10, 20, 10, 30, 20, 10];
        let weights = [1, 1, 1, 1, 1, 1];
        let p = partition(&groups, &weights, 3);
        for i in 0..groups.len() {
            for j in 0..groups.len() {
                if groups[i] == groups[j] {
                    assert_eq!(
                        p.of_entity[i], p.of_entity[j],
                        "group split across shards"
                    );
                }
            }
        }
        assert_eq!(p.n_shards, 3);
    }

    #[test]
    fn lpt_balances_weighted_groups() {
        // Groups weighing 8, 5, 4, 3 onto 2 shards: LPT gives {8,3} / {5,4}.
        let groups = [1, 2, 3, 4];
        let weights = [8, 5, 4, 3];
        let p = partition(&groups, &weights, 2);
        let mut load = [0u64; 2];
        for (i, &s) in p.of_entity.iter().enumerate() {
            load[s] += weights[i];
        }
        let mut l = load.to_vec();
        l.sort_unstable();
        assert_eq!(l, vec![9, 11]);
    }

    #[test]
    fn more_shards_than_groups_splits_entities() {
        let groups = [7, 7, 7, 7];
        let p = partition(&groups, &[1, 1, 1, 1], 4);
        assert_eq!(p.n_shards, 4, "grouping must yield to the shard request");
    }

    #[test]
    fn shard_count_capped_by_entities() {
        let p = partition(&[1, 2], &[1, 1], 8);
        assert!(p.n_shards <= 2);
    }

    #[test]
    fn deterministic_across_calls() {
        let groups: Vec<u64> = (0..50).map(|i| i % 7).collect();
        let weights: Vec<u64> = (0..50).map(|i| (i * 13) % 9 + 1).collect();
        let a = partition(&groups, &weights, 5);
        let b = partition(&groups, &weights, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn min_cross_delay_ignores_intra_shard_pairs() {
        let plan = ShardPlan {
            n_shards: 2,
            of_entity: vec![0, 0, 1],
        };
        // Intra-shard pair (0,1) is the cheapest but must be ignored.
        let d = min_cross_delay_us(&plan, |a, b| match (a, b) {
            (0, 1) | (1, 0) => 10,
            _ => 250,
        });
        assert_eq!(d, Some(250));
        assert_eq!(min_cross_delay_us(&ShardPlan::single(3), |_, _| 1), None);
    }

    #[test]
    fn owned_partitions_all_entities() {
        let p = partition(&(0..20).map(|i| i % 3).collect::<Vec<u64>>(), &[1; 20], 3);
        let mut all: Vec<usize> = (0..p.n_shards).flat_map(|s| p.owned(s)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}

//! Simulated time.
//!
//! Microsecond resolution: fine enough to resolve the 100 µs transmission
//! time of a 1250-byte packet on a 100 Mb/s LAN (the sharpest IPG the BW
//! classifier needs to distinguish), coarse enough that a u64 spans
//! ~585 000 years of simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since experiment start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: experiment start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Value in microseconds.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Value in (truncated) milliseconds.
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    pub const fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advances by `rhs` microseconds.
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// Microseconds between two times; panics when `rhs` is later (use
    /// [`SimTime::since`] for the saturating form).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow") // netaware-lint: allow(PA01) panic is this operator's documented contract
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_us(), 2_000_000);
        assert_eq!(SimTime::from_ms(3).as_us(), 3_000);
        assert_eq!(SimTime::from_us(1_500).as_ms(), 1);
        assert!((SimTime::from_ms(2500).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10);
        assert_eq!((t + 500).as_us(), 10_500);
        let mut u = t;
        u += 1_000;
        assert_eq!(u.as_ms(), 11);
        assert_eq!(u - t, 1_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_ms(1);
        let b = SimTime::from_ms(2);
        assert_eq!(b.since(a), 1_000);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::from_ms(1) - SimTime::from_ms(2);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime::from_us(1) < SimTime::from_us(2));
        assert_eq!(
            SimTime::from_us(5).max(SimTime::from_us(3)),
            SimTime::from_us(5)
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(1500).to_string(), "1.500000s");
    }
}

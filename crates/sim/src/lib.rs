//! # netaware-sim — deterministic discrete-event simulation engine
//!
//! A minimal, fast DES core used to drive the P2P-TV protocol models:
//!
//! * [`SimTime`] — microsecond-resolution simulated clock;
//! * [`Scheduler`] — a stable-priority event queue (ties break in
//!   insertion order, so runs are reproducible);
//! * [`DetRng`] — named, independently-seeded RNG streams so adding a
//!   random draw in one component never perturbs another;
//! * [`AccessSerializer`] — FIFO transmission-queue model of an access
//!   link, the mechanism that turns "peer sends a chunk" into a train of
//!   packets whose inter-packet gaps encode the bottleneck capacity (the
//!   packet-pair signal the paper's BW inference exploits);
//! * [`LinkFaults`] — per-link impairment model (packet loss, latency
//!   jitter, transient outages) drawing from a dedicated [`DetRng`]
//!   stream, so fault injection stays inside the determinism contract;
//! * [`stats`] — streaming mean/max/variance, rate meters and integer
//!   histograms used by both the protocol models and the benchmarks.
//!
//! The engine is intentionally single-threaded: determinism comes first.
//! Parallel speed-ups belong one level up (running independent experiment
//! configurations concurrently), where they are data-race-free for free.

#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod link;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::Scheduler;
pub use fault::{LinkFaultParams, LinkFaults, PacketFate};
pub use link::{AccessSerializer, DownlinkQueue};
pub use rng::DetRng;
pub use stats::{Histogram, MeanMax, RateMeter, Welford};
pub use time::SimTime;

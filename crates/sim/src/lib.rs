//! # netaware-sim — deterministic discrete-event simulation engine
//!
//! A minimal, fast DES core used to drive the P2P-TV protocol models:
//!
//! * [`SimTime`] — microsecond-resolution simulated clock;
//! * [`Scheduler`] — a stable-priority event queue (ties break in
//!   insertion order, so runs are reproducible);
//! * [`DetRng`] — named, independently-seeded RNG streams so adding a
//!   random draw in one component never perturbs another;
//! * [`AccessSerializer`] — FIFO transmission-queue model of an access
//!   link, the mechanism that turns "peer sends a chunk" into a train of
//!   packets whose inter-packet gaps encode the bottleneck capacity (the
//!   packet-pair signal the paper's BW inference exploits);
//! * [`LinkFaults`] — per-link impairment model (packet loss, latency
//!   jitter, transient outages) drawing from a dedicated [`DetRng`]
//!   stream, so fault injection stays inside the determinism contract;
//! * [`stats`] — streaming mean/max/variance, rate meters and integer
//!   histograms used by both the protocol models and the benchmarks.
//!
//! Determinism comes first, but it no longer implies a single thread:
//! the [`shard`] partitioner and the [`par`] superstep driver split a
//! simulation across worker threads under conservative lookahead
//! windows, with cross-shard events exchanged at barriers and every
//! queue ordered by canonical `(time, origin, oseq)` keys — so a
//! sharded run is byte-identical to the single-threaded one. The only
//! concurrency primitives live in `sim::par` (and the `obs` crate),
//! both explicitly sanctioned by the CC01 lint scope.

#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod fault;
pub mod link;
pub mod par;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use error::SimError;
pub use event::{Scheduler, ORIGIN_CHURN, ORIGIN_INIT, ORIGIN_NONE};
pub use fault::{LinkFaultParams, LinkFaults, PacketFate};
pub use link::{AccessSerializer, DownlinkQueue};
pub use par::{run_sharded, Outbox, PoisonBarrier, ShardWorker};
pub use rng::DetRng;
pub use shard::{min_cross_delay_us, partition, ShardPlan};
pub use stats::{Histogram, MeanMax, RateMeter, Welford};
pub use time::SimTime;

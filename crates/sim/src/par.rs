//! The sharded parallel driver: conservative supersteps with a
//! poisoning barrier.
//!
//! This is the one sanctioned home for bare thread/lock primitives
//! (lint rule CC01): everything cross-shard funnels through the
//! superstep protocol below, so lock scheduling can never reorder
//! anything merge-visible.
//!
//! # Protocol
//!
//! [`run_sharded`] drives one [`ShardWorker`] per thread through
//! fixed-width **conservative windows**. Per round:
//!
//! 1. every worker posts its outbox (cross-shard events emitted in the
//!    window just run) and its next pending event time, then waits on
//!    the barrier;
//! 2. one thread routes outboxes into per-destination inboxes (in
//!    ascending source order — deterministic), computes the global
//!    minimum next event time `g`, and publishes the next window
//!    `[g, min(g + lookahead, horizon + 1))`;
//! 3. after a second barrier wait, every worker drains its inbox and
//!    runs the published window.
//!
//! The lookahead is the minimum cross-shard one-way delay (see
//! [`crate::shard::min_cross_delay_us`]): any event emitted inside a
//! window for another shard lands at or beyond the *next* window, so
//! routing at the barrier can never deliver into a worker's past. The
//! global-minimum jump keeps the round count proportional to the
//! number of occupied windows, not to `horizon / lookahead`.
//!
//! # Determinism
//!
//! The driver itself never reorders anything: workers consume events in
//! their schedulers' canonical `(time, origin, oseq)` key order, and
//! inboxes are routed in source-shard order. Which thread happens to be
//! the routing leader is scheduling-dependent, but the routing it
//! performs is a pure function of the posted slots.
//!
//! # Panic safety
//!
//! A panicking worker poisons the barrier on unwind; every other
//! worker's `wait` then returns an error and its thread exits cleanly,
//! so the scope join re-raises the original panic instead of
//! deadlocking. RAII guards (profiler spans included) unwind normally
//! on the panicking thread.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Cross-shard messages emitted by one worker during one window.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(usize, u64, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues `msg` for delivery to `dest` at absolute time `at_us`.
    /// `at_us` must be at or beyond the end of the window being run —
    /// the conservative-lookahead contract.
    pub fn send(&mut self, dest: usize, at_us: u64, msg: M) {
        self.msgs.push((dest, at_us, msg));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// One shard of a partitioned simulation, driven by [`run_sharded`].
pub trait ShardWorker: Send {
    /// Cross-shard event payload.
    type Msg: Send;

    /// Earliest pending local event time in µs, `None` when idle.
    fn next_time_us(&mut self) -> Option<u64>;

    /// Processes every local event with `start_us ≤ t < end_us` in key
    /// order; cross-shard emissions go into `outbox` (with timestamps
    /// `≥ end_us`, per the lookahead contract).
    fn run_window(&mut self, start_us: u64, end_us: u64, outbox: &mut Outbox<Self::Msg>);

    /// Receives the messages shard `src` emitted for this shard, in
    /// emission order, before the next window runs.
    fn accept(&mut self, src: usize, msgs: Vec<(u64, Self::Msg)>);
}

/// Error returned by [`PoisonBarrier::wait`] after another participant
/// panicked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierPoisoned;

struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

/// A cyclic barrier that can be poisoned: when one participant unwinds,
/// the rest are released with an error instead of waiting forever.
pub struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        // A panicked holder can only have been mid-update on plain
        // counters, safe to keep reading; poisoning is tracked
        // explicitly in the state.
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl PoisonBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` participants arrive. Returns `Ok(true)` for
    /// exactly one participant per cycle (the leader), `Ok(false)` for
    /// the rest, and `Err` once poisoned.
    pub fn wait(&self) -> Result<bool, BarrierPoisoned> {
        let mut s = locked(&self.state);
        if s.poisoned {
            return Err(BarrierPoisoned);
        }
        let gen = s.generation;
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(true);
        }
        while s.generation == gen && !s.poisoned {
            s = match self.cv.wait(s) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        if s.poisoned {
            Err(BarrierPoisoned)
        } else {
            Ok(false)
        }
    }

    /// Marks the barrier poisoned and releases every waiter.
    pub fn poison(&self) {
        locked(&self.state).poisoned = true;
        self.cv.notify_all();
    }

    /// Whether a participant has panicked.
    pub fn is_poisoned(&self) -> bool {
        locked(&self.state).poisoned
    }
}

/// Poisons the barrier if the owning thread unwinds.
struct PoisonOnUnwind<'a>(&'a PoisonBarrier);

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

struct Slot<M> {
    out: Vec<(usize, u64, M)>,
    inbox: Vec<(usize, Vec<(u64, M)>)>,
    next: Option<u64>,
}

struct Shared<M> {
    barrier: PoisonBarrier,
    slots: Vec<Mutex<Slot<M>>>,
    /// `Some((start, end))` of the published window, `None` once done.
    window: Mutex<Option<(u64, u64)>>,
}

/// Runs the workers to `horizon_us` (inclusive: events at the horizon
/// are processed, later ones stay queued). `lookahead_us` must be a
/// lower bound on every cross-shard message delay. One worker runs
/// inline with no threads or windows; multiple workers get one thread
/// each. Panics from worker code propagate after all threads stop.
pub fn run_sharded<W: ShardWorker>(workers: &mut [W], lookahead_us: u64, horizon_us: u64) {
    assert!(lookahead_us >= 1, "lookahead must be positive");
    match workers {
        [] => {}
        [w] => {
            // Loop rather than issuing one giant window: a worker may
            // queue follow-up work after its window call returns (the
            // threaded path re-runs it every round, so the inline path
            // must too).
            let mut outbox = Outbox::new();
            let end = horizon_us.saturating_add(1);
            while let Some(t) = w.next_time_us() {
                if t > horizon_us {
                    break;
                }
                w.run_window(t, end, &mut outbox);
                debug_assert!(
                    outbox.is_empty(),
                    "single-shard run emitted cross-shard messages"
                );
            }
        }
        _ => run_threaded(workers, lookahead_us, horizon_us),
    }
}

fn run_threaded<W: ShardWorker>(workers: &mut [W], lookahead_us: u64, horizon_us: u64) {
    let n = workers.len();
    let shared: Shared<W::Msg> = Shared {
        barrier: PoisonBarrier::new(n),
        slots: (0..n)
            .map(|_| {
                Mutex::new(Slot {
                    out: Vec::new(),
                    inbox: Vec::new(),
                    next: None,
                })
            })
            .collect(),
        window: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .iter_mut()
            .enumerate()
            .map(|(i, w)| {
                let shared = &shared;
                scope.spawn(move || {
                    let _guard = PoisonOnUnwind(&shared.barrier);
                    let _ = worker_loop(i, w, shared, lookahead_us, horizon_us);
                })
            })
            .collect();
        // Join explicitly so the caller sees the *original* panic
        // payload (the scope's automatic join would replace it with a
        // generic message). Lowest-index panic wins, deterministically.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
}

fn worker_loop<W: ShardWorker>(
    i: usize,
    w: &mut W,
    shared: &Shared<W::Msg>,
    lookahead_us: u64,
    horizon_us: u64,
) -> Result<(), BarrierPoisoned> {
    let mut outbox: Outbox<W::Msg> = Outbox::new();
    loop {
        {
            let mut slot = locked(&shared.slots[i]);
            slot.out.append(&mut outbox.msgs);
            slot.next = w.next_time_us();
        }
        if shared.barrier.wait()? {
            route_and_plan(shared, lookahead_us, horizon_us);
        }
        shared.barrier.wait()?;
        let window = *locked(&shared.window);
        {
            let mut slot = locked(&shared.slots[i]);
            for (src, msgs) in std::mem::take(&mut slot.inbox) {
                w.accept(src, msgs);
            }
        }
        let Some((start, end)) = window else {
            return Ok(());
        };
        w.run_window(start, end, &mut outbox);
    }
}

/// Leader phase: deterministic routing plus next-window computation.
fn route_and_plan<M>(shared: &Shared<M>, lookahead_us: u64, horizon_us: u64) {
    let n = shared.slots.len();
    let prev_end = locked(&shared.window).map(|(_, e)| e);
    let mut gmin: Option<u64> = None;
    for src in 0..n {
        let (out, next) = {
            let mut slot = locked(&shared.slots[src]);
            (std::mem::take(&mut slot.out), slot.next)
        };
        if let Some(t) = next {
            gmin = Some(gmin.map_or(t, |m: u64| m.min(t)));
        }
        // Stable per-destination grouping, preserving emission order.
        let mut per_dest: Vec<Vec<(u64, M)>> = (0..n).map(|_| Vec::new()).collect();
        for (dest, at, msg) in out {
            debug_assert!(
                prev_end.is_none_or(|e| at >= e),
                "cross-shard message violates the lookahead contract"
            );
            gmin = Some(gmin.map_or(at, |m: u64| m.min(at)));
            per_dest[dest].push((at, msg));
        }
        for (dest, msgs) in per_dest.into_iter().enumerate() {
            if !msgs.is_empty() {
                locked(&shared.slots[dest]).inbox.push((src, msgs));
            }
        }
    }
    *locked(&shared.window) = match gmin {
        Some(g) if g <= horizon_us => Some((
            g,
            g.saturating_add(lookahead_us)
                .min(horizon_us.saturating_add(1)),
        )),
        _ => None,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scheduler;
    use crate::shard::ShardPlan;
    use crate::time::SimTime;

    /// Toy sharded workload: entity `e` firing at `t` schedules a
    /// follow-up for a derived entity at a derived future time, with a
    /// floor of `DELAY_FLOOR` on every hop so any partition satisfies
    /// the lookahead contract. Chains run until the horizon, so the
    /// total work is shard-invariant. The digest is a commutative fold
    /// of `(time, entity, per-entity step index)` — per-entity order is
    /// captured by the step index (each entity lives on exactly one
    /// shard), so reordering, loss, or duplication all show up.
    const DELAY_FLOOR: u64 = 100;
    const ENTITIES: usize = 12;

    fn hop(e: usize, t: u64) -> (usize, u64) {
        let next = (e * 7 + t as usize + 3) % ENTITIES;
        let delay = DELAY_FLOOR + (e as u64 * 31 + t * 17) % 400;
        (next, t + delay)
    }

    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct ToyWorker {
        id: usize,
        plan: ShardPlan,
        sched: Scheduler<usize>,
        oseq: Vec<u32>,
        seen: Vec<u64>,
        digest: u64,
        steps: u64,
        reschedule: bool,
        panic_at_step: Option<u64>,
        max_processed: u64,
    }

    impl ToyWorker {
        fn new(id: usize, plan: &ShardPlan, reschedule: bool) -> ToyWorker {
            let mut w = ToyWorker {
                id,
                plan: plan.clone(),
                sched: Scheduler::with_granularity(64),
                oseq: vec![0; ENTITIES],
                seen: vec![0; ENTITIES],
                digest: 0,
                steps: 0,
                reschedule,
                panic_at_step: None,
                max_processed: 0,
            };
            for e in 0..ENTITIES {
                if plan.of_entity[e] == id {
                    let t = 10 + e as u64;
                    let oseq = w.oseq[e];
                    w.oseq[e] += 1;
                    w.sched.push_keyed(SimTime::from_us(t), e as u32, oseq, e);
                }
            }
            w
        }
    }

    impl ShardWorker for ToyWorker {
        type Msg = usize;

        fn next_time_us(&mut self) -> Option<u64> {
            self.sched.peek_time().map(|t| t.as_us())
        }

        fn run_window(&mut self, _start: u64, end_us: u64, outbox: &mut Outbox<usize>) {
            // Reschedule *inside* the handling callback, like the real
            // dispatcher: the scheduler clock then equals the current
            // event's time, so follow-up pushes are never in the past.
            let ToyWorker {
                id,
                plan,
                sched,
                oseq,
                seen,
                digest,
                steps,
                reschedule,
                panic_at_step,
                max_processed,
            } = self;
            sched.run_window(end_us, |s, t, e| {
                let t = t.as_us();
                *steps += 1;
                if *panic_at_step == Some(*steps) {
                    panic!("toy worker failure injection");
                }
                assert!(
                    t >= *max_processed,
                    "event at {t} arrived after time {max_processed}"
                );
                *max_processed = t;
                let k = seen[e];
                seen[e] += 1;
                *digest = digest.wrapping_add(mix(t ^ mix((e as u64) ^ mix(k))));
                if *reschedule {
                    let (ne, nt) = hop(e, t);
                    let o = oseq[e];
                    oseq[e] += 1;
                    // Keys are attributed to the *emitting* entity so
                    // they are invariant under partitioning.
                    if plan.of_entity[ne] == *id {
                        s.push_keyed(SimTime::from_us(nt), e as u32, o, ne);
                    } else {
                        outbox.send(
                            plan.of_entity[ne],
                            nt,
                            (e << 16) | ((o as usize) << 32) | ne,
                        );
                    }
                }
            });
        }

        fn accept(&mut self, _src: usize, msgs: Vec<(u64, usize)>) {
            for (at, packed) in msgs {
                assert!(
                    at >= self.max_processed,
                    "cross-shard message at {at} arrived before local time {}",
                    self.max_processed
                );
                let e = packed & 0xFFFF;
                let origin = (packed >> 16) & 0xFFFF;
                let oseq = (packed >> 32) as u32;
                self.sched
                    .push_keyed(SimTime::from_us(at), origin as u32, oseq, e);
            }
        }
    }

    fn run_digest(n_shards: usize, reschedule: bool, horizon: u64) -> (u64, u64) {
        let groups: Vec<u64> = (0..ENTITIES as u64).map(|e| e % 4).collect();
        let plan = crate::shard::partition(&groups, &[1; ENTITIES], n_shards);
        let mut workers: Vec<ToyWorker> = (0..plan.n_shards)
            .map(|s| ToyWorker::new(s, &plan, reschedule))
            .collect();
        run_sharded(&mut workers, DELAY_FLOOR, horizon);
        // Per-worker digests are commutative sums, so combining them
        // with a sum keeps the comparison partition-independent.
        (
            workers.iter().fold(0u64, |acc, w| acc.wrapping_add(w.digest)),
            workers.iter().map(|w| w.steps).sum(),
        )
    }

    #[test]
    fn shard_count_never_changes_results() {
        let single = run_digest(1, true, 300_000);
        assert!(single.1 > 1_000, "workload too small to be meaningful");
        for shards in [2, 3, 4, 8] {
            assert_eq!(
                run_digest(shards, true, 300_000),
                single,
                "{shards} shards diverged from the single-shard run"
            );
        }
    }

    #[test]
    fn horizon_is_inclusive_and_bounds_processing() {
        // Without rescheduling, exactly the seeds at t = 10..10+ENTITIES
        // fire, and a horizon below some of them cuts processing off.
        let all = run_digest(2, false, 2_000_000);
        assert_eq!(all.1, ENTITIES as u64);
        let (_, cut) = run_digest(2, false, 10 + 5);
        assert_eq!(cut, 6, "horizon must be inclusive (t=10..=15 fire)");
    }

    #[test]
    fn panicking_worker_propagates_without_hang() {
        let groups: Vec<u64> = (0..ENTITIES as u64).map(|e| e % 4).collect();
        let plan = crate::shard::partition(&groups, &[1; ENTITIES], 4);
        let mut workers: Vec<ToyWorker> = (0..plan.n_shards)
            .map(|s| ToyWorker::new(s, &plan, true))
            .collect();
        workers[1].panic_at_step = Some(5);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded(&mut workers, DELAY_FLOOR, 2_000_000);
        }));
        let err = res.expect_err("panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(msg.contains("failure injection"), "unexpected payload {msg}");
    }

    #[test]
    fn barrier_reports_poison_to_waiters() {
        let b = std::sync::Arc::new(PoisonBarrier::new(2));
        let b2 = std::sync::Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.wait());
        // Give the waiter time to block, then poison instead of joining.
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        assert_eq!(waiter.join().expect("no panic"), Err(BarrierPoisoned));
        assert!(b.is_poisoned());
        assert_eq!(b.wait(), Err(BarrierPoisoned));
    }

    #[test]
    fn barrier_elects_exactly_one_leader_per_cycle() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let b = std::sync::Arc::new(PoisonBarrier::new(3));
        let leaders = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let b = std::sync::Arc::clone(&b);
                let leaders = std::sync::Arc::clone(&leaders);
                s.spawn(move || {
                    for _ in 0..50 {
                        if b.wait().expect("no poison") {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn single_worker_runs_inline() {
        let plan = ShardPlan::single(ENTITIES);
        let mut workers = vec![ToyWorker::new(0, &plan, false)];
        run_sharded(&mut workers, 1, 1_000_000);
        assert!(workers[0].steps > 0);
    }

    #[test]
    fn outbox_accessors() {
        let mut o: Outbox<u8> = Outbox::default();
        assert!(o.is_empty());
        o.send(0, 5, 9);
        assert_eq!(o.len(), 1);
        assert!(!o.is_empty());
    }
}

//! Shared fixtures for the benchmark harness.
//!
//! Criterion measures the *regeneration* of each table/figure from
//! captured traces; the (deterministic) trace capture itself is produced
//! once per process by [`fixture`] and shared across benches, so bench
//! times reflect analysis cost, not simulation cost. End-to-end
//! simulation throughput has its own benches in `sim_perf.rs`.

#![warn(missing_docs)]

use netaware_analysis::flows::{aggregate, ProbeFlows};
use netaware_analysis::AnalysisConfig;
use netaware_net::Ip;
use netaware_proto::AppProfile;
use netaware_testbed::ExperimentOptions;
use netaware_trace::TraceSet;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A captured experiment ready for analysis benches.
pub struct Fixture {
    /// The application that ran.
    pub app: String,
    /// Captured traces.
    pub traces: TraceSet,
    /// Pre-aggregated flows (for benches that start downstream).
    pub flows: Vec<ProbeFlows>,
    /// The geolocation registry.
    pub registry: netaware_net::GeoRegistry,
    /// High-bandwidth probes (Fig. 2 restriction).
    pub highbw: BTreeSet<Ip>,
    /// Probe set `W`.
    pub probe_set: BTreeSet<Ip>,
}

/// Bench-scale experiment options: ~90 s at 4 % scale.
pub fn bench_options() -> ExperimentOptions {
    ExperimentOptions {
        seed: 1234,
        scale: 0.04,
        duration_us: 90_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: true,
        obs: netaware_obs::Obs::default(),
        ..Default::default()
    }
}

fn build_fixture(profile: AppProfile) -> Fixture {
    let scenario = netaware_testbed::BuiltScenario::build(
        &netaware_testbed::ScenarioConfig {
            seed: 1234,
            scale: 0.04,
            ..Default::default()
        },
        profile.overlay_size,
    );
    let out = netaware_testbed::run_on_scenario(profile, &scenario, &bench_options());
    let traces = out.traces.expect("fixtures keep traces"); // netaware-lint: allow(PA01) bench_options sets keep_traces
    let flows = aggregate(&traces, &AnalysisConfig::default());
    Fixture {
        app: out.app,
        probe_set: traces.probe_set(),
        flows,
        traces,
        registry: scenario.registry,
        highbw: scenario.highbw_probe_ips,
    }
}

/// The SopCast-like fixture (mid-sized overlay; the default corpus for
/// analysis benches).
pub fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| build_fixture(AppProfile::sopcast()))
}

/// The TVAnts-like fixture (strong locality; used by the AS-matrix and
/// locality benches).
pub fn tvants_fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| build_fixture(AppProfile::tvants()))
}

/// Tiny experiment options for end-to-end benches.
pub fn tiny_options() -> ExperimentOptions {
    ExperimentOptions {
        seed: 99,
        scale: 0.02,
        duration_us: 30_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: false,
        obs: netaware_obs::Obs::default(),
        ..Default::default()
    }
}

//! Ablation A: native selection policies vs the uniform-random control.
//!
//! Benches the end-to-end native/uniform pair per application and — at
//! setup time — asserts the causal claim behind the whole reproduction:
//! the measured biases appear under the native policy and vanish under
//! uniform selection on the *same* testbed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netaware_bench::tiny_options;
use netaware_proto::AppProfile;
use netaware_testbed::run_experiment;
use std::hint::black_box;

fn assert_causality() {
    // One SopCast-scale check is enough at bench time (the integration
    // tests cover all apps).
    let native = run_experiment(AppProfile::sopcast(), &tiny_options());
    let uniform = run_experiment(AppProfile::sopcast().uniform_selection(), &tiny_options());
    let nb = native
        .analysis
        .preference("BW")
        .unwrap()
        .download_all
        .bytes_pct;
    let ub = uniform
        .analysis
        .preference("BW")
        .unwrap()
        .download_all
        .bytes_pct;
    assert!(
        nb > ub + 10.0,
        "uniform selection must collapse the BW bias: native {nb:.1}% vs uniform {ub:.1}%"
    );
}

fn native_vs_uniform(c: &mut Criterion) {
    assert_causality();
    let mut g = c.benchmark_group("ablation/run");
    g.sample_size(10);
    for profile in AppProfile::paper_apps() {
        g.bench_with_input(
            BenchmarkId::new("native", &profile.name),
            &profile,
            |b, p| b.iter(|| black_box(run_experiment(p.clone(), &tiny_options()))),
        );
        let uni = profile.clone().uniform_selection();
        g.bench_with_input(BenchmarkId::new("uniform", &profile.name), &uni, |b, p| {
            b.iter(|| black_box(run_experiment(p.clone(), &tiny_options())))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = native_vs_uniform
}
criterion_main!(benches);

//! Observability-overhead benches.
//!
//! The `obs_overhead` group runs the same single-pass analysis three
//! ways: with the default disabled handle (instrumentation compiles to
//! an `enabled()` check on a `None` handle and nothing else), with a
//! counting null sink (filters pass, fields are evaluated, the event is
//! dropped at the sink), and with a live ring sink (events are built
//! and retained). The deltas bound what instrumentation costs the hot
//! analysis path; the acceptance bar for the PR is that the disabled
//! and null-sink variants stay within noise of the uninstrumented
//! `streaming` group baselines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netaware_analysis::{analyze_with_obs, AnalysisConfig};
use netaware_bench::fixture;
use netaware_obs::{Filter, Level, NullSink, Obs, RingSink};
use netaware_sim::SimTime;
use std::hint::black_box;
use std::sync::Arc;

fn analysis_overhead(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let total = f.traces.total_packets();

    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Elements(total as u64));
    g.bench_function("disabled", |b| {
        let obs = Obs::default();
        b.iter(|| black_box(analyze_with_obs(&f.traces, &f.registry, &cfg, &f.highbw, &obs)))
    });
    g.bench_function("null_sink", |b| {
        let obs = Obs::new(Arc::new(NullSink::new()));
        b.iter(|| black_box(analyze_with_obs(&f.traces, &f.registry, &cfg, &f.highbw, &obs)))
    });
    g.bench_function("ring_sink", |b| {
        let obs = Obs::new(Arc::new(RingSink::new(8192)));
        b.iter(|| black_box(analyze_with_obs(&f.traces, &f.registry, &cfg, &f.highbw, &obs)))
    });
    // The profiler arms clock reads around every instrumented phase;
    // this bounds what `--profile` costs the same hot path.
    g.bench_function("profiled", |b| {
        let obs = Obs::profiled();
        b.iter(|| black_box(analyze_with_obs(&f.traces, &f.registry, &cfg, &f.highbw, &obs)))
    });
    g.finish();
}

/// Micro-benches of the profiler primitives: a disabled handle's span
/// guard is the cost every un-profiled run pays at each instrumented
/// site; the enabled span/cell paths are the profiling overhead proper.
fn profiler_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_profile");
    g.bench_function("pspan_disabled", |b| {
        let obs = Obs::default();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let span = obs.pspan("bench.span");
            span.add_events(1);
            black_box(n)
        })
    });
    g.bench_function("pspan_enabled", |b| {
        let obs = Obs::profiled();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let span = obs.pspan("bench.span");
            span.add_events(1);
            black_box(n)
        })
    });
    g.bench_function("cell_disabled", |b| {
        let obs = Obs::default();
        let span = obs.pspan("bench.span");
        let cell = span.cell("bench.cell");
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            cell.time(|| black_box(n))
        })
    });
    g.bench_function("cell_enabled", |b| {
        let obs = Obs::profiled();
        let span = obs.pspan("bench.span");
        let cell = span.cell("bench.cell");
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            cell.time(|| black_box(n))
        })
    });
    g.finish();
}

/// Micro-benches of the event macro itself: the filtered-out case is
/// the cost every silenced call site pays, the recorded case is the
/// full build-and-store path.
fn event_macro(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_event");
    g.bench_function("filtered_out", |b| {
        let obs = Obs::with_filter(Arc::new(RingSink::new(64)), Filter::min(Level::Error));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            netaware_obs::event!(
                obs,
                Level::Debug,
                "bench.tick",
                SimTime::from_us(n),
                "n" = n,
            );
            black_box(n)
        })
    });
    g.bench_function("ring_recorded", |b| {
        let obs = Obs::new(Arc::new(RingSink::new(64)));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            netaware_obs::event!(
                obs,
                Level::Debug,
                "bench.tick",
                SimTime::from_us(n),
                "n" = n,
            );
            black_box(n)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = analysis_overhead, event_macro, profiler_primitives
}
criterion_main!(benches);

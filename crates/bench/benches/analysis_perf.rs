//! Analysis-pipeline performance and threshold-sensitivity benches
//! (Ablation B of DESIGN.md).
//!
//! * flow aggregation throughput, sequential vs rayon-parallel — the
//!   hot loop of the whole framework (one pass over every packet);
//! * the preference computation across hop/IPG threshold sweeps, which
//!   doubles as the sensitivity ablation: the assertions verify that the
//!   BW conclusion is stable in a wide band around the paper's 1 ms
//!   threshold;
//! * the streaming pipeline: single-pass `analyze` vs the legacy
//!   multi-pass shape, and disk-streaming `analyze_corpus` vs
//!   materialise-then-analyze, with peak heap reported via a counting
//!   allocator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netaware_analysis::flows::{aggregate, aggregate_probe};
use netaware_analysis::partition::Metric;
use netaware_analysis::preference::{preference, Dir};
use netaware_analysis::{analyze, analyze_corpus, AnalysisConfig};
use netaware_bench::fixture;
use netaware_trace::TraceSet;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Heap meter for the streaming comparison: tracks live bytes and the
/// high-water mark so the bench can report peak memory, not just time.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how far the heap high-water mark rose above the
/// live baseline during the call, in bytes.
fn peak_heap_of(f: impl FnOnce()) -> usize {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    f();
    PEAK.load(Ordering::Relaxed).saturating_sub(base)
}

fn flow_aggregation(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let total_packets: usize = f.traces.total_packets();

    let mut g = c.benchmark_group("flows/aggregate");
    g.throughput(Throughput::Elements(total_packets as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let out: Vec<_> = f
                .traces
                .traces
                .iter()
                .map(|t| aggregate_probe(t, &cfg))
                .collect();
            black_box(out)
        })
    });
    g.bench_function("parallel", |b| b.iter(|| black_box(aggregate(&f.traces, &cfg))));
    g.finish();
}

fn preference_computation(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let mut g = c.benchmark_group("preference");
    for metric in Metric::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(metric.name()),
            &metric,
            |b, &m| {
                b.iter(|| {
                    black_box(preference(
                        &f.flows,
                        &f.registry,
                        &cfg,
                        19,
                        m,
                        Dir::Download,
                        None,
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Sensitivity sweep: how the BW byte preference responds to the IPG
/// threshold. The conclusion ("traffic comes overwhelmingly from
/// high-bandwidth peers") must hold from 0.3 ms to 3 ms.
fn ipg_threshold_sweep(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("sensitivity/ipg_threshold");
    for thr_us in [300u64, 1_000, 3_000] {
        let cfg = AnalysisConfig {
            ipg_high_bw_us: thr_us,
            ..Default::default()
        };
        let v = preference(&f.flows, &f.registry, &cfg, 19, Metric::Bw, Dir::Download, None);
        assert!(
            v.bytes_pct > 75.0,
            "BW conclusion unstable at {thr_us} µs: {:.1}%",
            v.bytes_pct
        );
        g.bench_with_input(BenchmarkId::from_parameter(thr_us), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(preference(
                    &f.flows,
                    &f.registry,
                    cfg,
                    19,
                    Metric::Bw,
                    Dir::Download,
                    None,
                ))
            })
        });
    }
    g.finish();
}

/// Hop-threshold sweep around the paper's fixed 19.
fn hop_threshold_sweep(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let mut g = c.benchmark_group("sensitivity/hop_threshold");
    for thr in [15u8, 19, 23] {
        g.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |b, &t| {
            b.iter(|| {
                black_box(preference(
                    &f.flows,
                    &f.registry,
                    &cfg,
                    t,
                    Metric::Hop,
                    Dir::Download,
                    None,
                ))
            })
        });
    }
    g.finish();
}

/// The streaming-pipeline comparison. In memory, the single sweep of
/// `analyze` is measured against the legacy multi-pass shape (flow
/// aggregation and the rate summary each re-walking every record). On
/// disk, streaming `analyze_corpus` is measured against materialising a
/// `TraceSet` first; the peak-heap report is the memory half of that
/// story.
fn streaming(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let dir = std::env::temp_dir().join(format!("netaware_bench_corpus_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    f.traces.write_dir(&dir).expect("write corpus");
    let total = f.traces.total_packets();

    let mut g = c.benchmark_group("streaming");
    g.throughput(Throughput::Elements(total as u64));
    g.bench_function("multi_pass_legacy", |b| {
        b.iter(|| {
            let flows = aggregate(&f.traces, &cfg);
            let summary = netaware_analysis::summary::summarize(&f.traces, &flows, &cfg);
            black_box((flows, summary))
        })
    });
    g.bench_function("single_pass_analyze", |b| {
        b.iter(|| black_box(analyze(&f.traces, &f.registry, &cfg, &f.highbw)))
    });
    g.bench_function("disk_read_then_analyze", |b| {
        b.iter(|| {
            let set = TraceSet::read_dir(&dir).expect("read corpus");
            black_box(analyze(&set, &f.registry, &cfg, &f.highbw))
        })
    });
    g.bench_function("disk_streaming_analyze", |b| {
        b.iter(|| black_box(analyze_corpus(&dir, &f.registry, &cfg, &f.highbw).expect("corpus")))
    });
    g.finish();

    report_peak_memory(&dir, total);
    let _ = std::fs::remove_dir_all(&dir);
}

#[allow(clippy::print_stderr)]
fn report_peak_memory(dir: &Path, total: usize) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let mat = peak_heap_of(|| {
        let set = TraceSet::read_dir(dir).expect("read corpus");
        black_box(analyze(&set, &f.registry, &cfg, &f.highbw));
    });
    let streamed = peak_heap_of(|| {
        black_box(analyze_corpus(dir, &f.registry, &cfg, &f.highbw).expect("corpus"));
    });
    const MIB: f64 = 1024.0 * 1024.0;
    eprintln!(
        "[streaming] peak heap over baseline analysing {total} packets from disk: \
         read_dir+analyze {:.1} MiB, analyze_corpus {:.1} MiB ({:.1}x)",
        mat as f64 / MIB,
        streamed as f64 / MIB,
        mat as f64 / (streamed as f64).max(1.0),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = flow_aggregation, preference_computation, ipg_threshold_sweep, hop_threshold_sweep,
        streaming
}
criterion_main!(benches);

//! Analysis-pipeline performance and threshold-sensitivity benches
//! (Ablation B of DESIGN.md).
//!
//! * flow aggregation throughput, sequential vs rayon-parallel — the
//!   hot loop of the whole framework (one pass over every packet);
//! * the preference computation across hop/IPG threshold sweeps, which
//!   doubles as the sensitivity ablation: the assertions verify that the
//!   BW conclusion is stable in a wide band around the paper's 1 ms
//!   threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netaware_analysis::flows::{aggregate, aggregate_probe};
use netaware_analysis::partition::Metric;
use netaware_analysis::preference::{preference, Dir};
use netaware_analysis::AnalysisConfig;
use netaware_bench::fixture;
use std::hint::black_box;

fn flow_aggregation(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let total_packets: usize = f.traces.total_packets();

    let mut g = c.benchmark_group("flows/aggregate");
    g.throughput(Throughput::Elements(total_packets as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let out: Vec<_> = f
                .traces
                .traces
                .iter()
                .map(|t| aggregate_probe(t, &cfg))
                .collect();
            black_box(out)
        })
    });
    g.bench_function("parallel", |b| b.iter(|| black_box(aggregate(&f.traces, &cfg))));
    g.finish();
}

fn preference_computation(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let mut g = c.benchmark_group("preference");
    for metric in Metric::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(metric.name()),
            &metric,
            |b, &m| {
                b.iter(|| {
                    black_box(preference(
                        &f.flows,
                        &f.registry,
                        &cfg,
                        19,
                        m,
                        Dir::Download,
                        None,
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Sensitivity sweep: how the BW byte preference responds to the IPG
/// threshold. The conclusion ("traffic comes overwhelmingly from
/// high-bandwidth peers") must hold from 0.3 ms to 3 ms.
fn ipg_threshold_sweep(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("sensitivity/ipg_threshold");
    for thr_us in [300u64, 1_000, 3_000] {
        let cfg = AnalysisConfig {
            ipg_high_bw_us: thr_us,
            ..Default::default()
        };
        let v = preference(&f.flows, &f.registry, &cfg, 19, Metric::Bw, Dir::Download, None);
        assert!(
            v.bytes_pct > 75.0,
            "BW conclusion unstable at {thr_us} µs: {:.1}%",
            v.bytes_pct
        );
        g.bench_with_input(BenchmarkId::from_parameter(thr_us), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(preference(
                    &f.flows,
                    &f.registry,
                    cfg,
                    19,
                    Metric::Bw,
                    Dir::Download,
                    None,
                ))
            })
        });
    }
    g.finish();
}

/// Hop-threshold sweep around the paper's fixed 19.
fn hop_threshold_sweep(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    let mut g = c.benchmark_group("sensitivity/hop_threshold");
    for thr in [15u8, 19, 23] {
        g.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |b, &t| {
            b.iter(|| {
                black_box(preference(
                    &f.flows,
                    &f.registry,
                    &cfg,
                    t,
                    Metric::Hop,
                    Dir::Download,
                    None,
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = flow_aggregation, preference_computation, ipg_threshold_sweep, hop_threshold_sweep
}
criterion_main!(benches);

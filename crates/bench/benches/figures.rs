//! One bench per paper figure: Fig. 1 (geographic breakdown) and Fig. 2
//! (AS×AS probe traffic matrix with the intra/inter ratio R).

use criterion::{criterion_group, criterion_main, Criterion};
use netaware_analysis::asmatrix::as_matrix;
use netaware_analysis::geo::geo_breakdown;
use netaware_bench::{fixture, tvants_fixture};
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig1/geo_breakdown", |b| {
        b.iter(|| black_box(geo_breakdown(&f.flows, &f.registry)))
    });
}

fn fig2(c: &mut Criterion) {
    // TVAnts is the interesting corpus for Fig. 2 (it is the AS-aware
    // system whose R ≈ 2 the figure demonstrates).
    let f = tvants_fixture();
    c.bench_function("fig2/as_matrix", |b| {
        b.iter(|| black_box(as_matrix(&f.flows, &f.registry, &f.highbw)))
    });
    // Sanity at bench time: the locality-aware system must show R > 1.
    let m = as_matrix(&f.flows, &f.registry, &f.highbw);
    assert!(
        m.r_ratio.is_nan() || m.r_ratio > 0.5,
        "TVAnts R collapsed: {}",
        m.r_ratio
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fig1, fig2
}
criterion_main!(benches);

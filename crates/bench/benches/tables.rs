//! One bench per paper table: the code that regenerates Tables I–IV from
//! captured traces.

use criterion::{criterion_group, criterion_main, Criterion};
use netaware_analysis::preference::all_preferences;
use netaware_analysis::selfbias::self_bias;
use netaware_analysis::summary::summarize;
use netaware_analysis::tables;
use netaware_analysis::AnalysisConfig;
use netaware_bench::fixture;
use std::hint::black_box;

/// Table I is static testbed knowledge: bench its rendering.
fn table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(netaware_testbed::hosts::render_table1()))
    });
}

/// Table II: stream rates (windowed, per probe) + peer/contributor
/// counts over the full trace corpus.
fn table2(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    c.bench_function("table2/summarize", |b| {
        b.iter(|| black_box(summarize(&f.traces, &f.flows, &cfg)))
    });
    let summary = summarize(&f.traces, &f.flows, &cfg);
    c.bench_function("table2/render", |b| {
        b.iter(|| black_box(tables::render_table2(std::slice::from_ref(&summary))))
    });
}

/// Table III: self-induced bias of the probe set.
fn table3(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    c.bench_function("table3/self_bias", |b| {
        b.iter(|| black_box(self_bias(&f.flows, &cfg, &f.probe_set)))
    });
}

/// Table IV: the preferential-partition block (5 metrics × 4 variants).
fn table4(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    c.bench_function("table4/all_preferences", |b| {
        b.iter(|| {
            black_box(all_preferences(
                &f.flows,
                &f.registry,
                &cfg,
                19,
                &f.probe_set,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = table1, table2, table3, table4
}
criterion_main!(benches);

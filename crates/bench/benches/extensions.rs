//! Benches for the extension analyses: network-friendliness, flow
//! scatter, hop distribution, time series, per-probe breakdown.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netaware_analysis::hopdist::hop_distribution;
use netaware_analysis::netfriend::friendliness;
use netaware_analysis::persite::per_probe;
use netaware_analysis::scatter::{flow_points, top_contributor_share};
use netaware_analysis::timeseries::experiment_series;
use netaware_analysis::AnalysisConfig;
use netaware_bench::fixture;
use std::hint::black_box;

fn friendliness_bench(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    c.bench_function("ext/friendliness", |b| {
        b.iter(|| black_box(friendliness(&f.flows, &f.registry, &cfg)))
    });
}

fn scatter_bench(c: &mut Criterion) {
    let f = fixture();
    let n: usize = f.flows.iter().map(|pf| pf.flows.len()).sum();
    let mut g = c.benchmark_group("ext/scatter");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("flow_points", |b| b.iter(|| black_box(flow_points(&f.flows))));
    g.bench_function("top10_share", |b| {
        b.iter(|| black_box(top_contributor_share(&f.flows, 10)))
    });
    g.finish();
}

fn hopdist_bench(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    c.bench_function("ext/hop_distribution", |b| {
        b.iter(|| black_box(hop_distribution(&f.flows, &cfg, 19)))
    });
}

fn timeseries_bench(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("ext/timeseries");
    g.throughput(Throughput::Elements(f.traces.total_packets() as u64));
    g.bench_function("experiment_series_10s", |b| {
        b.iter(|| black_box(experiment_series(&f.traces, 10_000_000)))
    });
    g.finish();
}

fn persite_bench(c: &mut Criterion) {
    let f = fixture();
    let cfg = AnalysisConfig::default();
    c.bench_function("ext/per_probe", |b| {
        b.iter(|| black_box(per_probe(&f.flows, &f.registry, &cfg, 19)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = friendliness_bench, scatter_bench, hopdist_bench, timeseries_bench, persite_bench
}
criterion_main!(benches);

//! Simulation-engine performance: end-to-end swarm throughput per
//! application profile, plus microbenches of the DES primitives whose
//! cost dominates the event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netaware_bench::tiny_options;
use netaware_proto::AppProfile;
use netaware_sim::{AccessSerializer, DetRng, Scheduler, SimTime};
use netaware_testbed::run_experiment;
use std::hint::black_box;

fn swarm_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("swarm/run_30s_scale2pct");
    g.sample_size(10);
    for profile in AppProfile::paper_apps() {
        g.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, p| b.iter(|| black_box(run_experiment(p.clone(), &tiny_options()))),
        );
    }
    g.finish();
}

/// Shard-scaling: the same PPLive workload at increasing worker counts.
/// Results are byte-identical across the axis (enforced by the golden
/// and determinism tests), so this group measures the pure cost/benefit
/// of the parallel engine — barrier overhead at low core counts, event
/// throughput gains where cores are available.
fn shard_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("swarm/shard_scale_pplive");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let opts = netaware_testbed::ExperimentOptions {
            shards,
            ..tiny_options()
        };
        g.bench_with_input(BenchmarkId::from_parameter(shards), &opts, |b, o| {
            b.iter(|| black_box(run_experiment(AppProfile::pplive(), o)))
        });
    }
    g.finish();
}

fn scheduler_microbench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            // Interleaved pushes at pseudo-random future times.
            let mut x = 0x12345u64;
            for i in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                s.push(SimTime::from_us(s.now().as_us() + (x >> 33) % 10_000), i);
                if i % 4 == 0 {
                    black_box(s.pop());
                }
            }
            while s.pop().is_some() {}
            black_box(s.dispatched())
        })
    });
    g.finish();
}

fn serializer_microbench(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    let n = 100_000u32;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("enqueue_100k", |b| {
        b.iter(|| {
            let mut l = AccessSerializer::new(100_000_000);
            let mut t = SimTime::ZERO;
            for i in 0..n {
                t = l.enqueue(t, 1_250 - (i % 7));
            }
            black_box(t)
        })
    });
    g.finish();
}

fn rng_microbench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("weighted_pick_16", |b| {
        let weights: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        b.iter(|| {
            let mut r = DetRng::stream(7, "bench");
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc += r.pick_weighted(&weights).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = swarm_throughput, shard_scale, scheduler_microbench, serializer_microbench, rng_microbench
}
criterion_main!(benches);

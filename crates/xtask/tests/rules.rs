//! Fixture-driven integration tests: one violating + one clean file per
//! rule, linted under a path that puts the rule in scope, plus the
//! allow-directive escape hatch.

use netaware_xtask::{lint_source, Diagnostic};

fn fixture(name: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints a fixture as if it lived at `rel` inside the workspace.
fn lint_as(rel: &str, name: &str) -> Vec<Diagnostic> {
    lint_source(rel, &fixture(name))
}

fn assert_all_rule(diags: &[Diagnostic], rule: &str) {
    assert!(!diags.is_empty(), "expected {rule} findings, got none");
    for d in diags {
        assert_eq!(d.rule, rule, "unexpected finding: {}", d.render());
    }
}

fn assert_clean(diags: &[Diagnostic]) {
    assert!(
        diags.is_empty(),
        "expected clean, got:\n{}",
        diags
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---- ND01: wall-clock / ambient entropy --------------------------------

#[test]
fn nd01_fixture_flags_wall_clock_and_env() {
    let diags = lint_as("crates/sim/src/fixture.rs", "nd01_violation.rs");
    assert_all_rule(&diags, "ND01");
    assert!(diags.len() >= 2, "Instant and env::var should both fire");
}

#[test]
fn nd01_fixture_clean_passes() {
    assert_clean(&lint_as("crates/sim/src/fixture.rs", "nd01_clean.rs"));
}

#[test]
fn nd01_out_of_scope_in_analysis() {
    // The wall-clock rule only guards simulation-facing crates.
    let diags = lint_as("crates/analysis/src/fixture.rs", "nd01_violation.rs");
    assert!(diags.iter().all(|d| d.rule != "ND01"), "ND01 fired out of scope");
}

// ---- ND02: hash-ordered collections ------------------------------------

#[test]
fn nd02_fixture_flags_hashmap() {
    let diags = lint_as("crates/proto/src/fixture.rs", "nd02_violation.rs");
    assert_all_rule(&diags, "ND02");
}

#[test]
fn nd02_fixture_clean_passes() {
    assert_clean(&lint_as("crates/proto/src/fixture.rs", "nd02_clean.rs"));
}

// ---- ND03: unordered parallel float reduction --------------------------

#[test]
fn nd03_fixture_flags_par_sum() {
    let diags = lint_as("crates/analysis/src/fixture.rs", "nd03_violation.rs");
    assert_all_rule(&diags, "ND03");
}

#[test]
fn nd03_fixture_clean_passes() {
    // Parallel map + ordered sequential reduce is the sanctioned shape.
    assert_clean(&lint_as("crates/analysis/src/fixture.rs", "nd03_clean.rs"));
}

// ---- ND04: full-trace materialisation ----------------------------------

#[test]
fn nd04_fixture_flags_materialisation() {
    let diags = lint_as("crates/analysis/src/fixture.rs", "nd04_violation.rs");
    assert_all_rule(&diags, "ND04");
    assert_eq!(diags.len(), 3, "into_records + two records…collect");
}

#[test]
fn nd04_fixture_clean_passes() {
    // Borrowed iteration and run_pass(t.records(), …) are the idiom.
    assert_clean(&lint_as("crates/analysis/src/fixture.rs", "nd04_clean.rs"));
}

#[test]
fn nd04_out_of_scope_in_trace() {
    // The trace crate owns the buffers; it may materialise freely.
    let diags = lint_as("crates/trace/src/fixture.rs", "nd04_violation.rs");
    assert!(diags.iter().all(|d| d.rule != "ND04"), "ND04 fired out of scope");
}

#[test]
fn nd04_allow_directive_suppresses() {
    let src = "/// Rebuffers deliberately.\n\
               pub fn snapshot(trace: &ProbeTrace) -> Vec<PacketRecord> {\n\
               \x20   // netaware-lint: allow(ND04) snapshot API contract returns owned Vec\n\
               \x20   trace.records().iter().copied().collect()\n\
               }\n";
    assert_clean(&netaware_xtask::lint_source(
        "crates/analysis/src/fixture.rs",
        src,
    ));
}

// ---- ND05: hash-ordered iteration into sinks ----------------------------

#[test]
fn nd05_fixture_flags_hash_iteration_into_sinks() {
    let diags = lint_as("crates/obs/src/fixture.rs", "nd05_violation.rs");
    assert_all_rule(&diags, "ND05");
    assert_eq!(diags.len(), 3, "extend sink + collect + keys…collect");
}

#[test]
fn nd05_fixture_clean_passes() {
    // BTree iteration at the sink boundary and hash point-lookups are
    // both fine.
    assert_clean(&lint_as("crates/obs/src/fixture.rs", "nd05_clean.rs"));
}

#[test]
fn nd05_allow_directive_suppresses() {
    let src = "/// Emits counters; order irrelevant to the consumer.\n\
               pub fn emit(counts: &std::collections::HashMap<u64, u64>, out: &mut Vec<u64>) {\n\
               \x20   // netaware-lint: allow(ND05) consumer sorts before comparing\n\
               \x20   out.extend(counts.values().copied());\n\
               }\n";
    let diags = netaware_xtask::lint_source("crates/obs/src/fixture.rs", src);
    assert_clean(&diags);
}

// ---- CC01: bare thread/lock primitives ----------------------------------

#[test]
fn cc01_fixture_flags_locks_and_spawns() {
    let diags = lint_as("crates/sim/src/fixture.rs", "cc01_violation.rs");
    assert_all_rule(&diags, "CC01");
    assert_eq!(diags.len(), 3, "two Mutex mentions + one thread::spawn");
}

#[test]
fn cc01_fixture_clean_passes() {
    assert_clean(&lint_as("crates/sim/src/fixture.rs", "cc01_clean.rs"));
}

#[test]
fn cc01_sanctioned_parallel_core_is_exempt() {
    // The sharded parallel core owns these primitives.
    let diags = lint_as("crates/sim/src/par.rs", "cc01_violation.rs");
    assert!(
        diags.iter().all(|d| d.rule != "CC01"),
        "CC01 fired in the sanctioned module: {diags:?}"
    );
}

// ---- CC02: relaxed atomic orderings -------------------------------------

#[test]
fn cc02_fixture_flags_relaxed_and_acqrel() {
    let diags = lint_as("crates/sim/src/fixture.rs", "cc02_violation.rs");
    assert_all_rule(&diags, "CC02");
    assert_eq!(diags.len(), 2, "Relaxed + AcqRel");
}

#[test]
fn cc02_fixture_clean_passes() {
    assert_clean(&lint_as("crates/sim/src/fixture.rs", "cc02_clean.rs"));
}

#[test]
fn cc02_audited_metrics_module_is_exempt() {
    let diags = lint_as("crates/obs/src/metrics.rs", "cc02_violation.rs");
    assert!(
        diags.iter().all(|d| d.rule != "CC02"),
        "CC02 fired in the audited module: {diags:?}"
    );
}

// ---- RS01: RNG stream discipline ----------------------------------------

#[test]
fn rs01_fixture_flags_raw_ctor_and_drop_draw() {
    let diags = lint_as("crates/net/src/fixture.rs", "rs01_violation.rs");
    assert_all_rule(&diags, "RS01");
    assert_eq!(diags.len(), 2, "DetRng::new + draw inside Drop");
}

#[test]
fn rs01_fixture_clean_passes() {
    assert_clean(&lint_as("crates/net/src/fixture.rs", "rs01_clean.rs"));
}

#[test]
fn rs01_stream_registry_is_exempt() {
    let diags = lint_as("crates/sim/src/rng.rs", "rs01_violation.rs");
    assert!(
        diags.iter().all(|d| d.rule != "RS01"),
        "RS01 fired in the registry: {diags:?}"
    );
}

// ---- Severities ---------------------------------------------------------

#[test]
fn new_rules_land_at_warn_severity() {
    use netaware_xtask::Severity;
    let diags = lint_as("crates/sim/src/fixture.rs", "cc01_violation.rs");
    assert!(
        diags.iter().all(|d| d.severity == Severity::Warn),
        "{diags:?}"
    );
    let diags = lint_as("crates/net/src/fixture.rs", "pa01_violation.rs");
    assert!(
        diags.iter().all(|d| d.severity == Severity::Deny),
        "{diags:?}"
    );
}

// ---- PA01: panicking escape hatches ------------------------------------

#[test]
fn pa01_fixture_flags_unwrap_and_expect() {
    let diags = lint_as("crates/net/src/fixture.rs", "pa01_violation.rs");
    assert_all_rule(&diags, "PA01");
    assert_eq!(diags.len(), 2, "one unwrap + one expect");
}

#[test]
fn pa01_fixture_clean_passes() {
    assert_clean(&lint_as("crates/net/src/fixture.rs", "pa01_clean.rs"));
}

// ---- DOC01: missing public docs ----------------------------------------

#[test]
fn doc01_fixture_flags_undocumented_items() {
    let diags = lint_as("crates/trace/src/fixture.rs", "doc01_violation.rs");
    assert_all_rule(&diags, "DOC01");
    assert_eq!(diags.len(), 3, "fn + struct + field");
}

#[test]
fn doc01_fixture_clean_passes() {
    assert_clean(&lint_as("crates/trace/src/fixture.rs", "doc01_clean.rs"));
}

// ---- OB01: console printing in library code ----------------------------

#[test]
fn ob01_fixture_flags_console_macros() {
    let diags = lint_as("crates/obs/src/fixture.rs", "ob01_violation.rs");
    assert_all_rule(&diags, "OB01");
    assert_eq!(diags.len(), 3, "println + eprintln + dbg");
}

#[test]
fn ob01_fixture_clean_passes() {
    // event! emission and writeln! into a caller buffer are the idiom.
    assert_clean(&lint_as("crates/obs/src/fixture.rs", "ob01_clean.rs"));
}

#[test]
fn ob01_out_of_scope_in_xtask() {
    // The linter's own CLI reporting prints legitimately.
    let diags = lint_as("crates/xtask/src/fixture.rs", "ob01_violation.rs");
    assert!(diags.iter().all(|d| d.rule != "OB01"), "OB01 fired in xtask");
}

#[test]
fn ob01_allow_directive_suppresses() {
    let src = "/// Prints a banner.\n\
               pub fn banner() {\n\
               \x20   // netaware-lint: allow(OB01) one-shot startup banner requested by the host\n\
               \x20   println!(\"netaware\");\n\
               }\n";
    assert_clean(&netaware_xtask::lint_source(
        "crates/analysis/src/fixture.rs",
        src,
    ));
}

// ---- BH01: behaviour-layer discipline -----------------------------------

#[test]
fn bh01_fixture_flags_scheduler_and_event_patterns() {
    let diags = lint_as("crates/proto/src/swarm/announce.rs", "bh01_violation.rs");
    assert_all_rule(&diags, "BH01");
    assert_eq!(
        diags.len(),
        6,
        "one Scheduler + four match-arm patterns + one if-let"
    );
}

#[test]
fn bh01_fixture_clean_passes() {
    // Constructing events for Ctx::schedule is the sanctioned idiom.
    assert_clean(&lint_as(
        "crates/proto/src/swarm/announce.rs",
        "bh01_clean.rs",
    ));
}

#[test]
fn bh01_dispatcher_module_is_exempt() {
    // The dispatcher owns the scheduler and the event match by design.
    let diags = lint_as("crates/proto/src/swarm/dispatch.rs", "bh01_violation.rs");
    assert!(
        diags.iter().all(|d| d.rule != "BH01"),
        "BH01 fired in the dispatcher: {diags:?}"
    );
}

#[test]
fn bh01_out_of_scope_outside_proto() {
    // The sim crate owns the Scheduler type itself.
    let diags = lint_as("crates/sim/src/fixture.rs", "bh01_violation.rs");
    assert!(
        diags.iter().all(|d| d.rule != "BH01"),
        "BH01 fired outside proto"
    );
}

#[test]
fn bh01_allow_directive_suppresses() {
    let src = "/// Debug helper.\n\
               pub fn tick_index(ev: &Event) -> Option<u32> {\n\
               \x20   // netaware-lint: allow(BH01) read-only introspection for a trace dump\n\
               \x20   if let Event::Tick(i) = ev {\n\
               \x20       return Some(*i);\n\
               \x20   }\n\
               \x20   None\n\
               }\n";
    assert_clean(&netaware_xtask::lint_source(
        "crates/proto/src/swarm/announce.rs",
        src,
    ));
}

// ---- OB02: process-clock reads outside the Clock module -----------------

#[test]
fn ob02_fixture_flags_clock_reads() {
    let diags = lint_as("crates/analysis/src/fixture.rs", "ob02_violation.rs");
    assert_all_rule(&diags, "OB02");
    assert!(diags.len() >= 3, "Instant + SystemTime + UNIX_EPOCH should fire");
    assert!(
        diags.iter().all(|d| d.severity.label() == "warn"),
        "OB02 lands warn-first"
    );
}

#[test]
fn ob02_fixture_clean_passes() {
    assert_clean(&lint_as("crates/analysis/src/fixture.rs", "ob02_clean.rs"));
}

#[test]
fn ob02_out_of_scope_in_clock_module_and_sim() {
    // clock.rs is the sanctioned wall-clock boundary.
    let diags = lint_as("crates/obs/src/clock.rs", "ob02_violation.rs");
    assert!(diags.iter().all(|d| d.rule != "OB02"), "OB02 fired in clock.rs");
    // Simulation crates are ND01's stricter territory — no double report.
    let diags = lint_as("crates/sim/src/fixture.rs", "ob02_violation.rs");
    assert!(diags.iter().all(|d| d.rule != "OB02"), "OB02 fired in ND01 scope");
    assert!(diags.iter().any(|d| d.rule == "ND01"), "ND01 should cover sim");
}

#[test]
fn ob02_allow_directive_suppresses() {
    let src = "/// Reads the host clock for a log banner.\n\
               pub fn banner_nanos() -> u128 {\n\
               \x20   // netaware-lint: allow(OB02) one-shot banner stamp, not measurement\n\
               \x20   std::time::SystemTime::now().elapsed().map(|d| d.as_nanos()).unwrap_or(0)\n\
               }\n";
    assert_clean(&netaware_xtask::lint_source(
        "crates/trace/src/fixture.rs",
        src,
    ));
}

// ---- Escape hatch -------------------------------------------------------

#[test]
fn allow_directives_suppress_every_rule() {
    assert_clean(&lint_as("crates/sim/src/fixture.rs", "allow_escape.rs"));
}

#[test]
fn fixtures_in_tests_dirs_are_never_linted() {
    // Real location of the fixtures: under tests/, which is out of scope,
    // so the violating corpus cannot dirty the workspace lint.
    let diags = lint_as(
        "crates/xtask/tests/fixtures/pa01_violation.rs",
        "pa01_violation.rs",
    );
    assert_clean(&diags);
}

// ---- Span accuracy across a fixture ------------------------------------

#[test]
fn pa01_fixture_spans_point_at_the_call() {
    let src = fixture("pa01_violation.rs");
    let diags = lint_source("crates/net/src/fixture.rs", &src);
    for d in &diags {
        let line = src.lines().nth(d.line - 1).unwrap_or("");
        let at = &line[d.col - 1..];
        assert!(
            at.starts_with("unwrap") || at.starts_with("expect"),
            "span {}:{} lands on {at:?}",
            d.line,
            d.col
        );
    }
}

//! Tests for the `rules` catalogue command: every rule appears exactly
//! once in both the text table and the JSON form, and the JSON
//! round-trips through the vendored serde_json shim.

use netaware_xtask::{catalogue, catalogue_json, RuleId};

#[test]
fn text_catalogue_lists_every_rule_exactly_once() {
    let table = catalogue();
    for rule in RuleId::all() {
        assert_eq!(
            table.matches(rule.code()).count(),
            1,
            "{} must appear exactly once in:\n{table}",
            rule.code()
        );
    }
}

#[test]
fn text_catalogue_shows_severities() {
    let table = catalogue();
    let header = table.lines().next().expect("header line");
    assert!(header.contains("SEVERITY"), "{header}");
    for line in table.lines().skip(1) {
        let Some(rule) = RuleId::all().into_iter().find(|r| line.starts_with(r.code())) else {
            continue;
        };
        assert!(
            line.contains(rule.severity().label()),
            "row for {} must show `{}`: {line}",
            rule.code(),
            rule.severity().label()
        );
    }
}

#[test]
fn json_catalogue_lists_every_rule_exactly_once() {
    let text = catalogue_json();
    let root = serde_json::parse_value(&text).expect("catalogue JSON parses");
    let fields = root.as_map().expect("root object");
    let rules = serde_json::value::field(fields, "rules")
        .as_seq()
        .expect("rules array");
    assert_eq!(rules.len(), RuleId::all().len());
    for rule in RuleId::all() {
        let matching: Vec<_> = rules
            .iter()
            .filter(|entry| {
                let fields = entry.as_map().expect("rule object");
                serde_json::value::field(fields, "id").as_str() == Some(rule.code())
            })
            .collect();
        assert_eq!(matching.len(), 1, "{} appears once", rule.code());
        let fields = matching[0].as_map().expect("rule object");
        assert_eq!(
            serde_json::value::field(fields, "severity").as_str(),
            Some(rule.severity().label())
        );
        let summary = serde_json::value::field(fields, "summary")
            .as_str()
            .expect("summary string");
        assert!(!summary.is_empty());
    }
}

#[test]
fn json_catalogue_round_trips() {
    let text = catalogue_json();
    let first = serde_json::parse_value(&text).expect("parses");
    let reprinted = serde_json::to_string(&first).expect("prints");
    let second = serde_json::parse_value(&reprinted).expect("reparses");
    assert_eq!(first, second, "catalogue JSON must round-trip losslessly");
}

//! PA01 fixture: panicking escape hatches in library code.

/// Parses a port, panicking on malformed input.
pub fn port(s: &str) -> u16 {
    s.parse().unwrap()
}

/// Looks up a name, panicking when absent.
pub fn must_get(names: &[&str], i: usize) -> &'static str {
    names.get(i).copied().expect("index in range");
    "ok"
}

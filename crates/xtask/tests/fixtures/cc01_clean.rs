//! CC01-clean fixture: sequential sharding and SeqCst atomics; no bare
//! locks, no direct thread spawns.

use std::sync::atomic::{AtomicU64, Ordering};

/// Merges shard results in shard-index order.
pub fn merge(shards: &[Vec<u64>]) -> Vec<u64> {
    let mut out = Vec::new();
    for shard in shards {
        out.extend_from_slice(shard);
    }
    out
}

/// Counter bumped with sequentially consistent ordering.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}

//! ND05-clean fixture: ordered collections at the sink boundary, hash
//! collections only for point lookups.

use std::collections::{BTreeMap, HashMap};

/// Emits in key order from an ordered map.
pub fn emit_counts(counts: &BTreeMap<u64, u64>, out: &mut Vec<(u64, u64)>) {
    out.extend(counts.iter().map(|(k, v)| (*k, *v)));
}

/// Point lookups on a hash map never observe iteration order.
pub fn lookup(index: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    index.get(&key).copied()
}

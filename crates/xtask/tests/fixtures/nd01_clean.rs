//! ND01 fixture (clean): all time flows from the simulation clock and
//! all randomness from seeded streams.

/// Advances a simulated clock deterministically.
pub fn advance(now_us: u64, dt_us: u64) -> u64 {
    now_us.saturating_add(dt_us)
}

/// Mixes a seed and a label into a stream id.
pub fn stream_id(seed: u64, label: u64) -> u64 {
    seed.rotate_left(17) ^ label
}

//! ND02 fixture (clean): ordered collections keep every iteration, and
//! therefore every report, deterministic.

use std::collections::BTreeMap;

/// Counts key occurrences with a stable iteration order.
pub fn count(keys: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for k in keys {
        *m.entry(*k).or_default() += 1;
    }
    m
}

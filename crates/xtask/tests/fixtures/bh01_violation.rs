//! BH01 violating fixture: a would-be behaviour module that grabs the
//! scheduler and destructures raw events instead of using hooks.

/// Pushes straight into the scheduler, bypassing the action drain.
pub fn leak_scheduler(sched: &mut Scheduler<Event>) {
    sched.clear();
}

/// Destructures events a behaviour should receive as hook arguments.
pub fn peek(ev: &Event) -> u32 {
    match ev {
        Event::Tick(i) => *i,
        Event::Demand(i) | Event::Halo(i) => *i,
        Event::Serve { from, .. } => from.0,
        _ => 0,
    }
}

/// `if let` is pattern position too.
pub fn is_tick(ev: Event) -> bool {
    if let Event::Tick(_) = ev {
        return true;
    }
    false
}

//! CC02-clean fixture: sequentially consistent orderings only.

use std::sync::atomic::{AtomicU64, Ordering};

/// SeqCst fetch-add.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}

/// SeqCst load.
pub fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::SeqCst)
}

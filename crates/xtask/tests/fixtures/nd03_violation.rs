//! ND03 fixture: unordered parallel float reduction in analysis code.

use rayon::prelude::*;

/// Sums squared deviations in parallel; float addition is not
/// associative, so the reduction order changes the result.
pub fn sum_sq(xs: &[f64], mean: f64) -> f64 {
    xs.par_iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
}

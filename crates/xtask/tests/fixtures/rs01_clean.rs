//! RS01-clean fixture: named streams from the registry, draws outside
//! teardown paths.

use netaware_sim::rng::DetRng;

/// Derives the per-purpose generator from a named stream.
pub fn stream_for(seed: u64, label: &str) -> DetRng {
    DetRng::stream(seed, label)
}

/// Draws happen in ordinary control flow, attributable to the stream.
pub fn jitter_us(rng: &mut DetRng) -> u64 {
    rng.range(0, 250)
}

//! DOC01 fixture: public API with missing documentation.

pub fn naked() {}

pub struct Bare {
    pub field: u32,
}

//! RS01 fixture: unattributable generator construction and draws during
//! teardown.

use netaware_sim::rng::DetRng;

/// Builds a generator from a raw seed, bypassing the stream registry.
pub fn fresh(seed: u64) -> DetRng {
    DetRng::new(seed)
}

/// Guard that spends randomness at drop time.
pub struct NoisyGuard {
    /// Stream consumed during teardown.
    rng: DetRng,
}

impl Drop for NoisyGuard {
    fn drop(&mut self) {
        let _ = self.rng.next_u64();
    }
}

//! OB01 fixture (clean): diagnostics flow through the obs event log;
//! `writeln!` into a caller-supplied buffer is fine, and the macro
//! names may appear in comments (println! stays legal in prose).

use netaware_obs::{Level, Obs};
use netaware_sim::SimTime;
use std::fmt::Write;

/// Reports progress as a structured, filterable event.
pub fn narrate(obs: &Obs, now: SimTime, done: usize, total: usize) {
    netaware_obs::event!(obs, Level::Info, "pass.progress", now, "done" = done, "total" = total);
}

/// Renders into a buffer the binary chooses how to display.
pub fn render(done: usize, total: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "swept {done}/{total} probes");
    out
}

//! DOC01 fixture (clean): every public item carries a doc comment.

/// Does nothing, but says so.
pub fn documented() {}

/// A documented container.
pub struct Covered {
    /// A documented field.
    pub field: u32,
}

//! ND03 fixture (clean): parallel map, sequential (ordered) reduce.

use rayon::prelude::*;

/// Squares deviations in parallel, then sums in slice order so the
/// result is bit-stable across thread schedules.
pub fn sum_sq(xs: &[f64], mean: f64) -> f64 {
    let sq: Vec<f64> = xs.par_iter().map(|x| (x - mean) * (x - mean)).collect();
    sq.iter().sum()
}

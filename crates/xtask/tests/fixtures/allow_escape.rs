//! Escape-hatch fixture: every violation below carries a justified
//! `netaware-lint: allow(...)` directive, so the file lints clean.

use std::collections::HashMap; // netaware-lint: allow(ND02) fixture exercises the escape hatch

/// Reads an operator override from the environment.
pub fn operator_seed() -> Option<String> {
    // netaware-lint: allow(ND01) operator override, not simulation state
    std::env::var("NETAWARE_SEED").ok()
}

/// Parses input the caller has already validated.
pub fn must_parse(s: &str) -> u32 {
    s.parse().unwrap() // netaware-lint: allow(PA01) caller validates input
}

/// Builds a scratch map that never reaches a report.
// netaware-lint: allow(ND02) scratch map, drained before reporting
pub fn scratch() -> HashMap<u32, u32> {
    // netaware-lint: allow(ND02) scratch map, drained before reporting
    HashMap::new()
}

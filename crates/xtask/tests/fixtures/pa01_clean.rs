//! PA01 fixture (clean): fallible paths surface as `Option`/`Result`.

/// Parses a port, reporting malformed input to the caller.
pub fn port(s: &str) -> Option<u16> {
    s.parse().ok()
}

/// Looks up a name, reporting absence to the caller.
pub fn get<'a>(names: &[&'a str], i: usize) -> Option<&'a str> {
    names.get(i).copied()
}

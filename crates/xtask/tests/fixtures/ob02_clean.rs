//! OB02 fixture (clean): timing goes through the obs `Clock` handle, so
//! tests can substitute `ManualClock` and the measurement stays
//! replayable.

use netaware_obs::Clock;
use std::sync::Arc;

/// Times a closure against whatever clock the caller injected.
pub fn timed<R>(clock: &Arc<dyn Clock>, f: impl FnOnce() -> R) -> (R, u64) {
    let start = clock.elapsed_ns();
    let out = f();
    (out, clock.elapsed_ns().saturating_sub(start))
}

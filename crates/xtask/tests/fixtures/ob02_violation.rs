//! OB02 fixture: direct process-clock reads in library code.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Times a closure against the monotonic clock directly.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}

/// Stamps a report with wall-clock seconds since the epoch.
pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

//! OB01 fixture: console printing from library code.

/// Narrates progress straight to stdout.
pub fn narrate(done: usize, total: usize) {
    println!("swept {done}/{total} probes");
}

/// Grumbles to stderr instead of surfacing a structured event.
pub fn grumble(kind: &str) {
    eprintln!("stream error: {kind}");
}

/// Leftover debugging macro.
pub fn inspect(x: u64) -> u64 {
    dbg!(x * 2)
}

//! CC02 fixture: relaxed atomic orderings outside audited metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed fetch-add: updates may reorder across shard merges.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

/// Acquire-release swap is still not sequentially consistent.
pub fn swap(counter: &AtomicU64, value: u64) -> u64 {
    counter.swap(value, Ordering::AcqRel)
}

//! CC01 fixture: bare thread/lock primitives outside the parallel core.

use std::sync::Mutex;

/// Shared tally guarded by a bare lock.
pub struct Tally {
    /// Current totals.
    totals: Mutex<Vec<u64>>,
}

/// Spawns a worker thread directly.
pub fn spawn_worker() {
    std::thread::spawn(|| {});
}

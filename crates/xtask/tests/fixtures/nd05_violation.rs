//! ND05 fixture: hash-ordered iteration flowing into sinks and reduces.

use std::collections::HashMap;

/// Extends an output buffer in hash order (nondeterministic).
pub fn emit_counts(counts: &HashMap<u64, u64>, out: &mut Vec<(u64, u64)>) {
    out.extend(counts.iter().map(|(k, v)| (*k, *v)));
}

/// Collects a hash-ordered snapshot.
pub fn snapshot(scores: &HashMap<String, u64>) -> Vec<(&String, &u64)> {
    scores.iter().collect()
}

/// Serializes keys straight out of a locally built hash set.
pub fn report(serialize: fn(Vec<u64>)) {
    let mut seen: HashMap<u64, bool> = HashMap::new();
    seen.insert(7, true);
    serialize(seen.keys().copied().collect());
}

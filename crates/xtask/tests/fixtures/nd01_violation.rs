//! ND01 fixture: wall-clock time and ambient entropy in simulation code.

/// Measures elapsed wall-clock time — forbidden in simulation paths.
pub fn elapsed_wall() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

/// Reads configuration from the process environment.
pub fn ambient_seed() -> Option<String> {
    std::env::var("SEED").ok()
}

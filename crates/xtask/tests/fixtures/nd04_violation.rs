//! ND04 fixture: full-trace materialisation in analysis code.

use netaware_trace::{PacketRecord, ProbeTrace};

/// Buffers the whole trace into an owned Vec before looking at it.
pub fn buffer_all(trace: ProbeTrace) -> Vec<PacketRecord> {
    trace.into_records()
}

/// Copies the record slice into a second allocation.
pub fn copy_all(trace: &ProbeTrace) -> Vec<PacketRecord> {
    trace.records().iter().copied().collect()
}

/// Same copy through the unsorted accessor.
pub fn copy_unsorted(trace: &ProbeTrace) -> Vec<u64> {
    trace.records_unsorted().iter().map(|r| r.ts_us).collect()
}

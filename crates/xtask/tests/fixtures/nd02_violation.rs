//! ND02 fixture: hash-ordered collections on a simulation/report path.

use std::collections::HashMap;

/// Counts key occurrences — iteration order of the result is unstable.
pub fn count(keys: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for k in keys {
        *m.entry(*k).or_default() += 1;
    }
    m
}

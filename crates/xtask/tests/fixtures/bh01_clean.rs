//! BH01 clean fixture: a behaviour that *constructs* events for the
//! dispatcher to schedule, without matching them or touching the
//! scheduler. Construction in expression position must never fire.

/// Reschedules its own halo process through the typed action queue.
pub fn on_halo(ctx: &mut Ctx, i: u32, now: u64) {
    ctx.schedule(now + 250_000, Event::Halo(i));
    ctx.schedule(now + 500_000, super::state::Event::Demand(i));
}

/// Struct-variant construction is expression position too.
pub fn requeue(ctx: &mut Ctx, from: PeerId, to: PeerId, chunk: ChunkId) {
    let ev = Event::Serve { from, to, chunk };
    ctx.emit(ev);
    let eq = ev == Event::Serve { from, to, chunk };
    assert!(eq || !eq);
}

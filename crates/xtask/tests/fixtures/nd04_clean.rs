//! ND04 fixture (clean): records are borrowed and streamed in place,
//! never rebuffered into a second allocation.

use crate::pass::{run_pass, FlowPass};
use netaware_trace::ProbeTrace;

/// Streams the trace through an accumulator in one pass.
pub fn stream_bytes(trace: &ProbeTrace) -> u64 {
    let mut total = 0u64;
    for rec in trace.records() {
        total += u64::from(rec.bytes);
    }
    total
}

/// Hands the borrowed slice straight to the pass driver.
pub fn drive(trace: &ProbeTrace, pass: FlowPass) -> u64 {
    let flows = run_pass(trace.records_unsorted(), pass);
    flows.len() as u64
}

//! A flat Rust tokenizer with line/column spans.
//!
//! The lint rules are lexical: they need identifiers, punctuation, and
//! comments with accurate positions, but no syntax tree (`syn` is
//! unavailable offline). String and char literals are tokenized as opaque
//! units so their *content* can never trigger a rule; comments are kept
//! as tokens because `// netaware-lint: allow(...)` directives and doc
//! comments (for DOC01) live there.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal.
    Number,
    /// String literal (including raw strings), content opaque.
    Str,
    /// Char literal, content opaque.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// `// ...` comment that is not a doc comment.
    LineComment,
    /// `/* ... */` comment that is not a doc comment.
    BlockComment,
    /// `///`, `//!`, `/** */`, `/*! */`.
    DocComment,
}

/// One token with its source span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for comments: the full comment).
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
}

impl Tok {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Unterminated constructs consume to end of input
/// rather than erroring: the linter must degrade gracefully on files it
/// cannot fully understand.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = s.peek() {
        let (line, col, start) = (s.line, s.col, s.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek2() == Some(b'/') => {
                while let Some(c) = s.peek() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                let text = &src[start..s.pos];
                let kind = if text.starts_with("///") || text.starts_with("//!") {
                    TokKind::DocComment
                } else {
                    TokKind::LineComment
                };
                toks.push(tok(kind, text, line, col));
            }
            b'/' if s.peek2() == Some(b'*') => {
                s.bump();
                s.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (s.peek(), s.peek2()) {
                        (Some(b'/'), Some(b'*')) => {
                            s.bump();
                            s.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            s.bump();
                            s.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = &src[start..s.pos];
                let kind = if text.starts_with("/**") || text.starts_with("/*!") {
                    TokKind::DocComment
                } else {
                    TokKind::BlockComment
                };
                toks.push(tok(kind, text, line, col));
            }
            b'"' => {
                lex_string(&mut s);
                toks.push(tok(TokKind::Str, "\"…\"", line, col));
            }
            b'r' if matches!(s.peek2(), Some(b'"') | Some(b'#')) && is_raw_string(&s) => {
                lex_raw_string(&mut s);
                toks.push(tok(TokKind::Str, "r\"…\"", line, col));
            }
            b'b' if s.peek2() == Some(b'"') => {
                s.bump();
                lex_string(&mut s);
                toks.push(tok(TokKind::Str, "b\"…\"", line, col));
            }
            b'b' if s.peek2() == Some(b'\'') => {
                s.bump();
                lex_char(&mut s);
                toks.push(tok(TokKind::Char, "b'…'", line, col));
            }
            b'\'' => {
                // Lifetime or char literal.
                if is_lifetime(&s) {
                    s.bump();
                    while let Some(c) = s.peek() {
                        if is_ident_continue(c) {
                            s.bump();
                        } else {
                            break;
                        }
                    }
                    toks.push(tok(TokKind::Lifetime, &src[start..s.pos], line, col));
                } else {
                    lex_char(&mut s);
                    toks.push(tok(TokKind::Char, "'…'", line, col));
                }
            }
            c if c.is_ascii_digit() => {
                while let Some(c) = s.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        // Stop at `..` (range) and at a field access after
                        // the literal; only consume a dot followed by a
                        // digit (fraction).
                        if c == b'.' && !matches!(s.peek2(), Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                        s.bump();
                    } else {
                        break;
                    }
                }
                toks.push(tok(TokKind::Number, &src[start..s.pos], line, col));
            }
            c if is_ident_start(c) => {
                while let Some(c) = s.peek() {
                    if is_ident_continue(c) {
                        s.bump();
                    } else {
                        break;
                    }
                }
                toks.push(tok(TokKind::Ident, &src[start..s.pos], line, col));
            }
            _ => {
                s.bump();
                toks.push(tok(TokKind::Punct, &src[start..s.pos], line, col));
            }
        }
    }
    toks
}

fn tok(kind: TokKind, text: &str, line: usize, col: usize) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
        col,
    }
}

/// At an `r`: is this `r"`, `r#"`, `r##"`, … (and not an identifier)?
fn is_raw_string(s: &Scanner<'_>) -> bool {
    let mut i = s.pos + 1;
    while s.src.get(i) == Some(&b'#') {
        i += 1;
    }
    s.src.get(i) == Some(&b'"')
}

/// At a `'`: lifetime (`'a`, `'static`) rather than a char literal?
fn is_lifetime(s: &Scanner<'_>) -> bool {
    match (s.src.get(s.pos + 1), s.src.get(s.pos + 2)) {
        // 'x' is a char, 'x… (no closing quote) is a lifetime.
        (Some(&c), Some(&b'\'')) if is_ident_start(c) => false,
        (Some(&c), _) => is_ident_start(c),
        _ => false,
    }
}

fn lex_string(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    while let Some(c) = s.peek() {
        match c {
            b'\\' => {
                s.bump();
                s.bump();
            }
            b'"' => {
                s.bump();
                return;
            }
            _ => {
                s.bump();
            }
        }
    }
}

fn lex_raw_string(s: &mut Scanner<'_>) {
    s.bump(); // r
    let mut hashes = 0usize;
    while s.peek() == Some(b'#') {
        s.bump();
        hashes += 1;
    }
    s.bump(); // opening quote
    loop {
        match s.peek() {
            Some(b'"') => {
                s.bump();
                let mut n = 0usize;
                while n < hashes && s.peek() == Some(b'#') {
                    s.bump();
                    n += 1;
                }
                if n == hashes {
                    return;
                }
            }
            Some(_) => {
                s.bump();
            }
            None => return,
        }
    }
}

fn lex_char(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    match s.peek() {
        Some(b'\\') => {
            s.bump();
            s.bump();
        }
        Some(_) => {
            s.bump();
        }
        None => return,
    }
    // Unicode escapes (`'\u{1F600}'`) span several chars; consume to the
    // closing quote.
    while let Some(c) = s.peek() {
        s.bump();
        if c == b'\'' {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_have_spans() {
        let toks = lex("fn main() {\n    x.unwrap();\n}");
        let unwrap = toks
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap token present");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = lex(r#"let s = "HashMap::unwrap() SystemTime";"#);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn comments_are_classified() {
        let toks = lex("/// doc\n// plain\n//! inner\n/* block */\n/** blockdoc */");
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::DocComment,
                TokKind::LineComment,
                TokKind::DocComment,
                TokKind::BlockComment,
                TokKind::DocComment,
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let toks = lex(r##"let s = r#"thread_rng "quoted""#; let y = 1;"##);
        assert!(!toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("0..xs.len()");
        assert!(toks.iter().any(|t| t.kind == TokKind::Number && t.text == "0"));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 3);
    }
}

//! A flat Rust tokenizer with byte-offset and line/column spans.
//!
//! The lexer is the ground layer of the analyzer: it produces
//! identifiers, punctuation, literals, and comments with accurate byte
//! spans, which [`crate::parser`] lifts into a syntax tree. String and
//! char literals are tokenized as opaque units so their *content* can
//! never trigger a rule; comments are kept as tokens because
//! `// netaware-lint: allow(...)` directives and doc comments (for
//! DOC01) live there.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal.
    Number,
    /// String literal (including raw and byte-raw strings), content opaque.
    Str,
    /// Char literal, content opaque.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// `// ...` comment that is not a doc comment.
    LineComment,
    /// `/* ... */` comment that is not a doc comment.
    BlockComment,
    /// `///`, `//!`, `/** */`, `/*! */`.
    DocComment,
}

/// One token with its source span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for comments: the full comment; for string/char
    /// literals: an opaque placeholder so content cannot match rules).
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
    /// Byte offset of the first character in the source.
    pub pos: usize,
    /// Byte length of the token in the source.
    pub len: usize,
}

impl Tok {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Unterminated constructs consume to end of input
/// rather than erroring: the linter must degrade gracefully on files it
/// cannot fully understand.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = s.peek() {
        let (line, col, start) = (s.line, s.col, s.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek2() == Some(b'/') => {
                while let Some(c) = s.peek() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                let text = &src[start..s.pos];
                let kind = if text.starts_with("///") || text.starts_with("//!") {
                    TokKind::DocComment
                } else {
                    TokKind::LineComment
                };
                toks.push(tok(kind, text, line, col, start, s.pos - start));
            }
            b'/' if s.peek2() == Some(b'*') => {
                s.bump();
                s.bump();
                // Block comments nest: `/* outer /* inner */ still a comment */`.
                let mut depth = 1usize;
                while depth > 0 {
                    match (s.peek(), s.peek2()) {
                        (Some(b'/'), Some(b'*')) => {
                            s.bump();
                            s.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            s.bump();
                            s.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = &src[start..s.pos];
                let kind = if text.starts_with("/**") || text.starts_with("/*!") {
                    TokKind::DocComment
                } else {
                    TokKind::BlockComment
                };
                toks.push(tok(kind, text, line, col, start, s.pos - start));
            }
            b'"' => {
                lex_string(&mut s);
                toks.push(tok(TokKind::Str, "\"…\"", line, col, start, s.pos - start));
            }
            b'r' if is_raw_string_at(&s, s.pos) => {
                s.bump(); // r
                lex_raw_string(&mut s);
                toks.push(tok(TokKind::Str, "r\"…\"", line, col, start, s.pos - start));
            }
            b'b' if s.peek2() == Some(b'r') && is_raw_string_at(&s, s.pos + 1) => {
                s.bump(); // b
                s.bump(); // r
                lex_raw_string(&mut s);
                toks.push(tok(TokKind::Str, "br\"…\"", line, col, start, s.pos - start));
            }
            b'b' if s.peek2() == Some(b'"') => {
                s.bump();
                lex_string(&mut s);
                toks.push(tok(TokKind::Str, "b\"…\"", line, col, start, s.pos - start));
            }
            b'b' if s.peek2() == Some(b'\'') => {
                s.bump();
                lex_char(&mut s);
                toks.push(tok(TokKind::Char, "b'…'", line, col, start, s.pos - start));
            }
            b'\'' => {
                // Lifetime or char literal.
                if is_lifetime(&s) {
                    s.bump();
                    while let Some(c) = s.peek() {
                        if is_ident_continue(c) {
                            s.bump();
                        } else {
                            break;
                        }
                    }
                    toks.push(tok(
                        TokKind::Lifetime,
                        &src[start..s.pos],
                        line,
                        col,
                        start,
                        s.pos - start,
                    ));
                } else {
                    lex_char(&mut s);
                    toks.push(tok(TokKind::Char, "'…'", line, col, start, s.pos - start));
                }
            }
            c if c.is_ascii_digit() => {
                while let Some(c) = s.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        // Stop at `..` (range) and at a field access after
                        // the literal; only consume a dot followed by a
                        // digit (fraction).
                        if c == b'.' && !matches!(s.peek2(), Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                        s.bump();
                    } else {
                        break;
                    }
                }
                toks.push(tok(
                    TokKind::Number,
                    &src[start..s.pos],
                    line,
                    col,
                    start,
                    s.pos - start,
                ));
            }
            c if is_ident_start(c) => {
                while let Some(c) = s.peek() {
                    if is_ident_continue(c) {
                        s.bump();
                    } else {
                        break;
                    }
                }
                toks.push(tok(
                    TokKind::Ident,
                    &src[start..s.pos],
                    line,
                    col,
                    start,
                    s.pos - start,
                ));
            }
            _ => {
                s.bump();
                toks.push(tok(
                    TokKind::Punct,
                    &src[start..s.pos],
                    line,
                    col,
                    start,
                    s.pos - start,
                ));
            }
        }
    }
    toks
}

fn tok(kind: TokKind, text: &str, line: usize, col: usize, pos: usize, len: usize) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
        col,
        pos,
        len,
    }
}

/// At byte `at` (which holds `r`): is this `r"`, `r#"`, `r##"`, … (and
/// not a raw identifier `r#ident` or a plain identifier)?
fn is_raw_string_at(s: &Scanner<'_>, at: usize) -> bool {
    let mut i = at + 1;
    while s.src.get(i) == Some(&b'#') {
        i += 1;
    }
    s.src.get(i) == Some(&b'"')
}

/// At a `'`: lifetime (`'a`, `'static`) rather than a char literal?
fn is_lifetime(s: &Scanner<'_>) -> bool {
    match (s.src.get(s.pos + 1), s.src.get(s.pos + 2)) {
        // 'x' is a char, 'x… (no closing quote) is a lifetime.
        (Some(&c), Some(&b'\'')) if is_ident_start(c) => false,
        (Some(&c), _) => is_ident_start(c),
        _ => false,
    }
}

fn lex_string(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    while let Some(c) = s.peek() {
        match c {
            b'\\' => {
                s.bump();
                s.bump();
            }
            b'"' => {
                s.bump();
                return;
            }
            _ => {
                s.bump();
            }
        }
    }
}

/// Consumes `#*"…"#*` with the scanner positioned just after the `r`
/// (or `br`) prefix. The body is opaque: quotes inside only terminate
/// when followed by the matching number of hashes.
fn lex_raw_string(s: &mut Scanner<'_>) {
    let mut hashes = 0usize;
    while s.peek() == Some(b'#') {
        s.bump();
        hashes += 1;
    }
    s.bump(); // opening quote
    loop {
        match s.peek() {
            Some(b'"') => {
                s.bump();
                let mut n = 0usize;
                while n < hashes && s.peek() == Some(b'#') {
                    s.bump();
                    n += 1;
                }
                if n == hashes {
                    return;
                }
            }
            Some(_) => {
                s.bump();
            }
            None => return,
        }
    }
}

fn lex_char(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    match s.peek() {
        Some(b'\\') => {
            s.bump();
            s.bump();
        }
        Some(_) => {
            s.bump();
        }
        None => return,
    }
    // Unicode escapes (`'\u{1F600}'`) span several chars; consume to the
    // closing quote.
    while let Some(c) = s.peek() {
        s.bump();
        if c == b'\'' {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_have_spans() {
        let src = "fn main() {\n    x.unwrap();\n}";
        let toks = lex(src);
        let unwrap = toks
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap token present");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
        assert_eq!(&src[unwrap.pos..unwrap.pos + unwrap.len], "unwrap");
    }

    #[test]
    fn strings_are_opaque() {
        let toks = lex(r#"let s = "HashMap::unwrap() SystemTime";"#);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn comments_are_classified() {
        let toks = lex("/// doc\n// plain\n//! inner\n/* block */\n/** blockdoc */");
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::DocComment,
                TokKind::LineComment,
                TokKind::DocComment,
                TokKind::BlockComment,
                TokKind::DocComment,
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let toks = lex(r##"let s = r#"thread_rng "quoted""#; let y = 1;"##);
        assert!(!toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }

    // Regression: a raw string whose body contains an unescaped quote
    // followed by rule-matching text must not leak tokens. Before the
    // parser rewrite, only `r"…"` prefixes reaching the first hash-less
    // quote were handled; the `"#` terminator logic is exercised here
    // with code *after* the literal that must still tokenize.
    #[test]
    fn raw_string_with_inner_quotes_does_not_leak() {
        let src = r###"let a = r##"x.unwrap() "# still "quoted" inside"##; let tail = 2;"###;
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")), "{toks:?}");
        assert!(!toks.iter().any(|t| t.is_ident("inside")), "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("tail")));
    }

    // Regression: byte raw strings (`br#"…"#`) were previously lexed as
    // ident `br` + punct `#` + string, leaking the body as code tokens.
    #[test]
    fn byte_raw_strings_are_opaque() {
        let src = r##"let a = br#"SystemTime::now() HashMap"#; let ok = 1;"##;
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("SystemTime")), "{toks:?}");
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")), "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("ok")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "one opaque byte-raw-string token"
        );
    }

    // Regression: nested block comments must swallow their whole body —
    // an inner `/* */` must not terminate the outer comment early and
    // leak the remainder into rule matching.
    #[test]
    fn nested_block_comments_do_not_leak() {
        let src = "/* outer /* inner */ x.unwrap() still comment */ let real = 1;";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")), "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let toks = lex("let r#type = 1; let r#fn = r#type;");
        assert!(toks.iter().any(|t| t.is_ident("r")));
        assert!(!toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("0..xs.len()");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Number && t.text == "0"));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 3);
    }

    #[test]
    fn byte_spans_cover_the_source() {
        let src = "pub fn f() -> u32 {\n    0\n}\n";
        for t in lex(src) {
            assert!(t.pos + t.len <= src.len());
            if t.kind == TokKind::Ident {
                assert_eq!(&src[t.pos..t.pos + t.len], t.text);
            }
        }
    }
}

//! The perf-snapshot matrix and budget gate behind `xtask perf`.
//!
//! `run_matrix` executes the three paper applications clean and faulted
//! (six cells), plus two scenario-diversity cells — PPLive under the
//! flash-crowd/heavy-tail session model (`pplive_flashcrowd`) and the
//! random-peer epidemic push profile clean (`epidemic_rp`) — under a
//! profiled [`netaware_obs::Obs`] handle and writes
//! one `BENCH_<scenario>.json` per cell. The gate compares the *gated
//! series* of those reports against a checked-in `perf-baseline.json`:
//!
//! - **workload series** (`events`, `records`) are deterministic — the
//!   same seed must replay the same workload, so drift in *either*
//!   direction beyond `tolerance` fails (a changed workload silently
//!   invalidates every other comparison);
//! - **cost series** (`wall_ns`, `allocs`, `alloc_bytes`,
//!   `peak_heap_bytes`) fail only when they *grow* past their
//!   tolerance. Wall time and heap peaks vary across hosts, so they get
//!   the looser `wall_tolerance`; allocation counts are stable for a
//!   fixed toolchain and ride the strict `tolerance`.
//!
//! Throughput entries in the report are informational: they are ratios
//! of a gated cost over a gated workload, so gating them separately
//! would double-count noise.

use netaware_faults::{ChurnPlan, FaultPlan, SessionModel};
use netaware_obs::{Obs, PerfMeta, PerfReport};
use netaware_proto::AppProfile;
use netaware_testbed::{run_experiment, ExperimentOptions};
use serde_json::Value;
use std::collections::BTreeMap;

/// Knobs for one matrix run; [`PerfConfig::default`] is the CI cell.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Master seed for every cell.
    pub seed: u64,
    /// Population scale (fraction of paper-size overlays).
    pub scale: f64,
    /// Simulated duration per cell, seconds.
    pub sim_secs: u64,
    /// Shard-scaling cells: one PPLive clean cell per worker count
    /// (`pplive_shard<N>`), measuring the parallel engine. Empty
    /// disables the series.
    pub shard_series: Vec<usize>,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            seed: 777,
            scale: 0.02,
            sim_secs: 20,
            shard_series: vec![1, 2, 8],
        }
    }
}

/// The loss/jitter/churn plan used by the faulted cells — fixed so the
/// faulted scenarios are as reproducible as the clean ones.
fn faulted_plan() -> FaultPlan {
    FaultPlan::from_flags(Some(0.05), Some(2_000), true)
}

/// The session-model stress plan of the `pplive_flashcrowd` cell:
/// preset churn reshaped by the flash-crowd/heavy-tail/zapping model —
/// the most churn-event-heavy scenario the matrix runner produces.
fn flashcrowd_plan() -> FaultPlan {
    FaultPlan {
        churn: Some(ChurnPlan::preset()),
        session: Some(SessionModel::flashcrowd_preset()),
        ..FaultPlan::none()
    }
}

/// Runs one profiled cell and returns its report.
pub fn run_cell(profile: AppProfile, faulted: bool, cfg: &PerfConfig) -> PerfReport {
    let scenario = format!(
        "{}_{}",
        profile.name.to_lowercase(),
        if faulted { "faulted" } else { "clean" }
    );
    run_named_cell(profile, faulted, 1, scenario, cfg)
}

/// Runs one shard-scaling cell: PPLive clean with `shards` workers.
/// The scenario id carries the shard count so each worker count gets
/// its own gated series in the baseline.
pub fn run_shard_cell(profile: AppProfile, shards: usize, cfg: &PerfConfig) -> PerfReport {
    let scenario = format!("{}_shard{}", profile.name.to_lowercase(), shards);
    run_named_cell(profile, false, shards, scenario, cfg)
}

fn run_named_cell(
    profile: AppProfile,
    faulted: bool,
    shards: usize,
    scenario: String,
    cfg: &PerfConfig,
) -> PerfReport {
    let plan = if faulted {
        faulted_plan()
    } else {
        FaultPlan::none()
    };
    run_plan_cell(profile, plan, shards, scenario, cfg)
}

/// Runs one profiled cell under an explicit fault plan (the
/// scenario-diversity cells carry session models the boolean
/// clean/faulted split cannot express).
pub fn run_plan_cell(
    profile: AppProfile,
    plan: FaultPlan,
    shards: usize,
    scenario: String,
    cfg: &PerfConfig,
) -> PerfReport {
    // The peak-heap counter is a process-global high-water mark; rebase
    // it so each cell reports its own peak, not the matrix maximum.
    netaware_obs::alloc::reset_peak();
    let obs = Obs::profiled();
    let opts = ExperimentOptions {
        seed: cfg.seed,
        scale: cfg.scale,
        duration_us: cfg.sim_secs * 1_000_000,
        obs: obs.clone(),
        shards,
        faults: plan,
        ..Default::default()
    };
    let _ = run_experiment(profile, &opts);
    let meta = PerfMeta {
        scenario,
        toolchain: toolchain(),
        seed: cfg.seed,
        scale_permille: (cfg.scale * 1000.0).round() as u64,
        sim_secs: cfg.sim_secs,
    };
    // netaware-lint: allow(PA01) a handle built by Obs::profiled() always carries a profiler
    obs.perf_report(meta).expect("profiled handle has a profiler")
}

/// Runs the full 3-application × {clean, faulted} matrix plus the
/// shard-scaling cells, in a stable order (report order is the
/// scenario id order).
pub fn run_matrix(cfg: &PerfConfig) -> Vec<PerfReport> {
    let mut out = Vec::new();
    for profile in AppProfile::paper_apps() {
        for faulted in [false, true] {
            out.push(run_cell(profile.clone(), faulted, cfg));
        }
    }
    // Scenario-diversity cells: the session-model machinery under its
    // heaviest configuration, and the epidemic push scheduler — both
    // new subsystems get their own gated cost series.
    out.push(run_plan_cell(
        AppProfile::pplive(),
        flashcrowd_plan(),
        1,
        String::from("pplive_flashcrowd"),
        cfg,
    ));
    out.push(run_plan_cell(
        AppProfile::epidemic_rp(),
        FaultPlan::none(),
        1,
        String::from("epidemic_rp"),
        cfg,
    ));
    // Shard-scaling pass: the same PPLive clean workload at each worker
    // count. Byte-identical results are enforced elsewhere (goldens,
    // CI determinism job); these cells gate the *cost* of parallelism.
    if let Some(pplive) = AppProfile::paper_apps().into_iter().next() {
        for &shards in &cfg.shard_series {
            out.push(run_shard_cell(pplive.clone(), shards, cfg));
        }
    }
    out.sort_by(|a, b| a.meta.scenario.cmp(&b.meta.scenario));
    out
}

fn toolchain() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| String::from("rustc unknown"))
}

// ------------------------------------------------------------- baseline

/// Schema version of `perf-baseline.json`.
pub const BASELINE_SCHEMA: u32 = 1;

/// Suffixes of the series the gate compares (everything else in a
/// report is informational).
const GATED: &[&str] = &[
    "/wall_ns",
    "/allocs",
    "/alloc_bytes",
    "/peak_heap_bytes",
    "/events",
    "/records",
];

/// Series that replay deterministically from the seed; drift in either
/// direction means the workload itself changed.
const WORKLOAD: &[&str] = &["/events", "/records"];

/// Series measured against the host clock or heap high-water mark;
/// compared with the looser `wall_tolerance`.
const WALL: &[&str] = &["/wall_ns", "/peak_heap_bytes"];

fn gated(name: &str) -> bool {
    GATED.iter().any(|s| name.ends_with(s))
}

/// Extracts the gated series of a report set into one flat map.
pub fn gated_series(reports: &[PerfReport]) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for r in reports {
        for (k, v) in r.series() {
            if gated(&k) {
                out.insert(k, v);
            }
        }
    }
    out
}

/// Renders a baseline file body from the gated series of `reports`.
pub fn render_baseline(reports: &[PerfReport]) -> String {
    let body = Baseline {
        schema: BASELINE_SCHEMA,
        series: gated_series(reports),
    };
    serde_json::to_string_pretty(&body).unwrap_or_default()
}

/// The checked-in `perf-baseline.json` payload.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Baseline {
    /// Baseline schema version.
    pub schema: u32,
    /// Gated series name → recorded value.
    pub series: BTreeMap<String, f64>,
}

impl Baseline {
    /// Parses a baseline file body.
    pub fn parse(s: &str) -> Result<Baseline, String> {
        let v: Value = serde_json::parse_value(s).map_err(|e| format!("{e:?}"))?;
        let b: Baseline = serde::Deserialize::from_value(&v).map_err(|e| format!("{e:?}"))?;
        if b.schema != BASELINE_SCHEMA {
            return Err(format!(
                "baseline schema {} unsupported (expected {BASELINE_SCHEMA}); \
                 regenerate with `xtask perf --write-baseline`",
                b.schema
            ));
        }
        Ok(b)
    }
}

// ----------------------------------------------------------------- gate

/// One budget violation, rendered for CI logs.
#[derive(Clone, Debug, PartialEq)]
pub struct Breach {
    /// The offending series (`pplive_clean/wall_ns`).
    pub series: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// The tolerance it was allowed.
    pub allowed: f64,
}

impl Breach {
    /// The CI failure line: names the series and the drift.
    pub fn render(&self) -> String {
        let drift = if self.baseline != 0.0 {
            (self.current - self.baseline) / self.baseline * 100.0
        } else {
            f64::INFINITY
        };
        format!(
            "perf budget: {} drifted {:+.1}% (baseline {:.0}, current {:.0}, allowed ±{:.0}%)",
            self.series,
            drift,
            self.baseline,
            self.current,
            self.allowed * 100.0
        )
    }
}

/// Compares current gated series against the baseline. Returns every
/// breach: cost series failing on growth past tolerance, workload
/// series on drift in either direction, and series missing from either
/// side (a silently dropped series would un-gate itself).
pub fn check(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
    wall_tolerance: f64,
) -> Vec<Breach> {
    let mut out = Vec::new();
    for (name, &base) in baseline {
        let Some(&cur) = current.get(name) else {
            out.push(Breach {
                series: format!("{name} (missing from current run)"),
                baseline: base,
                current: f64::NAN,
                allowed: 0.0,
            });
            continue;
        };
        let wall = WALL.iter().any(|s| name.ends_with(s));
        let workload = WORKLOAD.iter().any(|s| name.ends_with(s));
        let tol = if wall { wall_tolerance } else { tolerance };
        let breached = if workload {
            (cur - base).abs() > base * tol
        } else {
            cur > base * (1.0 + tol)
        };
        if breached {
            out.push(Breach {
                series: name.clone(),
                baseline: base,
                current: cur,
                allowed: tol,
            });
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            out.push(Breach {
                series: format!("{name} (missing from baseline; re-run --write-baseline)"),
                baseline: f64::NAN,
                current: current[name],
                allowed: 0.0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(wall: f64, events: f64, allocs: f64) -> BTreeMap<String, f64> {
        BTreeMap::from([
            (String::from("pplive_clean/wall_ns"), wall),
            (String::from("pplive_clean/events"), events),
            (String::from("pplive_clean/allocs"), allocs),
        ])
    }

    #[test]
    fn identical_series_pass() {
        let base = series(1e9, 5e4, 1e6);
        assert!(check(&base, &base, 0.10, 0.5).is_empty());
    }

    #[test]
    fn injected_slowdown_past_tolerance_fails_and_names_the_series() {
        let base = series(1e9, 5e4, 1e6);
        // 60% wall slowdown: over even the loose wall tolerance.
        let cur = series(1.6e9, 5e4, 1e6);
        let breaches = check(&cur, &base, 0.10, 0.5);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].series, "pplive_clean/wall_ns");
        assert!(breaches[0].render().contains("pplive_clean/wall_ns"));
        assert!(breaches[0].render().contains("+60.0%"));
    }

    #[test]
    fn wall_noise_within_wall_tolerance_passes() {
        let base = series(1e9, 5e4, 1e6);
        // 30% wall jitter is host noise, 8% alloc growth is under gate.
        let cur = series(1.3e9, 5e4, 1.08e6);
        assert!(check(&cur, &base, 0.10, 0.5).is_empty());
    }

    #[test]
    fn alloc_regression_uses_strict_tolerance() {
        let base = series(1e9, 5e4, 1e6);
        let cur = series(1e9, 5e4, 1.2e6);
        let breaches = check(&cur, &base, 0.10, 0.5);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].series, "pplive_clean/allocs");
    }

    #[test]
    fn workload_drift_fails_in_both_directions() {
        let base = series(1e9, 5e4, 1e6);
        let fewer = series(1e9, 4e4, 1e6);
        let more = series(1e9, 6e4, 1e6);
        assert_eq!(check(&fewer, &base, 0.10, 0.5).len(), 1);
        assert_eq!(check(&more, &base, 0.10, 0.5).len(), 1);
        // An *improvement* in a cost series is not a breach.
        let faster = series(0.5e9, 5e4, 0.5e6);
        assert!(check(&faster, &base, 0.10, 0.5).is_empty());
    }

    #[test]
    fn missing_series_fail_both_ways() {
        let base = series(1e9, 5e4, 1e6);
        let mut cur = base.clone();
        cur.remove("pplive_clean/allocs");
        cur.insert(String::from("tvants_clean/wall_ns"), 1.0);
        let breaches = check(&cur, &base, 0.10, 0.5);
        assert_eq!(breaches.len(), 2);
        assert!(breaches[0].series.contains("missing from current"));
        assert!(breaches[1].series.contains("missing from baseline"));
    }

    #[test]
    fn baseline_round_trips_and_rejects_unknown_schema() {
        let body = serde_json::to_string_pretty(&Baseline {
            schema: BASELINE_SCHEMA,
            series: series(1e9, 5e4, 1e6),
        })
        .unwrap_or_default();
        let back = Baseline::parse(&body).expect("round trip");
        assert_eq!(back.series.len(), 3);
        let stale = body.replace("\"schema\": 1", "\"schema\": 99");
        assert!(Baseline::parse(&stale).is_err());
    }
}

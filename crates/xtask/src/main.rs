//! CLI entry point: `cargo run -p netaware-xtask -- lint [--format sarif]`.
//!
//! Exit codes: 0 = clean (or warn-only without `--deny-warnings`),
//! 1 = unsuppressed deny findings (or any finding under
//! `--deny-warnings`), 2 = usage or I/O error.

use netaware_xtask::{apply_baseline, baseline, perf as perf_mod, sarif, LintReport};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Counting allocator: lets `perf` report allocation and peak-heap
/// series in its BENCH snapshots. Near-free when idle (two relaxed
/// atomic adds per allocation).
#[global_allocator]
static ALLOC: netaware_obs::alloc::CountingAlloc = netaware_obs::alloc::CountingAlloc;

/// Writes to stdout, tolerating a closed pipe (e.g. `lint | head`).
fn out(s: std::fmt::Arguments<'_>) {
    let _ = writeln!(std::io::stdout(), "{s}");
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: netaware-xtask <command>\n\n\
         commands:\n  \
         lint [options]   run the workspace lint pass\n  \
         perf [options]   run the perf matrix (6 app cells + 2 scenario cells + shard scaling); write BENCH_*.json snapshots\n  \
         rules [--json]   print the lint catalogue\n\n\
         lint options:\n  \
         --format <text|json|sarif>  output format (default text)\n  \
         --json                      shorthand for --format json\n  \
         --out <file>                write the report to a file instead of stdout\n  \
         --root <dir>                workspace root (default: two above the xtask crate)\n  \
         --baseline <file>           suppression baseline (default: <root>/lint-baseline.json)\n  \
         --no-baseline               ignore any baseline file\n  \
         --write-baseline [<file>]   record all current findings as the new baseline\n  \
         --deny-warnings             treat warn-level findings as failures (CI mode)\n\n\
         perf options:\n  \
         --out-dir <dir>             where BENCH_<scenario>.json land (default: workspace root)\n  \
         --check [<file>]            gate against a baseline (default: <root>/perf-baseline.json)\n  \
         --write-baseline [<file>]   record the gated series of this run as the new baseline\n  \
         --tolerance <f>             allowed drift for deterministic series (default 0.10)\n  \
         --wall-tolerance <f>        allowed growth for wall/heap series (default 1.0)\n  \
         --seed <n> --scale <f> --sim-secs <n>   matrix cell parameters (default 777/0.02/20)\n  \
         --shards <list|none>        worker counts for the shard-scaling cells (default 1,2,8)"
    );
    ExitCode::from(2)
}

/// Output formats for `lint`.
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("perf") => perf(&args[1..]),
        Some("rules") => {
            let json = args[1..].iter().any(|a| a == "--json");
            if json {
                out(format_args!("{}", netaware_xtask::catalogue_json()));
            } else {
                let _ = write!(std::io::stdout(), "{}", netaware_xtask::catalogue());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline: Option<Option<PathBuf>> = None;
    let mut deny_warnings = false;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = Format::Json,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => return usage(),
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => {
                // Optional file operand: consume the next arg unless it
                // looks like another flag.
                let file = it
                    .peek()
                    .filter(|n| !n.starts_with("--"))
                    .map(|n| PathBuf::from(n.as_str()));
                if file.is_some() {
                    it.next();
                }
                write_baseline = Some(file);
            }
            "--deny-warnings" => deny_warnings = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let diags = match netaware_xtask::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "netaware-xtask: cannot walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if let Some(file) = write_baseline {
        let path = file.unwrap_or_else(|| root.join("lint-baseline.json"));
        let text = baseline::render(&diags);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("netaware-xtask: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        out(format_args!(
            "netaware-xtask lint: wrote {} suppression(s) to {}",
            diags.len(),
            path.display()
        ));
        return ExitCode::SUCCESS;
    }

    let base = if no_baseline {
        None
    } else {
        let path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
        if path.exists() {
            match std::fs::read_to_string(&path) {
                Ok(text) => match baseline::Baseline::parse(&text) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        eprintln!("netaware-xtask: {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                },
                Err(e) => {
                    eprintln!("netaware-xtask: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        } else if baseline_path_was_explicit(args) {
            eprintln!("netaware-xtask: baseline {} not found", path.display());
            return ExitCode::from(2);
        } else {
            None
        }
    };
    let report = apply_baseline(diags, base.as_ref());

    let rendered = match format {
        Format::Text => None,
        Format::Json => Some(netaware_xtask::json_report(&report.active)),
        Format::Sarif => Some(sarif::report(&report.active, &report.suppressed)),
    };
    match (rendered, &out_path) {
        (Some(text), Some(path)) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("netaware-xtask: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        (Some(text), None) => {
            let _ = write!(std::io::stdout(), "{text}");
            if !text.ends_with('\n') {
                out(format_args!(""));
            }
        }
        (None, _) => render_text(&report),
    }

    let failing = report.deny_count() + if deny_warnings { report.warn_count() } else { 0 };
    if failing == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn perf(args: &[String]) -> ExitCode {
    let mut cfg = perf_mod::PerfConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut check: Option<Option<PathBuf>> = None;
    let mut write_baseline: Option<Option<PathBuf>> = None;
    let mut tolerance = 0.10f64;
    let mut wall_tolerance = 1.0f64;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        // `--check` and `--write-baseline` take an optional file operand.
        let optional_file = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
            let file = it
                .peek()
                .filter(|n| !n.starts_with("--"))
                .map(|n| PathBuf::from(n.as_str()));
            if file.is_some() {
                it.next();
            }
            file
        };
        match a.as_str() {
            "--out-dir" => match it.next() {
                Some(d) => out_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--check" => check = Some(optional_file(&mut it)),
            "--write-baseline" => write_baseline = Some(optional_file(&mut it)),
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => tolerance = v,
                None => return usage(),
            },
            "--wall-tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => wall_tolerance = v,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.scale = v,
                None => return usage(),
            },
            "--sim-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.sim_secs = v,
                None => return usage(),
            },
            // Comma-separated worker counts for the shard-scaling cells
            // (`--shards 1,2,8`); `--shards none` drops the series.
            "--shards" => match it.next() {
                Some(v) if v == "none" => cfg.shard_series.clear(),
                Some(v) => {
                    let parsed: Result<Vec<usize>, _> =
                        v.split(',').map(|p| p.trim().parse()).collect();
                    match parsed {
                        Ok(list) => cfg.shard_series = list,
                        Err(_) => return usage(),
                    }
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = workspace_root();
    let out_dir = out_dir.unwrap_or_else(|| root.clone());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("netaware-xtask: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }

    let reports = perf_mod::run_matrix(&cfg);
    for r in &reports {
        let path = out_dir.join(format!("BENCH_{}.json", r.meta.scenario));
        if let Err(e) = std::fs::write(&path, r.to_json()) {
            eprintln!("netaware-xtask: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let wall_ms = r.profile.total(|n| n.wall_ns) as f64 / 1e6;
        out(format_args!(
            "perf: {:<16} {:>9.1} ms wall, {:>8} events, peak heap {:.2} MiB -> {}",
            r.meta.scenario,
            wall_ms,
            r.profile.total(|n| n.events),
            r.peak_heap_bytes as f64 / (1 << 20) as f64,
            path.display(),
        ));
    }

    if let Some(file) = write_baseline {
        let path = file.unwrap_or_else(|| root.join("perf-baseline.json"));
        if let Err(e) = std::fs::write(&path, perf_mod::render_baseline(&reports)) {
            eprintln!("netaware-xtask: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        out(format_args!(
            "perf: wrote {} gated series to {}",
            perf_mod::gated_series(&reports).len(),
            path.display()
        ));
        return ExitCode::SUCCESS;
    }

    if let Some(file) = check {
        let path = file.unwrap_or_else(|| root.join("perf-baseline.json"));
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("netaware-xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match perf_mod::Baseline::parse(&body) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("netaware-xtask: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let breaches = perf_mod::check(
            &perf_mod::gated_series(&reports),
            &baseline.series,
            tolerance,
            wall_tolerance,
        );
        if breaches.is_empty() {
            out(format_args!(
                "perf: {} gated series within budget (tolerance {:.0}%, wall {:.0}%)",
                baseline.series.len(),
                tolerance * 100.0,
                wall_tolerance * 100.0
            ));
            return ExitCode::SUCCESS;
        }
        for b in &breaches {
            eprintln!("{}", b.render());
        }
        eprintln!(
            "netaware-xtask perf: {} series over budget against {}",
            breaches.len(),
            path.display()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Whether `--baseline` appeared explicitly (a missing default baseline
/// is fine; a missing explicit one is an error).
fn baseline_path_was_explicit(args: &[String]) -> bool {
    args.iter().any(|a| a == "--baseline")
}

fn render_text(report: &LintReport) {
    for d in &report.active {
        out(format_args!("{}", d.render()));
    }
    for stale in &report.stale {
        out(format_args!(
            "netaware-xtask lint: stale baseline entry {stale} — regenerate with --write-baseline"
        ));
    }
    let deny = report.deny_count();
    let warn = report.warn_count();
    if deny == 0 && warn == 0 {
        if report.suppressed.is_empty() {
            out(format_args!("netaware-xtask lint: clean"));
        } else {
            out(format_args!(
                "netaware-xtask lint: clean ({} baselined finding(s))",
                report.suppressed.len()
            ));
        }
    } else {
        out(format_args!(
            "netaware-xtask lint: {deny} deny, {warn} warn ({} baselined)",
            report.suppressed.len()
        ));
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

//! CLI entry point: `cargo run -p netaware-xtask -- lint [--json]`.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout, tolerating a closed pipe (e.g. `lint | head`).
fn out(s: std::fmt::Arguments<'_>) {
    let _ = writeln!(std::io::stdout(), "{s}");
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: netaware-xtask <command>\n\n\
         commands:\n  \
         lint [--json] [--root <dir>]   run the workspace lint pass\n  \
         rules                          print the lint catalogue"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            let _ = write!(std::io::stdout(), "{}", netaware_xtask::catalogue());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let diags = match netaware_xtask::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("netaware-xtask: cannot walk workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        out(format_args!("{}", netaware_xtask::json_report(&diags)));
    } else {
        for d in &diags {
            out(format_args!("{}", d.render()));
        }
        if diags.is_empty() {
            out(format_args!("netaware-xtask lint: clean"));
        } else {
            out(format_args!("netaware-xtask lint: {} violation(s)", diags.len()));
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

//! SARIF 2.1.0 output for the lint run.
//!
//! SARIF (Static Analysis Results Interchange Format) is the exchange
//! format code-scanning UIs ingest; emitting it lets CI annotate pull
//! requests with lint findings in place. The report is built on the
//! vendored JSON shim and is byte-stable: rules appear in catalogue
//! order, results in (file, line, col, rule) order, and
//! baseline-suppressed findings are carried with an `external`
//! suppression rather than dropped, so reviewers can see the debt.

use crate::rules::RuleId;
use crate::Diagnostic;
use serde_json::Value;

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (s(k), v)).collect())
}

fn rule_descriptor(rule: RuleId) -> Value {
    obj(vec![
        ("id", s(rule.code())),
        ("shortDescription", obj(vec![("text", s(rule.summary()))])),
        (
            "defaultConfiguration",
            obj(vec![("level", s(rule.severity().sarif_level()))]),
        ),
    ])
}

fn result(d: &Diagnostic, suppressed: bool) -> Value {
    let mut region = vec![
        ("startLine", Value::U64(d.line as u64)),
        ("startColumn", Value::U64(d.col as u64)),
        ("endLine", Value::U64(d.line as u64)),
        (
            "endColumn",
            Value::U64((d.col + d.len.max(1)) as u64),
        ),
    ];
    if !d.snippet.is_empty() {
        region.push(("snippet", obj(vec![("text", s(&d.snippet))])));
    }
    let mut fields = vec![
        ("ruleId", s(d.rule)),
        ("level", s(d.severity.sarif_level())),
        ("message", obj(vec![("text", s(&d.message))])),
        (
            "locations",
            Value::Seq(vec![obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", s(&d.file))])),
                    ("region", obj(region)),
                ]),
            )])]),
        ),
    ];
    if suppressed {
        fields.push((
            "suppressions",
            Value::Seq(vec![obj(vec![
                ("kind", s("external")),
                (
                    "justification",
                    s("recorded in lint-baseline.json; burn down with --write-baseline"),
                ),
            ])]),
        ));
    }
    obj(fields)
}

/// Renders a SARIF 2.1.0 report. `active` findings become plain results;
/// `suppressed` findings (covered by the baseline) carry an `external`
/// suppression. Both lists are expected pre-sorted by (file, line, col).
pub fn report(active: &[Diagnostic], suppressed: &[Diagnostic]) -> String {
    let mut merged: Vec<(&Diagnostic, bool)> = active
        .iter()
        .map(|d| (d, false))
        .chain(suppressed.iter().map(|d| (d, true)))
        .collect();
    merged.sort_by(|(a, _), (b, _)| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    let run = obj(vec![
        (
            "tool",
            obj(vec![(
                "driver",
                obj(vec![
                    ("name", s("netaware-xtask")),
                    (
                        "rules",
                        Value::Seq(RuleId::all().into_iter().map(rule_descriptor).collect()),
                    ),
                ]),
            )]),
        ),
        (
            "results",
            Value::Seq(merged.into_iter().map(|(d, sup)| result(d, sup)).collect()),
        ),
    ]);
    let root = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        ("runs", Value::Seq(vec![run])),
    ]);
    // No floats in the tree, so printing cannot fail.
    let mut text =
        serde_json::to_string_pretty(&root).unwrap_or_else(|e| format!("{{\"error\":\"{e:?}\"}}"));
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn diag(rule: &'static str, sev: Severity, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            severity: sev,
            file: file.into(),
            line,
            col: 3,
            len: 5,
            message: format!("{rule} fired"),
            snippet: "let x = y;".into(),
        }
    }

    #[test]
    fn report_carries_schema_rules_and_results() {
        let active = vec![diag("PA01", Severity::Deny, "crates/net/src/lib.rs", 7)];
        let suppressed = vec![diag("CC01", Severity::Warn, "crates/obs/src/sink.rs", 14)];
        let text = report(&active, &suppressed);
        let root = serde_json::parse_value(&text).expect("valid JSON");
        let fields = root.as_map().expect("object");
        assert_eq!(
            serde_json::value::field(fields, "version").as_str(),
            Some("2.1.0")
        );
        let runs = serde_json::value::field(fields, "runs")
            .as_seq()
            .expect("runs");
        let run = runs[0].as_map().expect("run object");
        let results = serde_json::value::field(run, "results")
            .as_seq()
            .expect("results");
        assert_eq!(results.len(), 2);
        // Every rule is described exactly once in catalogue order.
        assert_eq!(
            text.matches("\"shortDescription\"").count(),
            crate::RuleId::all().len()
        );
        // The suppressed finding carries the external suppression marker.
        assert!(text.contains("\"suppressions\""));
        assert!(text.contains("\"external\""));
    }

    #[test]
    fn output_is_byte_stable() {
        let active = vec![
            diag("PA01", Severity::Deny, "crates/net/src/lib.rs", 7),
            diag("OB01", Severity::Deny, "crates/net/src/lib.rs", 2),
        ];
        assert_eq!(report(&active, &[]), report(&active, &[]));
    }
}

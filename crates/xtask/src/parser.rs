//! Hand-rolled recursive-descent parser: token stream → [`ast::File`].
//!
//! `syn` is unavailable offline, so the analyzer carries its own parser.
//! It is tolerant by construction: it never panics, always makes
//! progress, and degrades unparseable runs into [`ItemKind::Unknown`]
//! nodes whose token range is still scanned by the rules — a file the
//! parser cannot fully understand is over-scanned, never silently
//! skipped. The grammar subset covers what the rules need: item
//! structure with nesting (so `#[cfg(test)]` pruning and `impl Drop`
//! detection are scope-accurate), visibility and attributes (DOC01),
//! struct fields, `use` trees, and per-item code-token scan ranges that
//! the expression extractors in [`crate::ast`] work over.

use crate::ast::{Attr, Field, File, Item, ItemKind, Span, Vis};
use crate::lexer::{Tok, TokKind};

/// Parses a full token stream (comments included) into a [`File`].
pub fn parse(toks: &[Tok]) -> File {
    let mut code = Vec::new();
    let mut full_idx = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(
            t.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        ) {
            code.push(t.clone());
            full_idx.push(i);
        }
    }
    let mut p = Parser {
        full: toks,
        code: &code,
        full_idx: &full_idx,
        pos: 0,
    };
    let items = p.parse_items(false);
    File { items, code }
}

struct Parser<'a> {
    full: &'a [Tok],
    code: &'a [Tok],
    full_idx: &'a [usize],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, k: usize) -> Option<&'a Tok> {
        self.code.get(self.pos + k)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn bump(&mut self) {
        if self.pos < self.code.len() {
            self.pos += 1;
        }
    }

    fn span_at(&self, idx: usize) -> Span {
        self.code
            .get(idx)
            .map(Span::of)
            .unwrap_or(Span {
                lo: 0,
                hi: 0,
                line: 1,
                col: 1,
            })
    }

    /// Span covering code tokens `[lo, hi)`.
    fn span_range(&self, lo: usize, hi: usize) -> Span {
        let a = self.span_at(lo.min(self.code.len().saturating_sub(1)));
        let b = self.span_at(hi.saturating_sub(1).min(self.code.len().saturating_sub(1)));
        a.to(b)
    }

    /// Skips a balanced `()`/`[]`/`{}` group with the cursor on the
    /// opening delimiter.
    fn skip_group(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips a balanced generic-argument list with the cursor on `<`.
    /// `->` inside (`Fn(u32) -> u32` bounds) does not close the list.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = self.pos > 0
                    && self
                        .code
                        .get(self.pos - 1)
                        .is_some_and(|p| p.is_punct('-'));
                if !arrow {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
                continue;
            } else if t.is_punct('{') || t.is_punct(';') {
                return; // malformed; bail without consuming
            }
            self.bump();
        }
    }

    /// Advances to the first `{` or `;` at delimiter depth 0, without
    /// consuming it. Used for signature tails, where clauses, and enum
    /// headers.
    fn skip_to_body_or_semi(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
                continue;
            }
            if t.is_punct('{') || t.is_punct(';') || t.is_punct('}') {
                return;
            }
            self.bump();
        }
    }

    /// Advances past the next `;` at delimiter depth 0, stepping over
    /// balanced groups. A brace group at depth 0 (a brace-bodied
    /// initializer, or an unclassified block during recovery) ends the
    /// run after an optional trailing `;`, so recovery never swallows
    /// the items that follow it.
    fn skip_past_semi(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
                continue;
            }
            if t.is_punct('{') {
                self.skip_group();
                if self.at_punct(';') {
                    self.bump();
                }
                return;
            }
            if t.is_punct('}') {
                return; // enclosing block closed without a `;`
            }
            let semi = t.is_punct(';');
            self.bump();
            if semi {
                return;
            }
        }
    }

    /// Whether an outer doc comment (`///` / `/** */`) or nothing but
    /// attributes/plain comments precedes the code token at `code_idx`
    /// in the full stream.
    fn doc_before(&self, code_idx: usize) -> bool {
        let Some(&full_at) = self.full_idx.get(code_idx) else {
            return false;
        };
        let mut j = full_at;
        while j > 0 {
            let prev = &self.full[j - 1];
            match prev.kind {
                TokKind::DocComment => {
                    return prev.text.starts_with("///") || prev.text.starts_with("/**");
                }
                TokKind::LineComment | TokKind::BlockComment => j -= 1,
                _ => return false,
            }
        }
        false
    }

    fn parse_items(&mut self, stop_at_close: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(t) = self.peek(0) {
            if stop_at_close && t.is_punct('}') {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.bump(); // always make progress
            }
        }
        items
    }

    /// Consumes outer (`#[…]`) and inner (`#![…]`) attributes; returns
    /// the outer ones.
    fn parse_attrs(&mut self) -> Vec<Attr> {
        let mut out = Vec::new();
        while self.at_punct('#') {
            let start = self.pos;
            let inner = self.peek(1).is_some_and(|t| t.is_punct('!'));
            self.bump(); // #
            if inner {
                self.bump(); // !
            }
            if !self.at_punct('[') {
                self.pos = start;
                break;
            }
            let body_lo = self.pos + 1;
            self.skip_group();
            if !inner {
                let text = crate::ast::flatten(self.code, body_lo, self.pos.saturating_sub(1));
                out.push(Attr {
                    text,
                    span: self.span_range(start, self.pos),
                });
            }
        }
        out
    }

    fn parse_vis(&mut self) -> Vis {
        if !self.at_ident("pub") {
            return Vis::Private;
        }
        if self.peek(1).is_some_and(|t| t.is_punct('(')) {
            self.bump();
            self.skip_group();
            Vis::Restricted
        } else {
            self.bump();
            Vis::Pub
        }
    }

    fn parse_item(&mut self) -> Option<Item> {
        let start = self.pos;
        let attrs = self.parse_attrs();
        let after_attrs = self.pos;
        let vis_tok = self.pos;
        let vis = self.parse_vis();
        // Qualifiers before the defining keyword. `const` is a qualifier
        // only when a further keyword follows (`const fn`); `extern` only
        // with an ABI string (`extern "C" fn`).
        loop {
            let const_qual = self.at_ident("const")
                && self
                    .peek(1)
                    .is_some_and(|t| matches!(t.text.as_str(), "fn" | "unsafe" | "async" | "extern"));
            if self.at_ident("default")
                || self.at_ident("unsafe")
                || self.at_ident("async")
                || const_qual
            {
                self.bump();
            } else if self.at_ident("extern")
                && self.peek(1).is_some_and(|t| t.kind == TokKind::Str)
            {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        let kw = self.pos;
        let head = if vis == Vis::Pub {
            self.span_at(vis_tok)
        } else {
            self.span_at(kw)
        };
        let t = self.peek(0)?;
        let (kind, name, body, fields, children, scan_kind) = match t.text.as_str() {
            "fn" if t.kind == TokKind::Ident => self.parse_fn()?,
            "struct" | "union" if t.kind == TokKind::Ident => self.parse_struct()?,
            "enum" if t.kind == TokKind::Ident => self.parse_enum()?,
            "trait" if t.kind == TokKind::Ident => self.parse_trait()?,
            "impl" if t.kind == TokKind::Ident => self.parse_impl()?,
            "mod" if t.kind == TokKind::Ident => self.parse_mod()?,
            "use" if t.kind == TokKind::Ident => {
                self.bump();
                let tree_lo = self.pos;
                self.skip_past_semi();
                let tree =
                    crate::ast::flatten(self.code, tree_lo, self.pos.saturating_sub(1));
                (ItemKind::Use { tree }, String::new(), None, vec![], vec![], ScanKind::Whole)
            }
            "const" | "static" if t.kind == TokKind::Ident => {
                let is_const = t.text == "const";
                self.bump();
                if self.at_ident("mut") {
                    self.bump();
                }
                let name = self.ident_name();
                self.skip_past_semi();
                (
                    if is_const { ItemKind::Const } else { ItemKind::Static },
                    name,
                    None,
                    vec![],
                    vec![],
                    ScanKind::Whole,
                )
            }
            "type" if t.kind == TokKind::Ident => {
                self.bump();
                let name = self.ident_name();
                self.skip_past_semi();
                (ItemKind::TypeAlias, name, None, vec![], vec![], ScanKind::Whole)
            }
            "extern" if t.kind == TokKind::Ident => {
                // `extern crate name;` (ABI-qualified fns were consumed
                // above as qualifiers).
                self.bump();
                if self.at_ident("crate") {
                    self.bump();
                }
                let name = self.ident_name();
                self.skip_past_semi();
                (ItemKind::ExternCrate, name, None, vec![], vec![], ScanKind::Whole)
            }
            "macro_rules" if t.kind == TokKind::Ident => {
                self.bump();
                if self.at_punct('!') {
                    self.bump();
                }
                let name = self.ident_name();
                if self
                    .peek(0)
                    .is_some_and(|t| t.is_punct('{') || t.is_punct('(') || t.is_punct('['))
                {
                    self.skip_group();
                }
                if self.at_punct(';') {
                    self.bump();
                }
                (ItemKind::MacroDef, name, None, vec![], vec![], ScanKind::Whole)
            }
            _ if t.kind == TokKind::Ident && self.peek(1).is_some_and(|n| n.is_punct('!')) => {
                let mac = t.text.clone();
                self.bump();
                self.bump();
                if self
                    .peek(0)
                    .is_some_and(|t| t.is_punct('{') || t.is_punct('(') || t.is_punct('['))
                {
                    self.skip_group();
                }
                if self.at_punct(';') {
                    self.bump();
                }
                (
                    ItemKind::MacroCall { mac: mac.clone() },
                    mac,
                    None,
                    vec![],
                    vec![],
                    ScanKind::Whole,
                )
            }
            _ => {
                // Recovery: consume to the next statement boundary and
                // keep the run scannable.
                self.skip_past_semi();
                if self.pos == start {
                    return None;
                }
                (ItemKind::Unknown, String::new(), None, vec![], vec![], ScanKind::Whole)
            }
        };
        let end = self.pos.max(start + 1);
        let span = self.span_range(start, end);
        let end_span = self.span_range(end.saturating_sub(1), end);
        let has_doc = attrs.iter().any(Attr::is_doc)
            || self.doc_before(start)
            || (after_attrs > start && self.doc_before(after_attrs));
        let cfg_test = attrs.iter().any(Attr::is_test_gate);
        let scan = match scan_kind {
            ScanKind::Whole => vec![(start, end)],
            ScanKind::Header(body_lo) => vec![(start, body_lo)],
        };
        Some(Item {
            kind,
            name,
            vis,
            attrs,
            cfg_test,
            has_doc,
            span,
            head,
            lines: (span.line, end_span_line(end_span, span)),
            scan,
            body,
            fields,
            children,
        })
    }

    /// Consumes and returns the current identifier, or `""`.
    fn ident_name(&mut self) -> String {
        match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let name = t.text.clone();
                self.bump();
                name
            }
            _ => String::new(),
        }
    }

    #[allow(clippy::type_complexity)]
    fn parse_fn(&mut self) -> Option<ParsedItem> {
        self.bump(); // fn
        let name = self.ident_name();
        if self.at_punct('<') {
            self.skip_angles();
        }
        if self.at_punct('(') {
            self.skip_group();
        }
        self.skip_to_body_or_semi();
        let mut body = None;
        if self.at_punct('{') {
            let open = self.pos;
            self.skip_group();
            body = Some((open + 1, self.pos.saturating_sub(1)));
        } else if self.at_punct(';') {
            self.bump();
        }
        Some((ItemKind::Fn, name, body, vec![], vec![], ScanKind::Whole))
    }

    #[allow(clippy::type_complexity)]
    fn parse_struct(&mut self) -> Option<ParsedItem> {
        let is_union = self.at_ident("union");
        self.bump(); // struct | union
        let name = self.ident_name();
        if self.at_punct('<') {
            self.skip_angles();
        }
        // Tuple struct body, if any, then where clause.
        if self.at_punct('(') {
            self.skip_group();
        }
        self.skip_to_body_or_semi();
        let mut fields = Vec::new();
        if self.at_punct('{') {
            self.bump();
            while let Some(t) = self.peek(0) {
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                let f_start = self.pos;
                let f_attrs = self.parse_attrs();
                let f_after = self.pos;
                let f_vis = self.parse_vis();
                let Some(nt) = self.peek(0) else { break };
                if nt.kind != TokKind::Ident {
                    self.bump();
                    continue;
                }
                let f_name = nt.text.clone();
                let name_idx = self.pos;
                self.bump();
                if !self.at_punct(':') {
                    // Not a field shape; resynchronize at the next comma.
                    self.field_resync();
                    continue;
                }
                self.bump(); // :
                let ty_lo = self.pos;
                self.field_resync();
                let ty_hi = if self.pos > ty_lo && self.code.get(self.pos - 1).is_some_and(|t| t.is_punct(',')) {
                    self.pos - 1
                } else {
                    self.pos
                };
                let has_doc = f_attrs.iter().any(Attr::is_doc)
                    || self.doc_before(f_start)
                    || (f_after > f_start && self.doc_before(f_after));
                fields.push(Field {
                    name: f_name,
                    vis: f_vis,
                    has_doc,
                    span: self.span_at(name_idx),
                    ty: crate::ast::flatten(self.code, ty_lo, ty_hi),
                });
            }
        } else if self.at_punct(';') {
            self.bump();
        }
        Some((
            if is_union {
                ItemKind::Union
            } else {
                ItemKind::Struct
            },
            name,
            None,
            fields,
            vec![],
            ScanKind::Whole,
        ))
    }

    /// Advances past the next `,` at delimiter depth 0 (angle brackets
    /// tracked), or to the closing `}` of the field block.
    fn field_resync(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                self.skip_group();
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                let arrow = self.pos > 0
                    && self
                        .code
                        .get(self.pos - 1)
                        .is_some_and(|p| p.is_punct('-'));
                if !arrow {
                    angle -= 1;
                }
            } else if t.is_punct('}') && angle <= 0 {
                return;
            } else if t.is_punct(',') && angle <= 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    #[allow(clippy::type_complexity)]
    fn parse_enum(&mut self) -> Option<ParsedItem> {
        self.bump(); // enum
        let name = self.ident_name();
        if self.at_punct('<') {
            self.skip_angles();
        }
        self.skip_to_body_or_semi();
        if self.at_punct('{') {
            self.skip_group();
        } else if self.at_punct(';') {
            self.bump();
        }
        Some((ItemKind::Enum, name, None, vec![], vec![], ScanKind::Whole))
    }

    #[allow(clippy::type_complexity)]
    fn parse_trait(&mut self) -> Option<ParsedItem> {
        self.bump(); // trait
        let name = self.ident_name();
        if self.at_punct('<') {
            self.skip_angles();
        }
        self.skip_to_body_or_semi();
        let mut children = Vec::new();
        let mut body_lo = self.pos;
        if self.at_punct('{') {
            self.bump();
            body_lo = self.pos;
            children = self.parse_items(true);
            if self.at_punct('}') {
                self.bump();
            }
        } else if self.at_punct(';') {
            self.bump();
        }
        Some((
            ItemKind::Trait,
            name,
            None,
            vec![],
            children,
            ScanKind::Header(body_lo),
        ))
    }

    #[allow(clippy::type_complexity)]
    fn parse_impl(&mut self) -> Option<ParsedItem> {
        self.bump(); // impl
        if self.at_punct('<') {
            self.skip_angles();
        }
        // Header: `[!] [Trait for] Type [where …]` up to the body.
        let header_lo = self.pos;
        self.skip_to_body_or_semi();
        let header_hi = self.pos;
        let mut trait_name = None;
        let mut for_at = None;
        let mut angle = 0i32;
        for i in header_lo..header_hi {
            let Some(t) = self.code.get(i) else { break };
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle <= 0 && t.is_ident("for") {
                for_at = Some(i);
                break;
            }
        }
        if let Some(f) = for_at {
            let mut angle = 0i32;
            for i in header_lo..f {
                let Some(t) = self.code.get(i) else { break };
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if angle <= 0 && t.kind == TokKind::Ident {
                    trait_name = Some(t.text.clone());
                }
            }
        }
        let mut children = Vec::new();
        let mut body_lo = self.pos;
        if self.at_punct('{') {
            self.bump();
            body_lo = self.pos;
            children = self.parse_items(true);
            if self.at_punct('}') {
                self.bump();
            }
        } else if self.at_punct(';') {
            self.bump();
        }
        Some((
            ItemKind::Impl { trait_name },
            String::new(),
            None,
            vec![],
            children,
            ScanKind::Header(body_lo),
        ))
    }

    #[allow(clippy::type_complexity)]
    fn parse_mod(&mut self) -> Option<ParsedItem> {
        self.bump(); // mod
        let name = self.ident_name();
        if self.at_punct(';') {
            self.bump();
            return Some((
                ItemKind::Mod { inline: false },
                name,
                None,
                vec![],
                vec![],
                ScanKind::Whole,
            ));
        }
        let mut children = Vec::new();
        let mut body_lo = self.pos;
        if self.at_punct('{') {
            self.bump();
            body_lo = self.pos;
            children = self.parse_items(true);
            if self.at_punct('}') {
                self.bump();
            }
        }
        Some((
            ItemKind::Mod { inline: true },
            name,
            None,
            vec![],
            children,
            ScanKind::Header(body_lo),
        ))
    }
}

/// How an item's scan ranges are derived.
enum ScanKind {
    /// Scan the whole item token range (leaf items).
    Whole,
    /// Scan only up to the body opening (containers whose children own
    /// their own ranges).
    Header(usize),
}

type ParsedItem = (
    ItemKind,
    String,
    Option<(usize, usize)>,
    Vec<Field>,
    Vec<Item>,
    ScanKind,
);

fn end_span_line(end_span: Span, span: Span) -> usize {
    // The span of the last token starts on the item's last line (tokens
    // never span lines except comments/strings, which close the item
    // only in degenerate cases).
    end_span.line.max(span.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src))
    }

    fn kinds(items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|i| format!("{:?}", std::mem::discriminant(&i.kind)))
            .collect()
    }

    #[test]
    fn items_nest() {
        let f = parse_src(
            "pub mod outer {\n    pub fn f() {}\n    mod inner { pub struct S { pub x: u32 } }\n}\n",
        );
        assert_eq!(f.items.len(), 1);
        let outer = &f.items[0];
        assert!(matches!(outer.kind, ItemKind::Mod { inline: true }));
        assert_eq!(outer.children.len(), 2);
        let inner = &outer.children[1];
        assert_eq!(inner.children.len(), 1);
        assert_eq!(inner.children[0].fields.len(), 1);
        assert_eq!(inner.children[0].fields[0].name, "x");
    }

    #[test]
    fn impl_trait_names_are_captured() {
        let f = parse_src(
            "impl Drop for Guard { fn drop(&mut self) {} }\nimpl From<u32> for Guard { fn from(x: u32) -> Self { Guard } }\nimpl Guard { fn plain(&self) {} }\n",
        );
        let names: Vec<Option<&str>> = f
            .items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Impl { trait_name } => trait_name.as_deref(),
                _ => None,
            })
            .collect();
        assert_eq!(names, [Some("Drop"), Some("From"), None]);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let f = parse_src(
            "#[cfg(test)]\nmod tests { fn t() {} }\n#[test]\nfn unit() {}\nfn real() {}\n",
        );
        assert_eq!(f.items.len(), 3, "{:?}", kinds(&f.items));
        assert!(f.items[0].cfg_test);
        assert!(f.items[1].cfg_test);
        assert!(!f.items[2].cfg_test);
    }

    #[test]
    fn docs_are_detected_in_both_orders() {
        let f = parse_src(
            "/// Documented.\npub fn a() {}\n\n/// Doc first.\n#[derive(Debug)]\npub struct B;\n\n#[derive(Debug)]\n/// Doc after attr.\npub struct C;\n\npub fn naked() {}\n",
        );
        let docs: Vec<bool> = f.items.iter().map(|i| i.has_doc).collect();
        assert_eq!(docs, [true, true, true, false]);
    }

    #[test]
    fn fn_bodies_and_signatures_are_scannable() {
        let f = parse_src("pub fn f(m: &HashMap<u32, u32>) -> u32 {\n    m.len() as u32\n}\n");
        let item = &f.items[0];
        assert!(matches!(item.kind, ItemKind::Fn));
        let body = item.body.expect("body range");
        let body_text = crate::ast::flatten(&f.code, body.0, body.1);
        assert!(body_text.contains("m.len()"));
        // The signature is inside the scan range even though the body
        // starts later.
        let (lo, hi) = item.scan[0];
        assert!(crate::ast::flatten(&f.code, lo, hi).contains("HashMap"));
    }

    #[test]
    fn use_trees_are_flattened() {
        let f = parse_src("use std::sync::{Arc, Mutex};\n");
        match &f.items[0].kind {
            ItemKind::Use { tree } => assert_eq!(tree, "std::sync::{Arc,Mutex}"),
            k => panic!("expected use, got {k:?}"),
        }
    }

    #[test]
    fn visibility_classes() {
        let f = parse_src("pub fn a() {}\npub(crate) fn b() {}\nfn c() {}\n");
        let vis: Vec<Vis> = f.items.iter().map(|i| i.vis).collect();
        assert_eq!(vis, [Vis::Pub, Vis::Restricted, Vis::Private]);
    }

    #[test]
    fn out_of_line_mod_is_not_inline() {
        let f = parse_src("pub mod x;\npub mod y { }\n");
        assert!(matches!(f.items[0].kind, ItemKind::Mod { inline: false }));
        assert!(matches!(f.items[1].kind, ItemKind::Mod { inline: true }));
    }

    #[test]
    fn generic_fn_with_fn_bound_parses() {
        let f = parse_src(
            "pub fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }\npub fn after() {}\n",
        );
        assert_eq!(f.items.len(), 2, "{:?}", kinds(&f.items));
        assert_eq!(f.items[1].name, "after");
    }

    #[test]
    fn const_and_static_and_type_items() {
        let f = parse_src(
            "pub const N: usize = 4;\npub static S: &str = \"x\";\npub type Pair = (u32, u32);\n",
        );
        assert!(matches!(f.items[0].kind, ItemKind::Const));
        assert!(matches!(f.items[1].kind, ItemKind::Static));
        assert!(matches!(f.items[2].kind, ItemKind::TypeAlias));
        assert_eq!(f.items[0].name, "N");
    }

    #[test]
    fn macro_items_parse() {
        let f = parse_src("macro_rules! ev { () => {}; }\nthread_local! { static X: u32 = 0; }\n");
        assert!(matches!(f.items[0].kind, ItemKind::MacroDef));
        assert!(matches!(f.items[1].kind, ItemKind::MacroCall { .. }));
    }

    #[test]
    fn unparseable_runs_become_unknown_but_progress() {
        let f = parse_src("???; pub fn ok() {}\n");
        assert!(f.items.iter().any(|i| i.name == "ok"));
    }

    #[test]
    fn item_line_ranges_cover_attrs_and_body() {
        let src = "#[derive(Debug)]\npub struct S {\n    pub x: u32,\n}\n";
        let f = parse_src(src);
        assert_eq!(f.items[0].lines, (1, 4));
    }

    #[test]
    fn trait_children_include_default_methods() {
        let f = parse_src(
            "pub trait T {\n    fn sig(&self);\n    fn with_default(&self) -> u32 { 1 }\n}\n",
        );
        assert_eq!(f.items[0].children.len(), 2);
        assert!(f.items[0].children[1].body.is_some());
    }
}

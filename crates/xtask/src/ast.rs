//! A lightweight Rust syntax tree for the determinism analyzer.
//!
//! [`crate::parser`] lifts the lexer's token stream into this tree:
//! items (`fn`/`impl`/`trait`/`mod`/`struct`/… with nesting), attributes,
//! struct fields, and per-item *scan ranges* — the code-token spans of
//! signatures, bodies, and initializers. The tree is deliberately
//! shallower than `syn`'s: rules need item structure (what is inside a
//! `#[cfg(test)]` module, what is inside an `impl Drop`), byte spans, and
//! expression-level *shapes* — method-call chains, path mentions, macro
//! invocations, `let` bindings — not a full expression grammar. Those
//! shapes are extracted on demand from scan ranges by the functions at
//! the bottom of this module.

use crate::lexer::{Tok, TokKind};

/// A byte + line/column span in one source file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: usize,
    /// Byte offset one past the last character.
    pub hi: usize,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
}

impl Span {
    /// The span of a single token.
    pub fn of(t: &Tok) -> Span {
        Span {
            lo: t.pos,
            hi: t.pos + t.len,
            line: t.line,
            col: t.col,
        }
    }

    /// The union of two spans (start of `self` to end of `other`).
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo,
            hi: other.hi.max(self.hi),
            line: self.line,
            col: self.col,
        }
    }
}

/// An outer attribute (`#[…]`) or inner attribute (`#![…]`).
#[derive(Clone, Debug)]
pub struct Attr {
    /// The attribute's code tokens flattened to text, e.g. `cfg(test)`.
    pub text: String,
    /// Source span of the whole attribute.
    pub span: Span,
}

impl Attr {
    /// Whether the attribute gates the item to test builds
    /// (`#[cfg(test)]`, `#[cfg(any(test, …))]`) or marks a test
    /// (`#[test]`).
    pub fn is_test_gate(&self) -> bool {
        self.text == "test"
            || self.text.starts_with("cfg(test")
            || self.text.starts_with("cfg(any(test")
            || self.text.starts_with("cfg(all(test")
    }

    /// Whether this is a `#[doc = …]` attribute.
    pub fn is_doc(&self) -> bool {
        self.text.starts_with("doc=") || self.text.starts_with("doc(")
    }
}

/// Item visibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// No `pub`.
    Private,
    /// Bare `pub` — public API.
    Pub,
    /// `pub(crate)`, `pub(super)`, … — not public API.
    Restricted,
}

/// What kind of item a node is.
#[derive(Clone, Debug)]
pub enum ItemKind {
    /// `fn name(…) { … }` (free, associated, or trait-default).
    Fn,
    /// `struct name { … }` / tuple / unit struct.
    Struct,
    /// `enum name { … }`.
    Enum,
    /// `union name { … }`.
    Union,
    /// `trait name { … }` — children are the associated items.
    Trait,
    /// `impl [Trait for] Type { … }` — children are the associated items.
    Impl {
        /// Last segment of the trait path in `impl Trait for Type`.
        trait_name: Option<String>,
    },
    /// `mod name;` or `mod name { … }` — children for the inline form.
    Mod {
        /// Whether the module body is inline (`{ … }` rather than `;`).
        inline: bool,
    },
    /// `use path::to::{thing, other};`
    Use {
        /// The use tree flattened to text, e.g. `std::sync::{Arc,Mutex}`.
        tree: String,
    },
    /// `const NAME: T = …;`
    Const,
    /// `static NAME: T = …;`
    Static,
    /// `type Name = …;`
    TypeAlias,
    /// `extern crate name;`
    ExternCrate,
    /// `macro_rules! name { … }`
    MacroDef,
    /// A top-level macro invocation, e.g. `thread_local! { … }`.
    MacroCall {
        /// The macro name.
        mac: String,
    },
    /// Recovery node for token runs the parser could not classify.
    Unknown,
}

/// A struct/union field.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field visibility.
    pub vis: Vis,
    /// Whether a doc comment or `#[doc]` attribute is attached.
    pub has_doc: bool,
    /// Span of the field name.
    pub span: Span,
    /// The field's type flattened to text, e.g. `BTreeMap<String,u64>`.
    pub ty: String,
}

/// One item in the tree.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind, with kind-specific payload.
    pub kind: ItemKind,
    /// Item name (`""` for `impl`, `use`, and recovery nodes).
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// Whether the item is gated to test builds (its own attributes only;
    /// ancestors are handled by the tree walk).
    pub cfg_test: bool,
    /// Whether an outer doc comment or `#[doc]` attribute is attached.
    pub has_doc: bool,
    /// Span of the whole item, attributes included.
    pub span: Span,
    /// Span of the anchor token for diagnostics (`pub` when present,
    /// otherwise the defining keyword).
    pub head: Span,
    /// First and last 1-based source line of the item, attributes
    /// included — the range an item-level allow directive covers.
    pub lines: (usize, usize),
    /// Code-token ranges (indices into [`File::code`]) that expression
    /// and path rules scan: signatures, bodies, initializers, use trees.
    pub scan: Vec<(usize, usize)>,
    /// Code-token range of the function body, when [`ItemKind::Fn`] and
    /// the body is present (subset of `scan`).
    pub body: Option<(usize, usize)>,
    /// Struct/union fields.
    pub fields: Vec<Field>,
    /// Nested items (`mod`/`impl`/`trait` members).
    pub children: Vec<Item>,
}

/// A parsed source file: the item tree plus the comment-stripped code
/// token stream all scan ranges index into.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items.
    pub items: Vec<Item>,
    /// Code tokens (comments stripped), in source order.
    pub code: Vec<Tok>,
}

impl File {
    /// Walks every item depth-first, calling `f` with the item and the
    /// stack of its ancestors (outermost first).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Item, &[&'a Item])) {
        fn go<'a>(
            items: &'a [Item],
            stack: &mut Vec<&'a Item>,
            f: &mut impl FnMut(&'a Item, &[&'a Item]),
        ) {
            for item in items {
                f(item, stack);
                stack.push(item);
                go(&item.children, stack, f);
                stack.pop();
            }
        }
        go(&self.items, &mut Vec::new(), f)
    }
}

// ----------------------------------------------------------------------
// Expression shapes, extracted from scan ranges on demand.
// ----------------------------------------------------------------------

/// A maximal `::`-joined identifier path, e.g. `std::thread::spawn`.
#[derive(Clone, Debug)]
pub struct PathMention {
    /// Path segments in order.
    pub segs: Vec<String>,
    /// Code-token index of each segment, parallel to `segs`.
    pub seg_idx: Vec<usize>,
}

impl PathMention {
    /// Whether the path ends with the given segment sequence
    /// (`ends_with(&["Ordering","Relaxed"])` matches
    /// `std::sync::atomic::Ordering::Relaxed`).
    pub fn ends_with(&self, tail: &[&str]) -> bool {
        self.segs.len() >= tail.len()
            && self.segs[self.segs.len() - tail.len()..]
                .iter()
                .zip(tail)
                .all(|(a, b)| a == b)
    }

    /// Whether the path contains the adjacent segment pair `a::b`.
    pub fn has_pair(&self, a: &str, b: &str) -> bool {
        self.segs.windows(2).any(|w| w[0] == a && w[1] == b)
    }
}

/// One `.name(…)` link in a method-call chain.
#[derive(Clone, Debug)]
pub struct MethodCall {
    /// Method name.
    pub name: String,
    /// Code-token index of the method name.
    pub idx: usize,
}

/// A method-call chain: `recv.m1(…).m2(…)?….mN(…)`.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Code-token index of the receiver token directly before the first
    /// `.` (an identifier, `)`, `]`, or literal).
    pub recv: usize,
    /// Receiver root: the identifier the receiver expression starts from
    /// (`peers` in `self.peers.iter()…`, `m` in `m.keys()…`), when it is
    /// a simple path expression.
    pub root: Option<String>,
    /// The chain's calls, in order.
    pub calls: Vec<MethodCall>,
    /// When the whole chain is an argument of an enclosing call, the
    /// name of that call's function/method.
    pub arg_of: Option<String>,
}

impl Chain {
    /// Whether any link is named `name`.
    pub fn has_call(&self, name: &str) -> bool {
        self.calls.iter().any(|c| c.name == name)
    }

    /// Index (within `calls`) of the first link named `name`.
    pub fn call_pos(&self, name: &str) -> Option<usize> {
        self.calls.iter().position(|c| c.name == name)
    }
}

/// A macro invocation `name!(…)` / `name!{…}` / `name![…]`.
#[derive(Clone, Debug)]
pub struct MacroBang {
    /// Macro name.
    pub name: String,
    /// Code-token index of the name.
    pub idx: usize,
}

/// A `let` binding with whatever type evidence is syntactically visible.
#[derive(Clone, Debug)]
pub struct LetBinding {
    /// Bound name (simple-identifier patterns only).
    pub name: String,
    /// Code-token index of the name.
    pub idx: usize,
    /// Declared type flattened to text, when annotated.
    pub ty: Option<String>,
    /// First path of the initializer expression flattened to text
    /// (`HashMap::new` in `let m = HashMap::new();`).
    pub init_path: Option<String>,
}

fn is_open(t: &Tok) -> bool {
    t.is_punct('(') || t.is_punct('[') || t.is_punct('{')
}

fn is_close(t: &Tok) -> bool {
    t.is_punct(')') || t.is_punct(']') || t.is_punct('}')
}

/// Extracts every maximal identifier path in `code[lo..hi]`.
pub fn paths(code: &[Tok], lo: usize, hi: usize) -> Vec<PathMention> {
    let hi = hi.min(code.len());
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        if code[i].kind == TokKind::Ident {
            // Skip idents that are path *continuations* (handled when the
            // head was seen) — detected by a preceding `::`.
            let continues = i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':');
            if !continues {
                let mut segs = vec![code[i].text.clone()];
                let mut seg_idx = vec![i];
                let mut j = i;
                while j + 3 < hi
                    && code[j + 1].is_punct(':')
                    && code[j + 2].is_punct(':')
                    && code[j + 3].kind == TokKind::Ident
                {
                    j += 3;
                    segs.push(code[j].text.clone());
                    seg_idx.push(j);
                }
                i = j;
                out.push(PathMention { segs, seg_idx });
            }
        }
        i += 1;
    }
    out
}

/// Extracts every macro invocation in `code[lo..hi]`.
pub fn macro_bangs(code: &[Tok], lo: usize, hi: usize) -> Vec<MacroBang> {
    let hi = hi.min(code.len());
    let mut out = Vec::new();
    for i in lo..hi {
        if code[i].kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && code
                .get(i + 2)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('{') || t.is_punct('['))
        {
            out.push(MacroBang {
                name: code[i].text.clone(),
                idx: i,
            });
        }
    }
    out
}

/// Skips a balanced delimiter group starting at `i` (which must hold an
/// opening delimiter); returns the index one past the matching closer,
/// or `hi` when unbalanced.
fn skip_group(code: &[Tok], i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        if is_open(&code[j]) {
            depth += 1;
        } else if is_close(&code[j]) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    hi
}

/// Extracts every method-call chain in `code[lo..hi]`.
///
/// A chain starts at the first `.name(…)` (or `.name::<…>(…)`) whose
/// receiver is the preceding primary expression, and follows further
/// `.name(…)` links across `?` operators. `.await` and field accesses
/// are stepped over without becoming links.
pub fn chains(code: &[Tok], lo: usize, hi: usize) -> Vec<Chain> {
    let hi = hi.min(code.len());
    let mut out: Vec<Chain> = Vec::new();
    let mut consumed = vec![false; hi.saturating_sub(lo)];
    let mut i = lo;
    while i < hi {
        let local = i - lo;
        if consumed[local] || !code[i].is_punct('.') {
            i += 1;
            continue;
        }
        let Some((name_idx, after)) = method_link(code, i, hi) else {
            i += 1;
            continue;
        };
        // Receiver is the token before the `.`; walk further back through
        // `.field` / `::seg` / `)`→matching-`(` to find the root ident.
        let recv = if i > lo { i - 1 } else { i };
        let root = receiver_root(code, lo, i);
        let arg_of = enclosing_call(code, lo, i);
        let mut calls = vec![MethodCall {
            name: code[name_idx].text.clone(),
            idx: name_idx,
        }];
        // Mark the link's span consumed so inner `.m(` patterns inside
        // its argument list start their own chains, but the outer walk
        // does not restart on this link.
        let mut j = after;
        loop {
            // Step over `?` and field accesses / `.await` between links.
            let mut k = j;
            while k < hi && code[k].is_punct('?') {
                k += 1;
            }
            if k < hi && code[k].is_punct('.') {
                if let Some((nidx, nafter)) = method_link(code, k, hi) {
                    calls.push(MethodCall {
                        name: code[nidx].text.clone(),
                        idx: nidx,
                    });
                    if k - lo < consumed.len() {
                        consumed[k - lo] = true;
                    }
                    j = nafter;
                    continue;
                }
                // `.field` or `.await`: step over and keep following.
                if k + 1 < hi && code[k + 1].kind == TokKind::Ident {
                    if k - lo < consumed.len() {
                        consumed[k - lo] = true;
                    }
                    j = k + 2;
                    continue;
                }
            }
            break;
        }
        out.push(Chain {
            recv,
            root,
            calls,
            arg_of,
        });
        i += 1;
    }
    out
}

/// At a `.`: matches `.name(…)` or `.name::<…>(…)`; returns the name's
/// index and the index one past the call's closing `)`.
fn method_link(code: &[Tok], dot: usize, hi: usize) -> Option<(usize, usize)> {
    let name = dot + 1;
    if name >= hi || code[name].kind != TokKind::Ident {
        return None;
    }
    let mut open = name + 1;
    // Turbofish: `::< … >` before the argument list.
    if code.get(open).is_some_and(|t| t.is_punct(':'))
        && code.get(open + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(open + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i32;
        let mut j = open + 2;
        while j < hi {
            if code[j].is_punct('<') {
                depth += 1;
            } else if code[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        open = j + 1;
    }
    if open < hi && code[open].is_punct('(') {
        Some((name, skip_group(code, open, hi)))
    } else {
        None
    }
}

/// The identifier directly before the chain's first `.` — `peers` in
/// `self.peers.iter()…`, `m` in `m.keys()…` — or `None` when the
/// receiver is a call or index result.
fn receiver_root(code: &[Tok], lo: usize, dot: usize) -> Option<String> {
    let i = dot.checked_sub(1)?;
    if i < lo {
        return None;
    }
    let t = &code[i];
    (t.kind == TokKind::Ident).then(|| t.text.clone())
}

/// When the expression containing position `at` sits inside a call's
/// argument list, returns the callee name (`run_pass` for
/// `run_pass(t.records(), …)`).
fn enclosing_call(code: &[Tok], lo: usize, at: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut i = at;
    while i > lo {
        i -= 1;
        let t = &code[i];
        if is_close(t) {
            depth += 1;
        } else if is_open(t) {
            if depth == 0 {
                if t.is_punct('(') && i > lo && code[i - 1].kind == TokKind::Ident {
                    return Some(code[i - 1].text.clone());
                }
                return None;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('=')) {
            return None;
        }
    }
    None
}

/// Extracts `let` bindings (simple-identifier patterns) in
/// `code[lo..hi]`, with declared-type and initializer-path evidence.
pub fn lets(code: &[Tok], lo: usize, hi: usize) -> Vec<LetBinding> {
    let hi = hi.min(code.len());
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        if !code[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < hi && code[j].is_ident("mut") {
            j += 1;
        }
        if j >= hi || code[j].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = code[j].text.clone();
        let idx = j;
        let mut ty = None;
        let mut k = j + 1;
        if k < hi && code[k].is_punct(':') && !code.get(k + 1).is_some_and(|t| t.is_punct(':')) {
            // Annotated type: flatten tokens to `=`, `;`, or unbalanced
            // close at depth 0 (angle brackets tracked separately).
            let mut angle = 0i32;
            let mut depth = 0i32;
            let start = k + 1;
            k = start;
            while k < hi {
                let t = &code[k];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if is_open(t) {
                    depth += 1;
                } else if is_close(t) {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && angle <= 0 && (t.is_punct('=') || t.is_punct(';')) {
                    break;
                }
                k += 1;
            }
            ty = Some(flatten(code, start, k));
        }
        // Initializer head path, if `= path…` follows.
        let mut init_path = None;
        if k < hi && code[k].is_punct('=') && code.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let ps = paths(code, k + 1, hi);
            if let Some(p) = ps.first() {
                if p.seg_idx.first() == Some(&(k + 1)) {
                    init_path = Some(p.segs.join("::"));
                }
            }
        }
        out.push(LetBinding {
            name,
            idx,
            ty,
            init_path,
        });
        i = k.max(i + 1);
    }
    out
}

/// Flattens `code[lo..hi]` to compact text (no spaces).
pub fn flatten(code: &[Tok], lo: usize, hi: usize) -> String {
    let hi = hi.min(code.len());
    let mut out = String::new();
    for t in code.get(lo..hi).unwrap_or(&[]) {
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Tok> {
        lex(src)
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
                )
            })
            .collect()
    }

    #[test]
    fn paths_are_maximal() {
        let c = code("std::thread::spawn(|| ());");
        let ps = paths(&c, 0, c.len());
        assert!(ps.iter().any(|p| p.segs == ["std", "thread", "spawn"]));
        assert!(!ps.iter().any(|p| p.segs == ["thread", "spawn"]));
    }

    #[test]
    fn path_tail_matching() {
        let c = code("std::sync::atomic::Ordering::Relaxed");
        let ps = paths(&c, 0, c.len());
        assert!(ps[0].ends_with(&["Ordering", "Relaxed"]));
        assert!(ps[0].has_pair("Ordering", "Relaxed"));
        assert!(!ps[0].ends_with(&["Ordering", "SeqCst"]));
    }

    #[test]
    fn chains_follow_links_and_roots() {
        let c = code("let y = self.peers.iter().map(|p| p.x).collect::<Vec<_>>();");
        let cs = chains(&c, 0, c.len());
        assert_eq!(cs.len(), 1, "{cs:?}");
        let names: Vec<&str> = cs[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["iter", "map", "collect"]);
        assert_eq!(cs[0].root.as_deref(), Some("peers"));
    }

    #[test]
    fn chain_inside_call_records_callee() {
        let c = code("run_pass(t.records(), acc);");
        let cs = chains(&c, 0, c.len());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].arg_of.as_deref(), Some("run_pass"));
        assert_eq!(cs[0].calls.len(), 1);
    }

    #[test]
    fn chain_follows_question_mark() {
        let c = code("x.parse()?.checked_add(1)?;");
        let cs = chains(&c, 0, c.len());
        assert_eq!(cs.len(), 1);
        assert!(cs[0].has_call("parse") && cs[0].has_call("checked_add"));
    }

    #[test]
    fn inner_chains_are_separate() {
        let c = code("xs.iter().map(|x| x.weight.abs().sqrt()).sum::<f64>();");
        let cs = chains(&c, 0, c.len());
        assert_eq!(cs.len(), 2, "{cs:?}");
        assert!(cs.iter().any(|c| c.has_call("sum")));
        assert!(cs.iter().any(|c| c.has_call("sqrt") && !c.has_call("sum")));
    }

    #[test]
    fn macro_bangs_found() {
        let c = code("println!(\"x\"); vec![1]; write!(buf, \"y\");");
        let ms = macro_bangs(&c, 0, c.len());
        let names: Vec<&str> = ms.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["println", "vec", "write"]);
    }

    #[test]
    fn lets_capture_types_and_init_paths() {
        let c = code("let mut m: HashMap<u32, u32> = HashMap::new(); let n = BTreeMap::new();");
        let ls = lets(&c, 0, c.len());
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0].name, "m");
        assert_eq!(ls[0].ty.as_deref(), Some("HashMap<u32,u32>"));
        assert_eq!(ls[0].init_path.as_deref(), Some("HashMap::new"));
        assert_eq!(ls[1].name, "n");
        assert_eq!(ls[1].init_path.as_deref(), Some("BTreeMap::new"));
    }
}

//! The lint catalogue: rule IDs, severities, scopes, and per-rule checks
//! over the syntax tree.
//!
//! Every rule has an ID (used in diagnostics and in
//! `// netaware-lint: allow(<ID>)` escape hatches), a severity (`deny`
//! rules gate CI; `warn` rules land baseline-first), a scope (which
//! crates it patrols), and a rationale tied to the determinism &
//! reproducibility contract in DESIGN.md. Checks run over the
//! [`crate::ast`] tree built by [`crate::parser`], so string literals,
//! comments, and `#[cfg(test)]` items at any nesting depth can never
//! fire a rule, and context-sensitive rules (draws inside `Drop` impls,
//! sanctioned concurrency modules) see real item structure.

use crate::ast::{self, Chain, File, Item, ItemKind, Span, Vis};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// A lint rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No wall-clock time or ambient entropy in deterministic crates.
    Nd01,
    /// No order-dependent hash collections in simulation/report paths.
    Nd02,
    /// No unordered parallel float reductions in analysis.
    Nd03,
    /// No full-trace materialisation in analysis hot paths.
    Nd04,
    /// No hash-ordered iteration flowing into sinks or reductions.
    Nd05,
    /// No bare thread/lock primitives outside the sanctioned parallel core.
    Cc01,
    /// No relaxed atomic orderings outside audited commutative metrics.
    Cc02,
    /// Every RNG draw must reach a named stream; no draws in `Drop`.
    Rs01,
    /// No `unwrap`/`expect`/`panic!` in non-test library code.
    Pa01,
    /// Public items must be documented.
    Doc01,
    /// No `println!`/`eprintln!`/`dbg!` in library crates.
    Ob01,
    /// No raw `Event` matching or `Scheduler` access outside the dispatcher.
    Bh01,
    /// No `std::time` clock reads outside the obs `Clock` abstraction.
    Ob02,
}

/// How severely a rule's findings are treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the lint run (exit code 1) when unsuppressed.
    Deny,
    /// Reported, but only fails under `--deny-warnings`. New rules land
    /// at this level with pre-existing findings captured in
    /// `lint-baseline.json`.
    Warn,
}

impl Severity {
    /// Lower-case label (`"deny"` / `"warn"`), as printed and serialized.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }

    /// SARIF 2.1.0 result level.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        }
    }
}

impl RuleId {
    /// The stable textual ID, as written in allow directives.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Nd01 => "ND01",
            RuleId::Nd02 => "ND02",
            RuleId::Nd03 => "ND03",
            RuleId::Nd04 => "ND04",
            RuleId::Nd05 => "ND05",
            RuleId::Cc01 => "CC01",
            RuleId::Cc02 => "CC02",
            RuleId::Rs01 => "RS01",
            RuleId::Pa01 => "PA01",
            RuleId::Doc01 => "DOC01",
            RuleId::Ob01 => "OB01",
            RuleId::Bh01 => "BH01",
            RuleId::Ob02 => "OB02",
        }
    }

    /// Parses a textual ID (`"ND01"` → `Nd01`).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::all().into_iter().find(|r| r.code() == s)
    }

    /// All rules, in catalogue order.
    pub fn all() -> [RuleId; 13] {
        [
            RuleId::Nd01,
            RuleId::Nd02,
            RuleId::Nd03,
            RuleId::Nd04,
            RuleId::Nd05,
            RuleId::Cc01,
            RuleId::Cc02,
            RuleId::Rs01,
            RuleId::Pa01,
            RuleId::Doc01,
            RuleId::Ob01,
            RuleId::Bh01,
            RuleId::Ob02,
        ]
    }

    /// The rule's default severity. The original catalogue is deny
    /// (the workspace is clean under it); the concurrency/RNG-stream
    /// rules added ahead of the parallel core land warn-first with
    /// pre-existing findings baselined. BH01 lands deny directly: it
    /// shipped together with the behaviour decomposition it guards, so
    /// there were zero pre-existing findings to baseline.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::Nd05 | RuleId::Cc01 | RuleId::Cc02 | RuleId::Rs01 | RuleId::Ob02 => {
                Severity::Warn
            }
            _ => Severity::Deny,
        }
    }

    /// One-line summary for the catalogue table.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Nd01 => {
                "no wall-clock or ambient entropy (SystemTime, Instant, thread_rng, std::env) \
                 in sim/proto/net/testbed"
            }
            RuleId::Nd02 => {
                "no order-dependent HashMap/HashSet in simulation or report-emitting paths \
                 (use BTreeMap/BTreeSet or a sorted collect)"
            }
            RuleId::Nd03 => {
                "no unordered parallel float reductions (par_iter…sum/reduce/fold) in analysis"
            }
            RuleId::Nd04 => {
                "no full-trace materialisation (into_records(), records()…collect) in analysis \
                 hot paths; stream records through AnalysisPass accumulators"
            }
            RuleId::Nd05 => {
                "no iteration over hash-ordered collections flowing into event sinks, report \
                 serialisation, or reduce calls (collect/fold/sum); order the collection first"
            }
            RuleId::Cc01 => {
                "no bare std::thread::spawn/Mutex/RwLock outside the sanctioned parallel-core \
                 modules (sim::par); cross-shard state goes through audited primitives"
            }
            RuleId::Cc02 => {
                "no Ordering::Relaxed/AcqRel atomics outside the audited commutative-metrics \
                 modules in crates/obs; merge-visible atomics must be SeqCst"
            }
            RuleId::Rs01 => {
                "every DetRng draw must reach a named stream: no fresh DetRng::new/from_entropy \
                 outside the stream registry, and no draws inside Drop impls"
            }
            RuleId::Pa01 => "no unwrap()/expect()/panic! in non-test library code",
            RuleId::Doc01 => "public items must carry doc comments",
            RuleId::Ob01 => {
                "no println!/eprintln!/dbg! in library crates; route diagnostics through the \
                 netaware-obs event log so they are filterable, structured, and deterministic"
            }
            RuleId::Bh01 => {
                "no raw `Event` pattern-matching or `Scheduler` access in crates/proto outside \
                 the dispatcher module; behaviours receive decomposed hook arguments and emit \
                 typed BehaviourActions through Ctx"
            }
            RuleId::Ob02 => {
                "no std::time::Instant/SystemTime outside crates/obs/src/clock.rs; profiling \
                 and timestamps go through the obs Clock abstraction so runs stay swappable \
                 onto ManualClock"
            }
        }
    }
}

/// Modules sanctioned to hold bare thread/lock primitives (CC01): the
/// sharded parallel simulation core, plus the audited observability
/// modules — each holds exactly one flat `Mutex` (no nested
/// acquisition, so no lock-order coupling) and everything merge-visible
/// serialises in `BTreeMap` order, so byte-stable merges cannot be
/// broken by lock scheduling. Everything else goes through `sim::par`.
const CC01_SANCTIONED: &[&str] = &[
    "crates/sim/src/par.rs",
    "crates/sim/src/par/",
    "crates/obs/src/clock.rs",
    "crates/obs/src/lib.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/profile.rs",
    "crates/obs/src/sink.rs",
];

/// Modules sanctioned to use relaxed atomic orderings (CC02): the
/// commutative metrics registry in `crates/obs`, audited to tolerate
/// reordering (counter adds commute; snapshots order by key), plus the
/// profiler tallies and allocation counters, which are likewise
/// commutative adds read only at snapshot points.
const CC02_SANCTIONED: &[&str] = &[
    "crates/obs/src/alloc.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/profile.rs",
];

/// The RNG stream registry (RS01): the one module allowed to construct
/// generators from raw seeds.
const RS01_REGISTRY: &[&str] = &["crates/sim/src/rng.rs"];

/// The wall-clock boundary (OB02): the one module allowed to read
/// `std::time` directly. Everything else takes a [`Clock`] handle, so a
/// profiled run can be replayed under `ManualClock` in tests.
const OB02_CLOCK: &[&str] = &["crates/obs/src/clock.rs"];

/// The behaviour dispatcher (BH01): the one proto module allowed to hold
/// the scheduler and destructure raw `Event`s. Behaviour modules see
/// decomposed hook arguments and return typed actions; matching events
/// or pushing into the scheduler anywhere else would bypass the fixed
/// hook order and FIFO action drain that keep same-seed runs
/// byte-identical (see DESIGN.md, "Behaviour composition").
const BH01_DISPATCH: &[&str] = &["crates/proto/src/swarm/dispatch.rs"];

fn sanctioned(rel: &str, list: &[&str]) -> bool {
    list.iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
}

/// Which rules patrol a file, derived from its workspace-relative path.
pub struct FileScope {
    /// ND01 applies (deterministic simulation substrate crates).
    pub nd01: bool,
    /// ND02 applies (simulation or report-emitting path).
    pub nd02: bool,
    /// ND03 applies (analysis reductions).
    pub nd03: bool,
    /// ND04 applies (analysis record-streaming discipline).
    pub nd04: bool,
    /// ND05 applies (hash-ordered iteration into sinks).
    pub nd05: bool,
    /// CC01 applies (not a sanctioned parallel-core module).
    pub cc01: bool,
    /// CC02 applies (not an audited commutative-metrics module).
    pub cc02: bool,
    /// RS01 applies (not the stream registry).
    pub rs01: bool,
    /// PA01/DOC01 apply (library source).
    pub library: bool,
    /// OB01 applies (library crates other than the linter itself, whose
    /// command-line reporting legitimately prints).
    pub ob01: bool,
    /// BH01 applies (proto behaviour modules, not the dispatcher).
    pub bh01: bool,
    /// OB02 applies (library crates outside ND01's stricter patrol,
    /// excluding the clock module itself).
    pub ob02: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path (`crates/sim/src/rng.rs`).
    /// Returns `None` for files the linter does not patrol at all
    /// (tests, benches, examples, vendored shims, the CLI binary).
    pub fn classify(rel: &str) -> Option<FileScope> {
        let rel = rel.replace('\\', "/");
        if !rel.ends_with(".rs") {
            return None;
        }
        // Test code may unwrap and iterate however it likes.
        if rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
            || rel.starts_with("examples/")
            || rel.starts_with("tests/")
            || rel.ends_with("/tests.rs")
            || rel.starts_with("vendor/")
        {
            return None;
        }
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next());
        let in_src = match crate_name {
            Some(name) => rel.starts_with(&format!("crates/{name}/src/")),
            None => rel.starts_with("src/"),
        };
        if !in_src {
            return None;
        }
        // The CLI binary owns process concerns (args, exit codes).
        if rel.starts_with("src/bin/") {
            return None;
        }
        // The linter itself is library code too, but its rules modules
        // necessarily *name* the patterns they hunt; it is patrolled only
        // by PA01/DOC01.
        let is_xtask = crate_name == Some("xtask");
        let nd01 = matches!(crate_name, Some("sim" | "proto" | "net" | "testbed"));
        let nd02 = !is_xtask
            && (nd01 || matches!(crate_name, Some("trace" | "analysis")) || crate_name.is_none());
        let nd03 = matches!(crate_name, Some("analysis"));
        // The analysis crate must stream records, never buffer a whole
        // trace: the streaming pipeline's memory bound depends on it.
        let nd04 = nd03;
        Some(FileScope {
            nd01,
            nd02,
            nd03,
            nd04,
            nd05: !is_xtask,
            cc01: !is_xtask && !sanctioned(&rel, CC01_SANCTIONED),
            cc02: !is_xtask && !sanctioned(&rel, CC02_SANCTIONED),
            rs01: !is_xtask && !sanctioned(&rel, RS01_REGISTRY),
            library: true,
            ob01: !is_xtask,
            bh01: crate_name == Some("proto") && !sanctioned(&rel, BH01_DISPATCH),
            // ND01 already denies clock reads in the simulation crates;
            // OB02 extends a warn-level version of the same hygiene to
            // the remaining library crates without double-reporting.
            ob02: !is_xtask && !nd01 && !sanctioned(&rel, OB02_CLOCK),
        })
    }
}

/// A rule match before allow-directive and baseline filtering.
pub struct RawFinding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Source span of the offending tokens.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

fn tok_finding(rule: RuleId, t: &Tok, message: String) -> RawFinding {
    RawFinding {
        rule,
        span: Span::of(t),
        message,
    }
}

/// Runs every in-scope rule over a parsed file.
pub fn check(file: &File, scope: &FileScope) -> Vec<RawFinding> {
    let code = &file.code;
    // Field names whose declared type is hash-ordered, visible file-wide
    // (`self.counts.iter()…` in another item of the same file).
    let mut hash_fields: BTreeSet<String> = BTreeSet::new();
    file.walk(&mut |item, _| {
        for f in &item.fields {
            if mentions_hash(&f.ty) {
                hash_fields.insert(f.name.clone());
            }
        }
    });
    let mut out = Vec::new();
    file.walk(&mut |item, ancestors| {
        if item.cfg_test || ancestors.iter().any(|a| a.cfg_test) {
            return;
        }
        if scope.library {
            doc01_item(item, &mut out);
        }
        let in_drop = matches!(item.kind, ItemKind::Fn)
            && ancestors.iter().any(|a| {
                matches!(&a.kind, ItemKind::Impl { trait_name: Some(t) } if t == "Drop")
            });
        for &(lo, hi) in &item.scan {
            scan_range(code, lo, hi, scope, in_drop, &hash_fields, &mut out);
        }
    });
    out
}

fn mentions_hash(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

// ---------------------------------------------------------------- DOC01

fn doc01_item(item: &Item, out: &mut Vec<RawFinding>) {
    let what = match &item.kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Union => "union",
        ItemKind::Trait => "trait",
        ItemKind::Mod { inline: true } => "mod",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::TypeAlias => "type",
        // Out-of-line `pub mod name;` is documented by the `//!` header
        // of its own file; `use`/`impl`/macros carry no outer API docs.
        _ => "",
    };
    if !what.is_empty() && item.vis == Vis::Pub && !item.has_doc {
        out.push(RawFinding {
            rule: RuleId::Doc01,
            span: item.head,
            message: format!("public {what} `{}` has no doc comment", item.name),
        });
    }
    for f in &item.fields {
        if f.vis == Vis::Pub && !f.has_doc {
            out.push(RawFinding {
                rule: RuleId::Doc01,
                span: f.span,
                message: format!("public field `{}` has no doc comment", f.name),
            });
        }
    }
}

// ------------------------------------------------------- range scanning

fn scan_range(
    code: &[Tok],
    lo: usize,
    hi: usize,
    scope: &FileScope,
    in_drop: bool,
    hash_fields: &BTreeSet<String>,
    out: &mut Vec<RawFinding>,
) {
    let paths = ast::paths(code, lo, hi);
    let chains = ast::chains(code, lo, hi);
    let macros = ast::macro_bangs(code, lo, hi);

    if scope.nd01 {
        nd01(code, &paths, out);
    }
    if scope.nd02 {
        for t in code.get(lo..hi.min(code.len())).unwrap_or(&[]) {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                out.push(tok_finding(
                    RuleId::Nd02,
                    t,
                    format!(
                        "`{}` iteration order is nondeterministic; use BTreeMap/BTreeSet or a \
                         sorted collect in simulation/report paths",
                        t.text
                    ),
                ));
            }
        }
    }
    if scope.nd03 {
        nd03(code, &chains, out);
    }
    if scope.nd04 {
        nd04(code, &chains, out);
    }
    if scope.nd05 {
        nd05(code, lo, hi, &chains, hash_fields, out);
    }
    if scope.cc01 {
        cc01(code, lo, hi, &paths, out);
    }
    if scope.cc02 {
        cc02(code, &paths, out);
    }
    if scope.rs01 {
        rs01(code, &paths, &chains, in_drop, out);
    }
    if scope.bh01 {
        bh01(code, lo, hi, out);
    }
    if scope.ob02 {
        ob02(code, &paths, out);
    }
    if scope.library {
        for c in &chains {
            for call in &c.calls {
                if call.name == "unwrap" || call.name == "expect" {
                    if let Some(t) = code.get(call.idx) {
                        out.push(tok_finding(
                            RuleId::Pa01,
                            t,
                            format!(
                                "`.{}()` panics on the error path; return a Result, handle the \
                                 None, or justify with `// netaware-lint: allow(PA01)`",
                                call.name
                            ),
                        ));
                    }
                }
            }
        }
        for m in &macros {
            if m.name == "panic" {
                if let Some(t) = code.get(m.idx) {
                    out.push(tok_finding(
                        RuleId::Pa01,
                        t,
                        "`panic!` in library code aborts callers; return an error or justify \
                         with `// netaware-lint: allow(PA01)`"
                            .into(),
                    ));
                }
            }
        }
    }
    if scope.ob01 {
        for m in &macros {
            if matches!(
                m.name.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            ) {
                if let Some(t) = code.get(m.idx) {
                    out.push(tok_finding(
                        RuleId::Ob01,
                        t,
                        format!(
                            "`{}!` writes to the console from library code; emit a \
                             `netaware_obs::event!` (or return the data) and let the binary \
                             decide what to print",
                            m.name
                        ),
                    ));
                }
            }
        }
    }
}

// ----------------------------------------------------------------- ND01

fn nd01(code: &[Tok], paths: &[ast::PathMention], out: &mut Vec<RawFinding>) {
    for p in paths {
        for (k, seg) in p.segs.iter().enumerate() {
            let Some(&idx) = p.seg_idx.get(k) else { continue };
            let Some(t) = code.get(idx) else { continue };
            match seg.as_str() {
                "SystemTime" | "UNIX_EPOCH" => out.push(tok_finding(
                    RuleId::Nd01,
                    t,
                    "wall-clock time is nondeterministic; derive timestamps from SimTime".into(),
                )),
                "Instant" => out.push(tok_finding(
                    RuleId::Nd01,
                    t,
                    "monotonic-clock reads are nondeterministic; use SimTime for simulated time"
                        .into(),
                )),
                "thread_rng" | "OsRng" => {
                    let continues = k + 1 < p.segs.len();
                    let called = code.get(idx + 1).is_some_and(|n| n.is_punct('('));
                    if continues || called {
                        out.push(tok_finding(
                            RuleId::Nd01,
                            t,
                            "ambient entropy breaks (seed, config) reproducibility; use DetRng \
                             streams"
                                .into(),
                        ));
                    }
                }
                "env" => {
                    let prefixed = p.has_pair("std", "env") || p.has_pair("core", "env");
                    let bare_call = k == 0
                        && p.segs.get(1).is_some_and(|n| {
                            matches!(
                                n.as_str(),
                                "var" | "vars" | "var_os" | "args" | "args_os" | "temp_dir"
                            )
                        });
                    if prefixed || bare_call {
                        out.push(tok_finding(
                            RuleId::Nd01,
                            t,
                            "process environment is ambient configuration; thread it through \
                             explicit config structs"
                                .into(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

// ----------------------------------------------------------------- OB02

fn ob02(code: &[Tok], paths: &[ast::PathMention], out: &mut Vec<RawFinding>) {
    for p in paths {
        for (k, seg) in p.segs.iter().enumerate() {
            let Some(&idx) = p.seg_idx.get(k) else { continue };
            let Some(t) = code.get(idx) else { continue };
            if matches!(seg.as_str(), "Instant" | "SystemTime" | "UNIX_EPOCH") {
                out.push(tok_finding(
                    RuleId::Ob02,
                    t,
                    format!(
                        "`{seg}` reads the process clock directly; take a `Clock` handle from \
                         netaware-obs so the caller can substitute ManualClock",
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------------------- ND03

fn nd03(code: &[Tok], chains: &[Chain], out: &mut Vec<RawFinding>) {
    for c in chains {
        let Some(par) = c.calls.iter().position(|call| {
            matches!(
                call.name.as_str(),
                "par_iter" | "into_par_iter" | "par_iter_mut"
            )
        }) else {
            continue;
        };
        if let Some(red) = c.calls[par + 1..]
            .iter()
            .find(|call| matches!(call.name.as_str(), "sum" | "reduce" | "fold" | "product"))
        {
            if let Some(t) = code.get(red.idx) {
                out.push(tok_finding(
                    RuleId::Nd03,
                    t,
                    format!(
                        "unordered parallel `{}` makes float results depend on thread \
                         scheduling; collect in input order and reduce sequentially",
                        red.name
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------------------- ND04

fn nd04(code: &[Tok], chains: &[Chain], out: &mut Vec<RawFinding>) {
    for c in chains {
        for call in &c.calls {
            if call.name == "into_records" {
                if let Some(t) = code.get(call.idx) {
                    out.push(tok_finding(
                        RuleId::Nd04,
                        t,
                        "`.into_records()` materialises the whole trace; stream it through an \
                         AnalysisPass instead"
                            .into(),
                    ));
                }
            }
        }
        let Some(rec) = c
            .calls
            .iter()
            .position(|call| call.name == "records" || call.name == "records_unsorted")
        else {
            continue;
        };
        if let Some(col) = c.calls[rec + 1..].iter().find(|call| call.name == "collect") {
            if let (Some(t), Some(rec_name)) = (code.get(col.idx), c.calls.get(rec)) {
                out.push(tok_finding(
                    RuleId::Nd04,
                    t,
                    format!(
                        "collecting `.{}()` copies the whole trace; feed the records through \
                         an AnalysisPass accumulator instead",
                        rec_name.name
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------------------- ND05

/// Iteration methods whose order is the receiver's iteration order.
const ND05_ITER: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Chain continuations that materialise or reduce in iteration order.
const ND05_REDUCE: &[&str] = &["collect", "fold", "sum", "reduce", "product", "for_each"];

/// Callees whose arguments reach event sinks or serialized reports.
const ND05_SINKS: &[&str] = &[
    "emit",
    "extend",
    "push_event",
    "serialize",
    "to_json",
    "to_string",
    "to_writer",
    "write",
    "write_all",
];

fn nd05(
    code: &[Tok],
    lo: usize,
    hi: usize,
    chains: &[Chain],
    hash_fields: &BTreeSet<String>,
    out: &mut Vec<RawFinding>,
) {
    // Hash-typed names in this range: annotated/constructed `let`s, plus
    // `name: …HashMap…` parameter/field patterns.
    let mut hashy: BTreeSet<String> = hash_fields.clone();
    for l in ast::lets(code, lo, hi) {
        let ty_hash = l.ty.as_deref().is_some_and(mentions_hash);
        let init_hash = l
            .init_path
            .as_deref()
            .is_some_and(|p| p.starts_with("HashMap") || p.starts_with("HashSet"));
        if ty_hash || init_hash {
            hashy.insert(l.name);
        }
    }
    let hi = hi.min(code.len());
    for i in lo..hi {
        let t = &code[i];
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            // Walk back over a `std::collections::` qualifier, then over
            // `& mut 'a` sigils, to the `name:` the type annotates.
            let mut j = i;
            while j >= lo + 3
                && code[j - 1].is_punct(':')
                && code[j - 2].is_punct(':')
                && code[j - 3].kind == TokKind::Ident
            {
                j -= 3;
            }
            while j > lo
                && code.get(j - 1).is_some_and(|p| {
                    p.is_punct('&') || p.is_ident("mut") || p.kind == TokKind::Lifetime
                })
            {
                j -= 1;
            }
            if j >= lo + 2
                && code.get(j - 1).is_some_and(|p| p.is_punct(':'))
                && !code.get(j - 2).is_some_and(|p| p.is_punct(':'))
            {
                if let Some(name) = code.get(j - 2).filter(|n| n.kind == TokKind::Ident) {
                    hashy.insert(name.text.clone());
                }
            }
        }
    }
    for c in chains {
        let Some(root) = c.root.as_deref() else {
            continue;
        };
        if !hashy.contains(root) {
            continue;
        }
        let Some(it) = c
            .calls
            .iter()
            .position(|call| ND05_ITER.contains(&call.name.as_str()))
        else {
            continue;
        };
        let reduces = c.calls[it + 1..]
            .iter()
            .any(|call| ND05_REDUCE.contains(&call.name.as_str()));
        let sinks = c
            .arg_of
            .as_deref()
            .is_some_and(|f| ND05_SINKS.contains(&f));
        if reduces || sinks {
            if let Some(t) = code.get(c.calls[it].idx) {
                out.push(tok_finding(
                    RuleId::Nd05,
                    t,
                    format!(
                        "iterating hash-ordered `{root}` into an ordered sink; iteration order \
                         is nondeterministic — use a BTree collection or sort before emitting"
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------------------- CC01

fn cc01(code: &[Tok], lo: usize, hi: usize, paths: &[ast::PathMention], out: &mut Vec<RawFinding>) {
    for p in paths {
        for pair in [
            ("thread", "spawn"),
            ("thread", "scope"),
            ("thread", "Builder"),
        ] {
            if p.has_pair(pair.0, pair.1) {
                if let Some(&idx) = p
                    .segs
                    .iter()
                    .position(|s| s.as_str() == pair.1)
                    .and_then(|k| p.seg_idx.get(k))
                {
                    if let Some(t) = code.get(idx) {
                        out.push(tok_finding(
                            RuleId::Cc01,
                            t,
                            format!(
                                "bare `thread::{}` outside the sanctioned parallel core; shard \
                                 work through `sim::par` so cross-shard order stays \
                                 deterministic",
                                pair.1
                            ),
                        ));
                    }
                }
            }
        }
    }
    for t in code.get(lo..hi.min(code.len())).unwrap_or(&[]) {
        if t.kind == TokKind::Ident && (t.text == "Mutex" || t.text == "RwLock") {
            out.push(tok_finding(
                RuleId::Cc01,
                t,
                format!(
                    "bare `{}` outside the sanctioned parallel core; lock-ordering bugs break \
                     byte-stable merges — use `sim::par` primitives or add the module to the \
                     audited list",
                    t.text
                ),
            ));
        }
    }
}

// ----------------------------------------------------------------- CC02

fn cc02(code: &[Tok], paths: &[ast::PathMention], out: &mut Vec<RawFinding>) {
    for p in paths {
        for variant in ["Relaxed", "AcqRel"] {
            if p.has_pair("Ordering", variant) {
                if let Some(&idx) = p
                    .segs
                    .iter()
                    .position(|s| s.as_str() == variant)
                    .and_then(|k| p.seg_idx.get(k))
                {
                    if let Some(t) = code.get(idx) {
                        out.push(tok_finding(
                            RuleId::Cc02,
                            t,
                            format!(
                                "`Ordering::{variant}` outside the audited commutative-metrics \
                                 modules; non-SeqCst updates can reorder across shard merges — \
                                 use SeqCst or move the counter into `crates/obs` metrics"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------- BH01

/// Skips one balanced `(…)`/`{…}` payload group starting at `j`, if one
/// opens there, and returns the index of the first token past it.
fn bh01_after_payload(code: &[Tok], mut j: usize, hi: usize) -> usize {
    if !code
        .get(j)
        .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
    {
        return j;
    }
    let mut depth = 0usize;
    while j < hi {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Behaviour modules must not see the scheduler or destructure raw
/// events. Flags any `Scheduler` mention, and any `Event::Variant` in
/// *pattern* position — after the variant's optional payload group comes
/// `=>` or `|` (a match arm) or a single `=` (an `if let`/`let`
/// binding). `Event::…` in expression position (constructing an event
/// for `Ctx::schedule`) never matches: construction is the sanctioned
/// way for a behaviour to reach the scheduler.
fn bh01(code: &[Tok], lo: usize, hi: usize, out: &mut Vec<RawFinding>) {
    let hi = hi.min(code.len());
    for i in lo..hi {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Scheduler" {
            out.push(tok_finding(
                RuleId::Bh01,
                t,
                "`Scheduler` handled outside the dispatcher module; emit \
                 `BehaviourAction::Schedule` through `Ctx::schedule` so the dispatcher's \
                 FIFO drain keeps same-seed runs byte-identical"
                    .into(),
            ));
            continue;
        }
        if t.text != "Event"
            || !code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            || !code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            || !code.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
        {
            continue;
        }
        let j = bh01_after_payload(code, i + 4, hi);
        let pattern_pos = match code.get(j) {
            Some(n) if n.is_punct('|') => true,
            // `=>` (arm) or a lone `=` (let binding); `==` compares a
            // constructed event and is fine.
            Some(n) if n.is_punct('=') => !code.get(j + 1).is_some_and(|m| m.is_punct('=')),
            _ => false,
        };
        if pattern_pos {
            out.push(tok_finding(
                RuleId::Bh01,
                t,
                format!(
                    "matching `Event::{}` outside the dispatcher module; add a `Behaviour` \
                     hook (or extend one) instead of destructuring raw events",
                    code[i + 3].text
                ),
            ));
        }
    }
}

// ----------------------------------------------------------------- RS01

/// `DetRng` draw methods (kept in sync with `crates/sim/src/rng.rs`).
const RS01_DRAWS: &[&str] = &[
    "next_u64",
    "unit",
    "chance",
    "range",
    "exp",
    "pareto",
    "pick",
    "pick_weighted",
    "shuffle",
];

fn rs01(
    code: &[Tok],
    paths: &[ast::PathMention],
    chains: &[Chain],
    in_drop: bool,
    out: &mut Vec<RawFinding>,
) {
    for p in paths {
        for ctor in ["new", "from_entropy", "from_os_entropy", "seed_from_u64"] {
            if p.has_pair("DetRng", ctor) {
                if let Some(&idx) = p
                    .segs
                    .iter()
                    .position(|s| s.as_str() == ctor)
                    .and_then(|k| p.seg_idx.get(k))
                {
                    if let Some(t) = code.get(idx) {
                        out.push(tok_finding(
                            RuleId::Rs01,
                            t,
                            format!(
                                "fresh `DetRng::{ctor}` outside the stream registry; derive \
                                 generators from named `DetRng::stream`/`substream` so every \
                                 draw is attributable to a seeded stream"
                            ),
                        ));
                    }
                }
            }
        }
    }
    if in_drop {
        for c in chains {
            for call in &c.calls {
                if RS01_DRAWS.contains(&call.name.as_str()) {
                    if let Some(t) = code.get(call.idx) {
                        out.push(tok_finding(
                            RuleId::Rs01,
                            t,
                            format!(
                                "RNG draw `.{}()` inside a `Drop` impl; drop order is not part \
                                 of the determinism contract — draw before teardown",
                                call.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

//! The lint catalogue: rule IDs, scopes, and per-rule token checks.
//!
//! Every rule has an ID (used in diagnostics and in
//! `// netaware-lint: allow(<ID>)` escape hatches), a scope (which crates
//! it patrols), and a rationale tied to the determinism & reproducibility
//! contract in DESIGN.md.

use crate::lexer::{Tok, TokKind};

/// A lint rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No wall-clock time or ambient entropy in deterministic crates.
    Nd01,
    /// No order-dependent hash collections in simulation/report paths.
    Nd02,
    /// No unordered parallel float reductions in analysis.
    Nd03,
    /// No full-trace materialisation in analysis hot paths.
    Nd04,
    /// No `unwrap`/`expect`/`panic!` in non-test library code.
    Pa01,
    /// Public items must be documented.
    Doc01,
    /// No `println!`/`eprintln!`/`dbg!` in library crates.
    Ob01,
}

impl RuleId {
    /// The stable textual ID, as written in allow directives.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Nd01 => "ND01",
            RuleId::Nd02 => "ND02",
            RuleId::Nd03 => "ND03",
            RuleId::Nd04 => "ND04",
            RuleId::Pa01 => "PA01",
            RuleId::Doc01 => "DOC01",
            RuleId::Ob01 => "OB01",
        }
    }

    /// Parses a textual ID (`"ND01"` → `Nd01`).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "ND01" => Some(RuleId::Nd01),
            "ND02" => Some(RuleId::Nd02),
            "ND03" => Some(RuleId::Nd03),
            "ND04" => Some(RuleId::Nd04),
            "PA01" => Some(RuleId::Pa01),
            "DOC01" => Some(RuleId::Doc01),
            "OB01" => Some(RuleId::Ob01),
            _ => None,
        }
    }

    /// All rules, in catalogue order.
    pub fn all() -> [RuleId; 7] {
        [
            RuleId::Nd01,
            RuleId::Nd02,
            RuleId::Nd03,
            RuleId::Nd04,
            RuleId::Pa01,
            RuleId::Doc01,
            RuleId::Ob01,
        ]
    }

    /// One-line summary for the catalogue table.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Nd01 => {
                "no wall-clock or ambient entropy (SystemTime, Instant, thread_rng, std::env) \
                 in sim/proto/net/testbed"
            }
            RuleId::Nd02 => {
                "no order-dependent HashMap/HashSet in simulation or report-emitting paths \
                 (use BTreeMap/BTreeSet or a sorted collect)"
            }
            RuleId::Nd03 => {
                "no unordered parallel float reductions (par_iter…sum/reduce/fold) in analysis"
            }
            RuleId::Nd04 => {
                "no full-trace materialisation (into_records(), records()…collect) in analysis \
                 hot paths; stream records through AnalysisPass accumulators"
            }
            RuleId::Pa01 => "no unwrap()/expect()/panic! in non-test library code",
            RuleId::Doc01 => "public items must carry doc comments",
            RuleId::Ob01 => {
                "no println!/eprintln!/dbg! in library crates; route diagnostics through the \
                 netaware-obs event log so they are filterable, structured, and deterministic"
            }
        }
    }
}

/// Which rules patrol a file, derived from its workspace-relative path.
pub struct FileScope {
    /// ND01 applies (deterministic simulation substrate crates).
    pub nd01: bool,
    /// ND02 applies (simulation or report-emitting path).
    pub nd02: bool,
    /// ND03 applies (analysis reductions).
    pub nd03: bool,
    /// ND04 applies (analysis record-streaming discipline).
    pub nd04: bool,
    /// PA01/DOC01 apply (library source).
    pub library: bool,
    /// OB01 applies (library crates other than the linter itself, whose
    /// command-line reporting legitimately prints).
    pub ob01: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path (`crates/sim/src/rng.rs`).
    /// Returns `None` for files the linter does not patrol at all
    /// (tests, benches, examples, vendored shims, the CLI binary).
    pub fn classify(rel: &str) -> Option<FileScope> {
        let rel = rel.replace('\\', "/");
        if !rel.ends_with(".rs") {
            return None;
        }
        // Test code may unwrap and iterate however it likes.
        if rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
            || rel.starts_with("examples/")
            || rel.starts_with("tests/")
            || rel.ends_with("/tests.rs")
            || rel.starts_with("vendor/")
        {
            return None;
        }
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next());
        let in_src = match crate_name {
            Some(name) => rel.starts_with(&format!("crates/{name}/src/")),
            None => rel.starts_with("src/"),
        };
        if !in_src {
            return None;
        }
        // The CLI binary owns process concerns (args, exit codes).
        if rel.starts_with("src/bin/") {
            return None;
        }
        // The linter itself is library code too, but its rules modules
        // necessarily *name* the patterns they hunt; it is patrolled only
        // by PA01/DOC01.
        let is_xtask = crate_name == Some("xtask");
        let nd01 = matches!(crate_name, Some("sim" | "proto" | "net" | "testbed"));
        let nd02 = !is_xtask
            && (nd01 || matches!(crate_name, Some("trace" | "analysis")) || crate_name.is_none());
        let nd03 = matches!(crate_name, Some("analysis"));
        // The analysis crate must stream records, never buffer a whole
        // trace: the streaming pipeline's memory bound depends on it.
        let nd04 = nd03;
        Some(FileScope {
            nd01,
            nd02,
            nd03,
            nd04,
            library: true,
            ob01: !is_xtask,
        })
    }
}

/// A rule match before allow-directive filtering.
pub struct RawFinding {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

fn finding(rule: RuleId, t: &Tok, message: String) -> RawFinding {
    RawFinding {
        rule,
        line: t.line,
        col: t.col,
        message,
    }
}

/// A code token paired with its index in the full (comment-bearing)
/// token stream, so DOC01 can look back across doc comments.
struct CodeTok<'a> {
    tok: &'a Tok,
    full_idx: usize,
}

fn code_tokens(toks: &[Tok]) -> Vec<CodeTok<'_>> {
    toks.iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
            )
        })
        .map(|(full_idx, tok)| CodeTok { tok, full_idx })
        .collect()
}

/// Marks which code tokens sit inside `#[cfg(test)] mod … { … }` blocks.
fn test_block_mask(code: &[CodeTok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let at = |i: usize| code.get(i).map(|c| c.tok);
    let mut i = 0;
    while i < code.len() {
        if code[i].tok.is_punct('#')
            && at(i + 1).is_some_and(|t| t.is_punct('['))
            && at(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && at(i + 3).is_some_and(|t| t.is_punct('('))
            && at(i + 4).is_some_and(|t| t.is_ident("test"))
        {
            // Find the `mod` that follows this attribute (skipping any
            // further attributes) and mask to its closing brace.
            let mut j = i + 5;
            while j < code.len() && !code[j].tok.is_ident("mod") {
                // Stop if this cfg(test) gates something other than an
                // inline module (e.g. a `use` or an out-of-line `mod x;`).
                if code[j].tok.is_punct(';') || code[j].tok.is_punct('{') {
                    break;
                }
                j += 1;
            }
            if j < code.len() && code[j].tok.is_ident("mod") {
                // Scan to the opening brace (an out-of-line `mod x;` ends
                // at `;` first and masks nothing).
                let mut k = j;
                while k < code.len() && !code[k].tok.is_punct('{') && !code[k].tok.is_punct(';') {
                    k += 1;
                }
                if k < code.len() && code[k].tok.is_punct('{') {
                    let mut depth = 0usize;
                    let mask_from = i;
                    while k < code.len() {
                        if code[k].tok.is_punct('{') {
                            depth += 1;
                        } else if code[k].tok.is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    let mask_to = k.min(code.len() - 1);
                    for slot in &mut mask[mask_from..=mask_to] {
                        *slot = true;
                    }
                    i = mask_to + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Runs every in-scope rule over the token stream.
pub fn check(toks: &[Tok], scope: &FileScope) -> Vec<RawFinding> {
    let code = code_tokens(toks);
    let in_test = test_block_mask(&code);
    let mut out = Vec::new();

    for (i, c) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let t = c.tok;
        if scope.nd01 {
            nd01_at(&code, i, &mut out);
        }
        if scope.nd02 && t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(finding(
                RuleId::Nd02,
                t,
                format!(
                    "`{}` iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted \
                     collect in simulation/report paths",
                    t.text
                ),
            ));
        }
        if scope.nd03 {
            nd03_at(&code, i, &mut out);
        }
        if scope.nd04 {
            nd04_at(&code, i, &mut out);
        }
        if scope.library {
            pa01_at(&code, i, &mut out);
            doc01_at(toks, &code, i, &mut out);
        }
        if scope.ob01 {
            ob01_at(&code, i, &mut out);
        }
    }
    out
}

fn tok_at<'a>(code: &'a [CodeTok<'_>], i: usize) -> Option<&'a Tok> {
    code.get(i).map(|c| c.tok)
}

fn nd01_at(code: &[CodeTok<'_>], i: usize, out: &mut Vec<RawFinding>) {
    let t = code[i].tok;
    if t.kind != TokKind::Ident {
        return;
    }
    match t.text.as_str() {
        "SystemTime" | "UNIX_EPOCH" => out.push(finding(
            RuleId::Nd01,
            t,
            "wall-clock time is nondeterministic; derive timestamps from SimTime".into(),
        )),
        "Instant" => out.push(finding(
            RuleId::Nd01,
            t,
            "monotonic-clock reads are nondeterministic; use SimTime for simulated time".into(),
        )),
        "thread_rng" | "OsRng" if looks_like_call_or_path(code, i) => out.push(finding(
            RuleId::Nd01,
            t,
            "ambient entropy breaks (seed, config) reproducibility; use DetRng streams".into(),
        )),
        "env" => {
            // `std::env` / `core::env` path use (env::var, env::args, …).
            let prefixed = i >= 3
                && code[i - 1].tok.is_punct(':')
                && code[i - 2].tok.is_punct(':')
                && matches!(code[i - 3].tok.text.as_str(), "std" | "core");
            let bare_env_call = tok_at(code, i + 1).is_some_and(|t| t.is_punct(':'))
                && tok_at(code, i + 2).is_some_and(|t| t.is_punct(':'))
                && tok_at(code, i + 3).is_some_and(|t| {
                    matches!(
                        t.text.as_str(),
                        "var" | "vars" | "var_os" | "args" | "args_os" | "temp_dir"
                    )
                });
            if prefixed || bare_env_call {
                out.push(finding(
                    RuleId::Nd01,
                    t,
                    "process environment is ambient configuration; thread it through explicit \
                     config structs"
                        .into(),
                ));
            }
        }
        _ => {}
    }
}

fn looks_like_call_or_path(code: &[CodeTok<'_>], i: usize) -> bool {
    tok_at(code, i + 1).is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
}

/// Flags `par_iter`/`into_par_iter` pipelines that end in an unordered
/// reduction (`sum`, `reduce`, `fold`, `product`) before the statement
/// ends.
fn nd03_at(code: &[CodeTok<'_>], i: usize, out: &mut Vec<RawFinding>) {
    let t = code[i].tok;
    if !(t.is_ident("par_iter") || t.is_ident("into_par_iter") || t.is_ident("par_iter_mut")) {
        return;
    }
    let mut depth = 0i32;
    for j in (i + 1)..code.len() {
        let c = code[j].tok;
        if c.is_punct('(') || c.is_punct('{') || c.is_punct('[') {
            depth += 1;
        } else if c.is_punct(')') || c.is_punct('}') || c.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return; // pipeline ended inside an enclosing call
            }
        } else if c.is_punct(';') && depth == 0 {
            return;
        } else if depth == 0
            && c.kind == TokKind::Ident
            && matches!(c.text.as_str(), "sum" | "reduce" | "fold" | "product")
            && code[j - 1].tok.is_punct('.')
        {
            out.push(finding(
                RuleId::Nd03,
                c,
                format!(
                    "unordered parallel `{}` makes float results depend on thread scheduling; \
                     collect in input order and reduce sequentially",
                    c.text
                ),
            ));
            return;
        }
    }
}

/// Flags analysis code that materialises a whole trace instead of
/// streaming it: any `.into_records()` call, and `.records()` /
/// `.records_unsorted()` pipelines that `.collect` the records before the
/// statement ends. Borrowing the slice to iterate (`for r in t.records()`,
/// `run_pass(t.records(), …)`) is the intended idiom and stays clean.
fn nd04_at(code: &[CodeTok<'_>], i: usize, out: &mut Vec<RawFinding>) {
    let t = code[i].tok;
    if t.kind != TokKind::Ident
        || i == 0
        || !code[i - 1].tok.is_punct('.')
        || !tok_at(code, i + 1).is_some_and(|n| n.is_punct('('))
    {
        return;
    }
    if t.text == "into_records" {
        out.push(finding(
            RuleId::Nd04,
            t,
            "`.into_records()` materialises the whole trace; stream it through an \
             AnalysisPass instead"
                .into(),
        ));
        return;
    }
    if t.text != "records" && t.text != "records_unsorted" {
        return;
    }
    let mut depth = 0i32;
    for j in (i + 1)..code.len() {
        let c = code[j].tok;
        if c.is_punct('(') || c.is_punct('[') {
            depth += 1;
        } else if c.is_punct(')') || c.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return; // the records call was an argument; caller borrows
            }
        } else if depth == 0 && (c.is_punct(';') || c.is_punct('{')) {
            return; // statement (or loop body) ends without collecting
        } else if depth == 0
            && c.is_ident("collect")
            && code[j - 1].tok.is_punct('.')
        {
            out.push(finding(
                RuleId::Nd04,
                c,
                format!(
                    "collecting `.{}()` copies the whole trace; feed the records through an \
                     AnalysisPass accumulator instead",
                    t.text
                ),
            ));
            return;
        }
    }
}

fn pa01_at(code: &[CodeTok<'_>], i: usize, out: &mut Vec<RawFinding>) {
    let t = code[i].tok;
    if t.kind != TokKind::Ident {
        return;
    }
    match t.text.as_str() {
        "unwrap" | "expect"
            if i >= 1
                && code[i - 1].tok.is_punct('.')
                && tok_at(code, i + 1).is_some_and(|t| t.is_punct('(')) =>
        {
            out.push(finding(
                RuleId::Pa01,
                t,
                format!(
                    "`.{}()` panics on the error path; return a Result, handle the None, or \
                     justify with `// netaware-lint: allow(PA01)`",
                    t.text
                ),
            ));
        }
        "panic" if tok_at(code, i + 1).is_some_and(|t| t.is_punct('!')) => {
            out.push(finding(
                RuleId::Pa01,
                t,
                "`panic!` in library code aborts callers; return an error or justify with \
                 `// netaware-lint: allow(PA01)`"
                    .into(),
            ));
        }
        _ => {}
    }
}

/// Flags direct console printing in library crates: `println!`,
/// `eprintln!`, `print!`, `eprint!` and `dbg!`. Libraries should emit
/// structured `netaware_obs::event!`s (filterable, sim-time-stamped,
/// deterministic) and let binaries own the console.
fn ob01_at(code: &[CodeTok<'_>], i: usize, out: &mut Vec<RawFinding>) {
    let t = code[i].tok;
    if t.kind != TokKind::Ident
        || !matches!(
            t.text.as_str(),
            "println" | "eprintln" | "print" | "eprint" | "dbg"
        )
        || !tok_at(code, i + 1).is_some_and(|n| n.is_punct('!'))
    {
        return;
    }
    out.push(finding(
        RuleId::Ob01,
        t,
        format!(
            "`{}!` writes to the console from library code; emit a `netaware_obs::event!` \
             (or return the data) and let the binary decide what to print",
            t.text
        ),
    ));
}

/// Items after `pub` that require a doc comment.
const DOC_ITEM_KEYWORDS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type",
];

fn doc01_at(toks: &[Tok], code: &[CodeTok<'_>], i: usize, out: &mut Vec<RawFinding>) {
    let t = code[i].tok;
    if !t.is_ident("pub") {
        return;
    }
    // `pub(crate)` and friends are not public API.
    if tok_at(code, i + 1).is_some_and(|t| t.is_punct('(')) {
        return;
    }
    let mut j = i + 1;
    while tok_at(code, j).is_some_and(|t| matches!(t.text.as_str(), "unsafe" | "async" | "extern"))
    {
        j += 1;
    }
    let Some(kw) = tok_at(code, j) else { return };
    let is_item = kw.kind == TokKind::Ident && DOC_ITEM_KEYWORDS.contains(&kw.text.as_str());
    // `pub name: Type` — a public struct field (but not `pub name::…`).
    let is_field = kw.kind == TokKind::Ident
        && !is_item
        && kw.text != "use"
        && kw.text != "impl"
        && tok_at(code, j + 1).is_some_and(|t| t.is_punct(':'))
        && !tok_at(code, j + 2).is_some_and(|t| t.is_punct(':'));
    if !is_item && !is_field {
        return;
    }
    // An out-of-line `pub mod name;` is documented by the `//!` header of
    // its own file; requiring an outer comment here would double it.
    if kw.is_ident("mod") && tok_at(code, j + 2).is_some_and(|t| t.is_punct(';')) {
        return;
    }
    if has_preceding_doc(toks, code[i].full_idx) {
        return;
    }
    let (what, name) = if is_field {
        ("field".to_string(), kw.text.clone())
    } else {
        (
            kw.text.clone(),
            tok_at(code, j + 1)
                .map(|t| t.text.clone())
                .unwrap_or_default(),
        )
    };
    out.push(finding(
        RuleId::Doc01,
        t,
        format!("public {what} `{name}` has no doc comment"),
    ));
}

/// Looks backwards in the full token stream from the `pub` at `full_idx`,
/// skipping outer attributes `#[…]` and non-doc comments, for an attached
/// doc comment.
fn has_preceding_doc(toks: &[Tok], full_idx: usize) -> bool {
    let mut j = full_idx;
    loop {
        if j == 0 {
            return false;
        }
        let prev = &toks[j - 1];
        match prev.kind {
            // Only *outer* doc comments attach to the following item;
            // `//!`/`/*!` document the enclosing module.
            TokKind::DocComment => {
                return prev.text.starts_with("///") || prev.text.starts_with("/**");
            }
            TokKind::LineComment | TokKind::BlockComment => j -= 1,
            TokKind::Punct if prev.text == "]" => {
                // Skip backwards over a (possibly nested) `#[…]` attribute.
                let mut depth = 0usize;
                let mut k = j - 1;
                loop {
                    match toks[k].kind {
                        TokKind::Punct if toks[k].text == "]" => depth += 1,
                        TokKind::Punct if toks[k].text == "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                if k >= 1 && toks[k - 1].is_punct('#') {
                    j = k - 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

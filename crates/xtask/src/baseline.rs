//! The suppression baseline: a checked-in inventory of known findings.
//!
//! Warn-level rules land with their pre-existing findings recorded in
//! `lint-baseline.json` at the workspace root, so `cargo xtask lint`
//! stays green while the debt is burned down. An entry matches a finding
//! exactly — same rule, file, line, column, and message — which makes
//! the baseline self-invalidating: edit the offending line and the entry
//! goes *stale*, the drift check in CI fails, and the file must be
//! regenerated with `--write-baseline` (shrinking it if the finding was
//! actually fixed).

use crate::Diagnostic;
use serde_json::{value, Value};
use std::collections::BTreeSet;

/// The baseline file format version this build reads and writes.
const VERSION: u64 = 1;

/// One suppression key: (rule, file, line, col, message).
type Key = (String, String, u64, u64, String);

fn key_of(d: &Diagnostic) -> Key {
    (
        d.rule.to_string(),
        d.file.clone(),
        d.line as u64,
        d.col as u64,
        d.message.clone(),
    )
}

/// A parsed suppression baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<Key>,
}

impl Baseline {
    /// Whether the baseline suppresses this finding.
    pub fn covers(&self, d: &Diagnostic) -> bool {
        self.entries.contains(&key_of(d))
    }

    /// Entries that match none of the given (suppressed) findings,
    /// rendered as `file:line:col [RULE]` — stale suppressions whose
    /// code has moved or been fixed.
    pub fn stale(&self, matched: &[Diagnostic]) -> Vec<String> {
        let live: BTreeSet<Key> = matched.iter().map(key_of).collect();
        self.entries
            .iter()
            .filter(|k| !live.contains(*k))
            .map(|(rule, file, line, col, _)| format!("{file}:{line}:{col} [{rule}]"))
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the baseline file format produced by [`render`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = serde_json::parse_value(text).map_err(|e| format!("bad baseline JSON: {e:?}"))?;
        let fields = root
            .as_map()
            .ok_or_else(|| "baseline root must be an object".to_string())?;
        match value::field(fields, "version").as_u64() {
            Some(VERSION) => {}
            Some(v) => return Err(format!("unsupported baseline version {v}")),
            None => return Err("baseline is missing a numeric `version`".to_string()),
        }
        let list = value::field(fields, "suppressions")
            .as_seq()
            .ok_or_else(|| "baseline `suppressions` must be an array".to_string())?;
        let mut entries = BTreeSet::new();
        for (i, entry) in list.iter().enumerate() {
            let fields = entry
                .as_map()
                .ok_or_else(|| format!("suppression #{i} must be an object"))?;
            let text_field = |name: &str| -> Result<String, String> {
                value::field(fields, name)
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("suppression #{i} is missing string `{name}`"))
            };
            let num_field = |name: &str| -> Result<u64, String> {
                value::field(fields, name)
                    .as_u64()
                    .ok_or_else(|| format!("suppression #{i} is missing numeric `{name}`"))
            };
            entries.insert((
                text_field("rule")?,
                text_field("file")?,
                num_field("line")?,
                num_field("col")?,
                text_field("message")?,
            ));
        }
        Ok(Baseline { entries })
    }
}

/// Renders the given findings as a baseline file (sorted, versioned,
/// byte-stable across runs).
pub fn render(diags: &[Diagnostic]) -> String {
    let mut keys: Vec<Key> = diags.iter().map(key_of).collect();
    keys.sort();
    keys.dedup();
    let suppressions: Vec<Value> = keys
        .into_iter()
        .map(|(rule, file, line, col, message)| {
            Value::Map(vec![
                (Value::Str("rule".into()), Value::Str(rule)),
                (Value::Str("file".into()), Value::Str(file)),
                (Value::Str("line".into()), Value::U64(line)),
                (Value::Str("col".into()), Value::U64(col)),
                (Value::Str("message".into()), Value::Str(message)),
            ])
        })
        .collect();
    let root = Value::Map(vec![
        (Value::Str("version".into()), Value::U64(VERSION)),
        (
            Value::Str("suppressions".into()),
            Value::Seq(suppressions),
        ),
    ]);
    // No floats in the tree, so printing cannot fail.
    let mut text =
        serde_json::to_string_pretty(&root).unwrap_or_else(|e| format!("{{\"error\":\"{e:?}\"}}"));
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn diag(rule: &'static str, file: &str, line: usize, msg: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            file: file.into(),
            line,
            col: 5,
            len: 4,
            message: msg.into(),
            snippet: String::new(),
        }
    }

    #[test]
    fn round_trips_and_matches_exactly() {
        let d1 = diag("CC01", "crates/obs/src/sink.rs", 14, "bare `Mutex`");
        let d2 = diag("CC02", "crates/obs/src/clock.rs", 66, "`Ordering::Relaxed`");
        let text = render(&[d1.clone(), d2.clone()]);
        let base = Baseline::parse(&text).expect("parses");
        assert_eq!(base.len(), 2);
        assert!(base.covers(&d1) && base.covers(&d2));
        let mut moved = d1.clone();
        moved.line += 1;
        assert!(!base.covers(&moved), "a moved finding must not match");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let d1 = diag("CC01", "crates/b.rs", 2, "m");
        let d2 = diag("CC01", "crates/a.rs", 9, "m");
        let forward = render(&[d1.clone(), d2.clone()]);
        let reverse = render(&[d2, d1]);
        assert_eq!(forward, reverse);
        let a = forward.find("crates/a.rs").expect("a present");
        let b = forward.find("crates/b.rs").expect("b present");
        assert!(a < b, "entries must sort by file");
    }

    #[test]
    fn stale_entries_are_reported() {
        let gone = diag("CC01", "crates/obs/src/sink.rs", 99, "bare `Mutex`");
        let kept = diag("CC01", "crates/obs/src/sink.rs", 14, "bare `Mutex`");
        let base = Baseline::parse(&render(&[gone, kept.clone()])).expect("parses");
        let stale = base.stale(&[kept]);
        assert_eq!(stale, vec!["crates/obs/src/sink.rs:99:5 [CC01]"]);
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"suppressions\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"suppressions\": [42]}").is_err());
    }
}

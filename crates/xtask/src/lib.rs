//! Workspace static-analysis pass for the netaware workspace.
//!
//! `cargo run -p netaware-xtask -- lint` walks every library source file
//! and enforces the determinism & reproducibility lints catalogued in
//! [`rules::RuleId`]. The engine is a hand-rolled pipeline — `syn` is
//! unavailable offline: [`lexer`] produces a token stream with byte
//! spans, [`parser`] lifts it into the lightweight [`ast`] item tree,
//! and [`rules`] walks the tree so string/char contents are opaque,
//! comments never fire, `#[cfg(test)]` items are pruned at any nesting
//! depth, and context-sensitive rules (draws inside `Drop` impls,
//! sanctioned concurrency modules) see real item structure.
//!
//! A firing can be suppressed with an escape hatch comment:
//!
//! ```text
//! let t = peers.pop().unwrap(); // netaware-lint: allow(PA01) non-empty by the check above
//! ```
//!
//! The directive suppresses matches on its own line, or — when the
//! comment stands alone on a line — on the next line; when the next
//! line opens an item (`fn`, `impl`, `mod`, `struct`, `enum`, `trait`),
//! the whole item is covered. Pre-existing findings of newly-landed
//! warn-level rules live in `lint-baseline.json` (see [`baseline`]), so
//! the tree only ever gets cleaner.

pub mod ast;
pub mod baseline;
pub mod lexer;
pub mod parser;
pub mod perf;
pub mod rules;
pub mod sarif;

pub use rules::{RuleId, Severity};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One lint violation with its location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule code (`"ND01"`, …).
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Length in bytes of the offending token run.
    pub len: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trailing whitespace trimmed.
    pub snippet: String,
}

impl Diagnostic {
    /// Renders in the conventional `file:line:col: [RULE] message` shape,
    /// followed by the offending source line with a caret underline.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        );
        if !self.snippet.is_empty() {
            let n = self.line.to_string();
            let pad = " ".repeat(n.len());
            let offset = " ".repeat(self.col.saturating_sub(1));
            let width = self.len.max(1).min(
                self.snippet
                    .len()
                    .saturating_sub(self.col.saturating_sub(1))
                    .max(1),
            );
            let carets = "^".repeat(width);
            out.push_str(&format!(
                "\n  {n} | {}\n  {pad} | {offset}{carets}",
                self.snippet
            ));
        }
        out
    }

    fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Map(vec![
            (Value::Str("rule".into()), Value::Str(self.rule.into())),
            (
                Value::Str("severity".into()),
                Value::Str(self.severity.label().into()),
            ),
            (Value::Str("file".into()), Value::Str(self.file.clone())),
            (Value::Str("line".into()), Value::U64(self.line as u64)),
            (Value::Str("col".into()), Value::U64(self.col as u64)),
            (Value::Str("len".into()), Value::U64(self.len as u64)),
            (
                Value::Str("message".into()),
                Value::Str(self.message.clone()),
            ),
        ])
    }
}

/// An `// netaware-lint: allow(ID[, ID…])` directive found in a file.
struct AllowDirective {
    rules: Vec<RuleId>,
    /// The line the directive suppresses findings on.
    effective_line: usize,
    /// Whether the comment stood alone on its line (candidates for
    /// item-level scoping).
    standalone: bool,
}

/// Parses allow directives out of the token stream. A directive whose
/// comment shares a line with code suppresses that line; a directive
/// alone on its line suppresses the next line.
fn collect_allows(toks: &[lexer::Tok]) -> Vec<AllowDirective> {
    use lexer::TokKind;
    let mut code_lines: BTreeSet<usize> = BTreeSet::new();
    for t in toks {
        if !matches!(
            t.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        ) {
            code_lines.insert(t.line);
        }
    }
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(rules) = parse_allow_comment(&t.text) else {
            continue;
        };
        let standalone = !code_lines.contains(&t.line);
        // A standalone directive binds to the next line that holds code,
        // stepping over doc comments and blank lines between it and the
        // item or statement it covers.
        let effective_line = if standalone {
            code_lines
                .range(t.line + 1..)
                .next()
                .copied()
                .unwrap_or(t.line + 1)
        } else {
            t.line
        };
        out.push(AllowDirective {
            rules,
            effective_line,
            standalone,
        });
    }
    out
}

/// Extracts rule IDs from a comment carrying a `netaware-lint: allow(…)`
/// directive; `None` when the comment is not a directive.
fn parse_allow_comment(comment: &str) -> Option<Vec<RuleId>> {
    let idx = comment.find("netaware-lint:")?;
    let rest = comment[idx + "netaware-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let ids: Vec<RuleId> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter_map(RuleId::parse)
        .collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// Line ranges covered by item-level allow directives: a standalone
/// directive whose effective line is the first line of an item widens to
/// the item's whole line range.
fn item_allow_ranges(
    file: &ast::File,
    allows: &[AllowDirective],
) -> Vec<(Vec<RuleId>, (usize, usize))> {
    use ast::ItemKind;
    let mut out = Vec::new();
    for a in allows.iter().filter(|a| a.standalone) {
        file.walk(&mut |item, _| {
            let scopable = matches!(
                item.kind,
                ItemKind::Fn
                    | ItemKind::Impl { .. }
                    | ItemKind::Mod { .. }
                    | ItemKind::Struct
                    | ItemKind::Enum
                    | ItemKind::Union
                    | ItemKind::Trait
            );
            if scopable && item.lines.0 == a.effective_line {
                out.push((a.rules.clone(), item.lines));
            }
        });
    }
    out
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// used both for scope classification and in diagnostics.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let Some(scope) = rules::FileScope::classify(rel) else {
        return Vec::new();
    };
    let toks = lexer::lex(src);
    let allows = collect_allows(&toks);
    let file = parser::parse(&toks);
    let item_allows = item_allow_ranges(&file, &allows);
    let src_lines: Vec<&str> = src.lines().collect();
    let mut out: Vec<Diagnostic> = rules::check(&file, &scope)
        .into_iter()
        .filter(|f| {
            let line_allowed = allows
                .iter()
                .any(|a| a.effective_line == f.span.line && a.rules.contains(&f.rule));
            let item_allowed = item_allows.iter().any(|(rules, (lo, hi))| {
                (*lo..=*hi).contains(&f.span.line) && rules.contains(&f.rule)
            });
            !line_allowed && !item_allowed
        })
        .map(|f| Diagnostic {
            rule: f.rule.code(),
            severity: f.rule.severity(),
            file: rel.to_string(),
            line: f.span.line,
            col: f.span.col,
            len: f.span.hi.saturating_sub(f.span.lo),
            message: f.message,
            snippet: src_lines
                .get(f.span.line.saturating_sub(1))
                .map(|l| l.trim_end().to_string())
                .unwrap_or_default(),
        })
        .collect();
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files_under(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Returns every diagnostic
/// (baseline not applied) sorted by (file, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    if !root.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut files = Vec::new();
    rust_files_under(&root.join("crates"), &mut files)?;
    rust_files_under(&root.join("src"), &mut files)?;
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.extend(lint_source(&rel, &src));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(out)
}

/// A lint run's findings split by baseline suppression.
pub struct LintReport {
    /// Findings not covered by the baseline, sorted by (file, line, col).
    pub active: Vec<Diagnostic>,
    /// Findings suppressed by the baseline, in the same order.
    pub suppressed: Vec<Diagnostic>,
    /// Baseline entries that matched no finding (stale suppressions),
    /// rendered as `file:line:col [RULE]`.
    pub stale: Vec<String>,
}

impl LintReport {
    /// Active findings at deny severity.
    pub fn deny_count(&self) -> usize {
        self.active
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Active findings at warn severity.
    pub fn warn_count(&self) -> usize {
        self.active
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }
}

/// Splits findings by a baseline (`None` means everything is active).
pub fn apply_baseline(all: Vec<Diagnostic>, base: Option<&baseline::Baseline>) -> LintReport {
    let Some(base) = base else {
        return LintReport {
            active: all,
            suppressed: Vec::new(),
            stale: Vec::new(),
        };
    };
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for d in all {
        if base.covers(&d) {
            suppressed.push(d);
        } else {
            active.push(d);
        }
    }
    let stale = base.stale(&suppressed);
    LintReport {
        active,
        suppressed,
        stale,
    }
}

/// Renders the full run as a JSON report.
pub fn json_report(diags: &[Diagnostic]) -> String {
    use serde_json::Value;
    let report = Value::Map(vec![
        (
            Value::Str("violations".into()),
            Value::U64(diags.len() as u64),
        ),
        (Value::Str("clean".into()), Value::Bool(diags.is_empty())),
        (
            Value::Str("deny".into()),
            Value::U64(diags.iter().filter(|d| d.severity == Severity::Deny).count() as u64),
        ),
        (
            Value::Str("warn".into()),
            Value::U64(diags.iter().filter(|d| d.severity == Severity::Warn).count() as u64),
        ),
        (
            Value::Str("diagnostics".into()),
            Value::Seq(diags.iter().map(|d| d.to_json()).collect()),
        ),
    ]);
    // The report tree contains no floats, so printing cannot fail.
    serde_json::to_string_pretty(&report).unwrap_or_else(|e| format!("{{\"error\":\"{e:?}\"}}"))
}

/// Renders the lint catalogue as an aligned text table.
pub fn catalogue() -> String {
    let mut out = String::from("RULE   SEVERITY  SUMMARY\n");
    for rule in RuleId::all() {
        out.push_str(&format!(
            "{:<6} {:<9} {}\n",
            rule.code(),
            rule.severity().label(),
            rule.summary()
        ));
    }
    out.push_str(
        "\nSuppress a finding with `// netaware-lint: allow(<RULE>) <justification>` on the \
         offending line,\nalone on the line directly above it, or alone on the line above an \
         item header to cover the whole item.\nPre-existing warn-level findings are recorded in \
         lint-baseline.json (regenerate with --write-baseline).\n",
    );
    out
}

/// Renders the lint catalogue as JSON: `{"rules":[{id,severity,summary}]}`.
pub fn catalogue_json() -> String {
    use serde_json::Value;
    let rules: Vec<Value> = RuleId::all()
        .into_iter()
        .map(|r| {
            Value::Map(vec![
                (Value::Str("id".into()), Value::Str(r.code().into())),
                (
                    Value::Str("severity".into()),
                    Value::Str(r.severity().label().into()),
                ),
                (
                    Value::Str("summary".into()),
                    Value::Str(r.summary().into()),
                ),
            ])
        })
        .collect();
    let report = Value::Map(vec![(Value::Str("rules".into()), Value::Seq(rules))]);
    serde_json::to_string_pretty(&report).unwrap_or_else(|e| format!("{{\"error\":\"{e:?}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_parses_multiple_ids() {
        let ids = parse_allow_comment("// netaware-lint: allow(PA01, ND02) because reasons")
            .expect("directive parses");
        assert_eq!(ids, vec![RuleId::Pa01, RuleId::Nd02]);
    }

    #[test]
    fn unknown_ids_do_not_make_a_directive() {
        assert!(parse_allow_comment("// netaware-lint: allow(WAT99)").is_none());
        assert!(parse_allow_comment("// an ordinary comment").is_none());
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // netaware-lint: allow(PA01) checked by caller\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().all(|d| d.rule != "PA01"), "{diags:?}");
    }

    #[test]
    fn next_line_allow_suppresses() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // netaware-lint: allow(PA01) checked by caller\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().all(|d| d.rule != "PA01"), "{diags:?}");
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // netaware-lint: allow(ND01)\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().any(|d| d.rule == "PA01"), "{diags:?}");
    }

    #[test]
    fn item_level_allow_covers_the_whole_fn() {
        let src = "//! Docs.\n\n// netaware-lint: allow(PA01) prototype helper\npub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = y.expect(\"y\");\n    a + b\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(
            diags.iter().all(|d| d.rule != "PA01"),
            "item-level allow must cover line 5 and 6: {diags:?}"
        );
        // DOC01 still applies: the item-level allow names PA01 only.
        assert!(diags.iter().any(|d| d.rule == "DOC01"), "{diags:?}");
    }

    #[test]
    fn item_level_allow_stops_at_the_item_end() {
        let src = "//! Docs.\n\n// netaware-lint: allow(PA01)\n/// One.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\n/// Two.\npub fn g(y: Option<u32>) -> u32 {\n    y.unwrap()\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        let pa: Vec<_> = diags.iter().filter(|d| d.rule == "PA01").collect();
        assert_eq!(pa.len(), 1, "{diags:?}");
        assert_eq!(pa[0].line, 11);
    }

    #[test]
    fn item_level_allow_covers_an_impl_block() {
        let src = "//! Docs.\n\npub struct S;\n\n// netaware-lint: allow(PA01) invariants hold by construction\nimpl S {\n    fn a(x: Option<u32>) -> u32 { x.unwrap() }\n    fn b(y: Option<u32>) -> u32 { y.unwrap() }\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().all(|d| d.rule != "PA01"), "{diags:?}");
    }

    #[test]
    fn standalone_allow_does_not_scope_to_statements_below_items() {
        // Standalone directive above a *statement* keeps next-line-only
        // behaviour: the second unwrap two lines down still fires.
        let src = "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // netaware-lint: allow(PA01)\n    let a = x.unwrap();\n    let b = y.unwrap();\n    a + b\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        let pa: Vec<_> = diags.iter().filter(|d| d.rule == "PA01").collect();
        assert_eq!(pa.len(), 1, "{diags:?}");
        assert_eq!(pa[0].line, 4);
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let src = "pub fn f() { std::collections::HashMap::<u8, u8>::new(); }";
        assert!(lint_source("crates/net/tests/it.rs", src).is_empty());
        assert!(lint_source("vendor/serde/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/net/benches/b.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "//! Docs.\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_carry_spans() {
        let src = "//! Docs.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        let pa = diags.iter().find(|d| d.rule == "PA01").expect("PA01 fires");
        assert_eq!((pa.line, pa.col), (3, 7));
        assert!(pa.render().starts_with("crates/net/src/demo.rs:3:7: [PA01]"));
    }

    #[test]
    fn render_underlines_the_offending_token() {
        let src = "//! Docs.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        let pa = diags.iter().find(|d| d.rule == "PA01").expect("PA01 fires");
        let rendered = pa.render();
        assert!(rendered.contains("3 |     x.unwrap()"), "{rendered}");
        assert!(rendered.contains("|       ^^^^^^"), "{rendered}");
    }

    #[test]
    fn doc01_accepts_documented_items() {
        let src = "//! Mod docs.\n\n/// Documented.\npub fn f() {}\n\n/// Documented.\n#[derive(Debug)]\npub struct S {\n    /// Documented field.\n    pub x: u32,\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn doc01_flags_undocumented_pub() {
        let src = "//! Mod docs.\npub fn naked() {}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "DOC01" && d.message.contains("naked")),
            "{diags:?}"
        );
    }

    #[test]
    fn catalogue_lists_every_rule() {
        let table = catalogue();
        for rule in RuleId::all() {
            assert!(table.contains(rule.code()), "{table}");
        }
    }
}

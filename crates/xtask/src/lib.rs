//! Workspace static-analysis pass for the netaware workspace.
//!
//! `cargo run -p netaware-xtask -- lint` walks every library source file
//! and enforces the determinism & reproducibility lints catalogued in
//! [`rules::RuleId`]. The walker is lexical — a token stream with spans,
//! not a syntax tree — because `syn` is unavailable offline; the rules
//! are designed to be robust at that level (string/char contents are
//! opaque, comments and `#[cfg(test)]` modules are excluded).
//!
//! A firing can be suppressed with an escape hatch comment:
//!
//! ```text
//! let t = peers.pop().unwrap(); // netaware-lint: allow(PA01) non-empty by the check above
//! ```
//!
//! The directive suppresses matches on its own line, or — when the
//! comment stands alone on a line — on the next line.

pub mod lexer;
pub mod rules;

pub use rules::RuleId;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One lint violation with its location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule code (`"ND01"`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders in the conventional `file:line:col: [RULE] message` shape.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Map(vec![
            (
                serde_json::Value::Str("rule".into()),
                serde_json::Value::Str(self.rule.into()),
            ),
            (
                serde_json::Value::Str("file".into()),
                serde_json::Value::Str(self.file.clone()),
            ),
            (
                serde_json::Value::Str("line".into()),
                serde_json::Value::U64(self.line as u64),
            ),
            (
                serde_json::Value::Str("col".into()),
                serde_json::Value::U64(self.col as u64),
            ),
            (
                serde_json::Value::Str("message".into()),
                serde_json::Value::Str(self.message.clone()),
            ),
        ])
    }
}

/// An `// netaware-lint: allow(ID[, ID…])` directive found in a file.
struct AllowDirective {
    rules: Vec<RuleId>,
    /// The line the directive suppresses findings on.
    effective_line: usize,
}

/// Parses allow directives out of the token stream. A directive whose
/// comment shares a line with code suppresses that line; a directive
/// alone on its line suppresses the next line.
fn collect_allows(toks: &[lexer::Tok]) -> Vec<AllowDirective> {
    use lexer::TokKind;
    let mut code_lines: BTreeSet<usize> = BTreeSet::new();
    for t in toks {
        if !matches!(
            t.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        ) {
            code_lines.insert(t.line);
        }
    }
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(rules) = parse_allow_comment(&t.text) else {
            continue;
        };
        let effective_line = if code_lines.contains(&t.line) {
            t.line
        } else {
            t.line + 1
        };
        out.push(AllowDirective {
            rules,
            effective_line,
        });
    }
    out
}

/// Extracts rule IDs from a comment carrying a `netaware-lint: allow(…)`
/// directive; `None` when the comment is not a directive.
fn parse_allow_comment(comment: &str) -> Option<Vec<RuleId>> {
    let idx = comment.find("netaware-lint:")?;
    let rest = comment[idx + "netaware-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let ids: Vec<RuleId> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter_map(RuleId::parse)
        .collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// used both for scope classification and in diagnostics.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let Some(scope) = rules::FileScope::classify(rel) else {
        return Vec::new();
    };
    let toks = lexer::lex(src);
    let allows = collect_allows(&toks);
    let mut out: Vec<Diagnostic> = rules::check(&toks, &scope)
        .into_iter()
        .filter(|f| {
            !allows
                .iter()
                .any(|a| a.effective_line == f.line && a.rules.contains(&f.rule))
        })
        .map(|f| Diagnostic {
            rule: f.rule.code(),
            file: rel.to_string(),
            line: f.line,
            col: f.col,
            message: f.message,
        })
        .collect();
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files_under(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Returns diagnostics sorted
/// by (file, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    if !root.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut files = Vec::new();
    rust_files_under(&root.join("crates"), &mut files)?;
    rust_files_under(&root.join("src"), &mut files)?;
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.extend(lint_source(&rel, &src));
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Ok(out)
}

/// Renders the full run as a JSON report.
pub fn json_report(diags: &[Diagnostic]) -> String {
    let report = serde_json::Value::Map(vec![
        (
            serde_json::Value::Str("violations".into()),
            serde_json::Value::U64(diags.len() as u64),
        ),
        (
            serde_json::Value::Str("clean".into()),
            serde_json::Value::Bool(diags.is_empty()),
        ),
        (
            serde_json::Value::Str("diagnostics".into()),
            serde_json::Value::Seq(diags.iter().map(|d| d.to_json()).collect()),
        ),
    ]);
    // The report tree contains no floats, so printing cannot fail.
    serde_json::to_string_pretty(&report).unwrap_or_else(|e| format!("{{\"error\":\"{e:?}\"}}"))
}

/// Renders the lint catalogue as an aligned text table.
pub fn catalogue() -> String {
    let mut out = String::from("RULE   SUMMARY\n");
    for rule in RuleId::all() {
        out.push_str(&format!("{:<6} {}\n", rule.code(), rule.summary()));
    }
    out.push_str(
        "\nSuppress a finding with `// netaware-lint: allow(<RULE>) <justification>` on the \
         offending line,\nor alone on the line directly above it.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_parses_multiple_ids() {
        let ids = parse_allow_comment("// netaware-lint: allow(PA01, ND02) because reasons")
            .expect("directive parses");
        assert_eq!(ids, vec![RuleId::Pa01, RuleId::Nd02]);
    }

    #[test]
    fn unknown_ids_do_not_make_a_directive() {
        assert!(parse_allow_comment("// netaware-lint: allow(WAT99)").is_none());
        assert!(parse_allow_comment("// an ordinary comment").is_none());
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // netaware-lint: allow(PA01) checked by caller\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().all(|d| d.rule != "PA01"), "{diags:?}");
    }

    #[test]
    fn next_line_allow_suppresses() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // netaware-lint: allow(PA01) checked by caller\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().all(|d| d.rule != "PA01"), "{diags:?}");
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // netaware-lint: allow(ND01)\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.iter().any(|d| d.rule == "PA01"), "{diags:?}");
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let src = "pub fn f() { std::collections::HashMap::<u8, u8>::new(); }";
        assert!(lint_source("crates/net/tests/it.rs", src).is_empty());
        assert!(lint_source("vendor/serde/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/net/benches/b.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "//! Docs.\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_carry_spans() {
        let src = "//! Docs.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        let pa = diags
            .iter()
            .find(|d| d.rule == "PA01")
            .expect("PA01 fires");
        assert_eq!((pa.line, pa.col), (3, 7));
        assert!(pa.render().starts_with("crates/net/src/demo.rs:3:7: [PA01]"));
    }

    #[test]
    fn doc01_accepts_documented_items() {
        let src = "//! Mod docs.\n\n/// Documented.\npub fn f() {}\n\n/// Documented.\n#[derive(Debug)]\npub struct S {\n    /// Documented field.\n    pub x: u32,\n}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn doc01_flags_undocumented_pub() {
        let src = "//! Mod docs.\npub fn naked() {}\n";
        let diags = lint_source("crates/net/src/demo.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == "DOC01" && d.message.contains("naked")),
            "{diags:?}"
        );
    }

    #[test]
    fn catalogue_lists_every_rule() {
        let table = catalogue();
        for rule in RuleId::all() {
            assert!(table.contains(rule.code()), "{table}");
        }
    }
}

//! Randomized property tests for the network substrate, driven by a
//! seeded [`DetRng`] so every run explores the same cases.

use netaware_net::{
    hash, hops_from_ttl, ttl_at_receiver, AddressAllocator, AsId, AsInfo, AsKind, CountryCode,
    GeoRegistry, GeoRegistryBuilder, Ip, LatencyModel, PathModel, Prefix,
};
use netaware_sim::DetRng;

const CASES: usize = 256;

fn registry() -> GeoRegistry {
    let mut b = GeoRegistryBuilder::new();
    b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "A"));
    b.register_as(AsInfo::new(2, CountryCode::CN, AsKind::Carrier, "B"));
    b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(1))
        .unwrap();
    b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(2))
        .unwrap();
    b.build()
}

/// A prefix contains exactly the addresses sharing its masked bits.
#[test]
fn prefix_membership() {
    let mut rng = DetRng::stream(0xBADC0DE, "net/prefix_membership");
    for _ in 0..CASES {
        let base = rng.next_u64() as u32;
        let len: u8 = rng.range(0..=32u8);
        let probe = rng.next_u64() as u32;
        let p = Prefix::new_truncating(base, len);
        let member = (probe & Prefix::mask(len)) == p.first().0;
        assert_eq!(p.contains(Ip(probe)), member);
        // First/last are always members.
        assert!(p.contains(p.first()));
        assert!(p.contains(p.last()));
    }
}

/// `covers` is a partial order consistent with `contains`.
#[test]
fn covers_consistent() {
    let mut rng = DetRng::stream(0xBADC0DE, "net/covers_consistent");
    for _ in 0..CASES {
        let a = Prefix::new_truncating(rng.next_u64() as u32, rng.range(0..=32u8));
        let b = Prefix::new_truncating(rng.next_u64() as u32, rng.range(0..=32u8));
        if a.covers(b) {
            assert!(a.contains(b.first()));
            assert!(a.contains(b.last()));
            assert!(a.len() <= b.len());
        }
    }
}

/// Dense and scattered allocators both yield unique in-prefix hosts and
/// agree on capacity.
#[test]
fn allocators_unique() {
    let mut rng = DetRng::stream(0xBADC0DE, "net/allocators_unique");
    for _ in 0..16 {
        let seed = rng.next_u64();
        let len: u8 = rng.range(20..=28u8);
        let p = Prefix::of(Ip::from_octets(10, 7, 0, 0), len);
        for mut alloc in [AddressAllocator::dense(p), AddressAllocator::scattered(p, seed)] {
            let cap = alloc.capacity();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..cap {
                let ip = alloc.next_ip().unwrap();
                assert!(p.contains(ip));
                assert!(seen.insert(ip));
                // Network/broadcast never handed out on classic subnets.
                assert_ne!(ip, p.first());
                assert_ne!(ip, p.last());
            }
            assert!(alloc.next_ip().is_err());
        }
    }
}

/// TTL encoding round-trips for every plausible hop count.
#[test]
fn ttl_roundtrip() {
    for hops in 0u8..=127 {
        assert_eq!(hops_from_ttl(ttl_at_receiver(hops)), Some(hops));
    }
}

/// Hop counts are deterministic, bounded, and zero exactly on the same
/// subnet.
#[test]
fn hops_bounded_and_deterministic() {
    let reg = registry();
    let mut rng = DetRng::stream(0xBADC0DE, "net/hops_bounded");
    for _ in 0..CASES {
        let m = PathModel::new(rng.next_u64());
        let a = Ip(rng.next_u64() as u32);
        let b = Ip(rng.next_u64() as u32);
        let h1 = m.hops(&reg, a, b);
        let h2 = m.hops(&reg, a, b);
        assert_eq!(h1, h2);
        assert!(h1 <= 64);
        if a.same_subnet(b) {
            assert_eq!(h1, 0);
        } else {
            assert!(h1 >= 1);
        }
    }
}

/// Forward and reverse hop counts stay within the modelled asymmetry
/// bound.
#[test]
fn hop_asymmetry_bounded() {
    let reg = registry();
    let mut rng = DetRng::stream(0xBADC0DE, "net/hop_asymmetry");
    for _ in 0..CASES {
        let m = PathModel::new(rng.next_u64());
        let a = Ip(rng.next_u64() as u32);
        let b = Ip(rng.next_u64() as u32);
        let f = m.hops(&reg, a, b) as i32;
        let r = m.hops(&reg, b, a) as i32;
        assert!((f - r).abs() <= 6, "f={f} r={r}");
    }
}

/// Latency is deterministic, positive, and nearly symmetric.
#[test]
fn latency_sane() {
    let reg = registry();
    let mut rng = DetRng::stream(0xBADC0DE, "net/latency_sane");
    for _ in 0..CASES {
        let m = LatencyModel::new(rng.next_u64());
        let a = rng.next_u64() as u32;
        let b = rng.next_u64() as u32;
        if a == b {
            continue;
        }
        let f = m.one_way_us(&reg, Ip(a), Ip(b));
        assert_eq!(f, m.one_way_us(&reg, Ip(a), Ip(b)));
        assert!(f >= 100);
        assert!(f < 1_000_000, "one-way {f}µs");
        let r = m.one_way_us(&reg, Ip(b), Ip(a));
        let ratio = f as f64 / r as f64;
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }
}

/// The mixing primitives stay in range.
#[test]
fn hash_ranges() {
    let mut rng = DetRng::stream(0xBADC0DE, "net/hash_ranges");
    for _ in 0..CASES {
        let x = rng.next_u64();
        let lo: u32 = rng.range(0..1000u32);
        let span: u32 = rng.range(0..1000u32);
        let hi = lo + span;
        let v = hash::ranged(x, lo, hi);
        assert!((lo..=hi).contains(&v));
        let u = hash::unit(x);
        assert!((0.0..1.0).contains(&u));
    }
}

/// Registry lookups agree with the announcing prefix.
#[test]
fn registry_lookup_sound() {
    let reg = registry();
    let mut rng = DetRng::stream(0xBADC0DE, "net/registry_lookup");
    for _ in 0..CASES {
        let ip = rng.next_u64() as u32;
        match reg.as_of(Ip(ip)) {
            Some(AsId(1)) => {
                assert!(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16).contains(Ip(ip)))
            }
            Some(AsId(2)) => {
                assert!(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8).contains(Ip(ip)))
            }
            Some(other) => panic!("unexpected {other}"),
            None => {
                assert!(!Prefix::of(Ip::from_octets(130, 192, 0, 0), 16).contains(Ip(ip)));
                assert!(!Prefix::of(Ip::from_octets(58, 0, 0, 0), 8).contains(Ip(ip)));
            }
        }
    }
}

#[test]
fn registry_serde_roundtrip_with_reindex() {
    let reg = registry();
    let js = serde_json::to_string(&reg).unwrap();
    let mut back: GeoRegistry = serde_json::from_str(&js).unwrap();
    // The AS index is skipped during (de)serialisation and must be rebuilt.
    back.reindex();
    let probe = Ip::from_octets(130, 192, 9, 9);
    assert_eq!(back.as_of(probe), reg.as_of(probe));
    assert_eq!(
        back.info(AsId(1)).map(|i| i.country),
        reg.info(AsId(1)).map(|i| i.country)
    );
    assert_eq!(back.prefixes(), reg.prefixes());
}

//! Property tests for the network substrate.

use netaware_net::{
    hash, hops_from_ttl, ttl_at_receiver, AddressAllocator, AsId, AsInfo, AsKind, CountryCode,
    GeoRegistry, GeoRegistryBuilder, Ip, LatencyModel, PathModel, Prefix,
};
use proptest::prelude::*;

fn registry() -> GeoRegistry {
    let mut b = GeoRegistryBuilder::new();
    b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "A"));
    b.register_as(AsInfo::new(2, CountryCode::CN, AsKind::Carrier, "B"));
    b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(1))
        .unwrap();
    b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(2))
        .unwrap();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A prefix contains exactly the addresses sharing its masked bits.
    #[test]
    fn prefix_membership(base in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
        let p = Prefix::new_truncating(base, len);
        let member = (probe & Prefix::mask(len)) == p.first().0;
        prop_assert_eq!(p.contains(Ip(probe)), member);
        // First/last are always members; size matches the mask width.
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
    }

    /// `covers` is a partial order consistent with `contains`.
    #[test]
    fn covers_consistent(a_base in any::<u32>(), a_len in 0u8..=32,
                         b_base in any::<u32>(), b_len in 0u8..=32) {
        let a = Prefix::new_truncating(a_base, a_len);
        let b = Prefix::new_truncating(b_base, b_len);
        if a.covers(b) {
            prop_assert!(a.contains(b.first()));
            prop_assert!(a.contains(b.last()));
            prop_assert!(a.len() <= b.len());
        }
    }

    /// Dense and scattered allocators both yield unique in-prefix hosts
    /// and agree on capacity.
    #[test]
    fn allocators_unique(seed in any::<u64>(), len in 20u8..=28) {
        let p = Prefix::of(Ip::from_octets(10, 7, 0, 0), len);
        for mut alloc in [AddressAllocator::dense(p), AddressAllocator::scattered(p, seed)] {
            let cap = alloc.capacity();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..cap {
                let ip = alloc.next_ip().unwrap();
                prop_assert!(p.contains(ip));
                prop_assert!(seen.insert(ip));
                // Network/broadcast never handed out on classic subnets.
                prop_assert_ne!(ip, p.first());
                prop_assert_ne!(ip, p.last());
            }
            prop_assert!(alloc.next_ip().is_err());
        }
    }

    /// TTL encoding round-trips for every plausible hop count.
    #[test]
    fn ttl_roundtrip(hops in 0u8..=127) {
        prop_assert_eq!(hops_from_ttl(ttl_at_receiver(hops)), Some(hops));
    }

    /// Hop counts are deterministic, bounded, and zero exactly on the
    /// same subnet.
    #[test]
    fn hops_bounded_and_deterministic(seed in any::<u64>(), a in any::<u32>(), b in any::<u32>()) {
        let reg = registry();
        let m = PathModel::new(seed);
        let (a, b) = (Ip(a), Ip(b));
        let h1 = m.hops(&reg, a, b);
        let h2 = m.hops(&reg, a, b);
        prop_assert_eq!(h1, h2);
        prop_assert!(h1 <= 64);
        if a.same_subnet(b) {
            prop_assert_eq!(h1, 0);
        } else {
            prop_assert!(h1 >= 1);
        }
    }

    /// Forward and reverse hop counts stay within the modelled asymmetry
    /// bound.
    #[test]
    fn hop_asymmetry_bounded(seed in any::<u64>(), a in any::<u32>(), b in any::<u32>()) {
        let reg = registry();
        let m = PathModel::new(seed);
        let f = m.hops(&reg, Ip(a), Ip(b)) as i32;
        let r = m.hops(&reg, Ip(b), Ip(a)) as i32;
        prop_assert!((f - r).abs() <= 6, "f={f} r={r}");
    }

    /// Latency is deterministic, positive, and nearly symmetric.
    #[test]
    fn latency_sane(seed in any::<u64>(), a in any::<u32>(), b in any::<u32>()) {
        prop_assume!(a != b);
        let reg = registry();
        let m = LatencyModel::new(seed);
        let f = m.one_way_us(&reg, Ip(a), Ip(b));
        prop_assert_eq!(f, m.one_way_us(&reg, Ip(a), Ip(b)));
        prop_assert!(f >= 100);
        prop_assert!(f < 1_000_000, "one-way {f}µs");
        let r = m.one_way_us(&reg, Ip(b), Ip(a));
        let ratio = f as f64 / r as f64;
        prop_assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }

    /// The mixing primitives stay in range.
    #[test]
    fn hash_ranges(x in any::<u64>(), lo in 0u32..1000, span in 0u32..1000) {
        let hi = lo + span;
        let v = hash::ranged(x, lo, hi);
        prop_assert!((lo..=hi).contains(&v));
        let u = hash::unit(x);
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// Registry lookups agree with the announcing prefix.
    #[test]
    fn registry_lookup_sound(ip in any::<u32>()) {
        let reg = registry();
        match reg.as_of(Ip(ip)) {
            Some(AsId(1)) => prop_assert!(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16).contains(Ip(ip))),
            Some(AsId(2)) => prop_assert!(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8).contains(Ip(ip))),
            Some(other) => prop_assert!(false, "unexpected {other}"),
            None => {
                prop_assert!(!Prefix::of(Ip::from_octets(130, 192, 0, 0), 16).contains(Ip(ip)));
                prop_assert!(!Prefix::of(Ip::from_octets(58, 0, 0, 0), 8).contains(Ip(ip)));
            }
        }
    }
}

#[test]
fn registry_serde_roundtrip_with_reindex() {
    let reg = registry();
    let js = serde_json::to_string(&reg).unwrap();
    let mut back: GeoRegistry = serde_json::from_str(&js).unwrap();
    // The AS index is skipped during (de)serialisation and must be rebuilt.
    back.reindex();
    let probe = Ip::from_octets(130, 192, 9, 9);
    assert_eq!(back.as_of(probe), reg.as_of(probe));
    assert_eq!(
        back.info(AsId(1)).map(|i| i.country),
        reg.info(AsId(1)).map(|i| i.country)
    );
    assert_eq!(back.prefixes(), reg.prefixes());
}

//! Deterministic mixing functions.
//!
//! The path and latency models need stable pseudo-random values per
//! endpoint pair without carrying RNG state: `mix64` is the SplitMix64
//! finalizer, a bijective avalanche mix that turns structured inputs
//! (AS numbers, IPs) into uniformly scattered 64-bit values. Being a pure
//! function of its input, it keeps every derived quantity reproducible.

/// SplitMix64 finalizer: bijective 64-bit avalanche mix.
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes two values into one (order-sensitive, for directional paths).
#[inline]
pub const fn mix2(a: u64, b: u64) -> u64 {
    mix64(mix64(a) ^ b.rotate_left(32))
}

/// A value in `[lo, hi]` (inclusive) derived deterministically from `x`.
#[inline]
pub fn ranged(x: u64, lo: u32, hi: u32) -> u32 {
    debug_assert!(lo <= hi);
    let span = (hi - lo + 1) as u64;
    lo + (mix64(x) % span) as u32
}

/// A uniform float in `[0, 1)` derived deterministically from `x`.
#[inline]
pub fn unit(x: u64) -> f64 {
    // 53 mantissa bits of the mixed value.
    (mix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn mix64_avalanches_adjacent_inputs() {
        // Adjacent inputs should differ in many output bits.
        let d = (mix64(1000) ^ mix64(1001)).count_ones();
        assert!(d > 16, "only {d} differing bits");
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_eq!(mix2(1, 2), mix2(1, 2));
    }

    #[test]
    fn ranged_respects_bounds() {
        for x in 0..10_000u64 {
            let v = ranged(x, 3, 7);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn ranged_hits_every_value() {
        let mut seen = [false; 5];
        for x in 0..1_000u64 {
            seen[(ranged(x, 10, 14) - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ranged_degenerate_interval() {
        assert_eq!(ranged(99, 5, 5), 5);
    }

    #[test]
    fn unit_in_half_open_interval() {
        for x in 0..10_000u64 {
            let v = unit(x);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(unit).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! # netaware-net — AS-level Internet substrate
//!
//! This crate models the slice of the Internet that the NAPA-WINE
//! measurement study (Ciullo et al., IPDPS 2009) observes through packet
//! traces: IPv4 addressing, Autonomous Systems and their country
//! geolocation, access-link classes (institution LANs, DSL, CATV) with
//! NAT/firewall flags, and a deterministic inter-AS path model that yields
//! per-direction router hop counts (Internet paths are asymmetric) and
//! one-way propagation delays.
//!
//! Everything here is *deterministic*: the same registry and the same pair
//! of endpoints always produce the same hop count, delay, and TTL, so
//! simulation runs are reproducible byte-for-byte.
//!
//! The five network properties the paper's analysis framework measures map
//! directly onto this crate:
//!
//! | paper metric | provided by |
//! |---|---|
//! | `BW`  (access capacity)     | [`AccessLink`] rates |
//! | `AS`  (autonomous system)   | [`GeoRegistry::as_of`] |
//! | `CC`  (country)             | [`GeoRegistry::country_of`] |
//! | `NET` (same subnet)         | [`Ip::same_subnet`] |
//! | `HOP` (router distance)     | [`PathModel::hops`] |

#![warn(missing_docs)]

pub mod access;
pub mod alloc;
pub mod asn;
pub mod country;
pub mod error;
pub mod hash;
pub mod ip;
pub mod latency;
pub mod path;
pub mod registry;
pub mod ttl;

pub use access::{AccessClass, AccessLink};
pub use alloc::AddressAllocator;
pub use asn::{AsId, AsInfo, AsKind};
pub use country::CountryCode;
pub use error::NetError;
pub use ip::{Ip, Prefix};
pub use latency::LatencyModel;
pub use path::PathModel;
pub use registry::{GeoRegistry, GeoRegistryBuilder};
pub use ttl::{hops_from_ttl, ttl_at_receiver, DEFAULT_TTL};

//! One-way propagation delay model.
//!
//! Delay does not enter the paper's analysis directly (RTT "is very hard
//! to infer passively"), but it shapes the traffic the analysis sees: how
//! fast chunk requests round-trip determines who gets asked again, and
//! packet timestamps in the traces embed it. Values follow typical 2008
//! geographies: sub-millisecond LANs, a few ms nationally, tens of ms
//! across Europe, 120+ ms Europe↔China.

use crate::country::Region;
use crate::hash::{mix2, unit};
use crate::ip::Ip;
use crate::registry::GeoRegistry;

/// One-way delay in microseconds, as a pure function of the endpoint pair.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    seed: u64,
}

impl LatencyModel {
    /// Creates the model; delays depend only on `(seed, src, dst)`.
    pub const fn new(seed: u64) -> Self {
        LatencyModel { seed }
    }

    /// One-way propagation delay `src → dst` in microseconds.
    ///
    /// Symmetric in expectation with a small directional jitter, like the
    /// hop model.
    pub fn one_way_us(&self, reg: &GeoRegistry, src: Ip, dst: Ip) -> u64 {
        if src.same_subnet(dst) {
            return 100; // LAN: 0.1 ms
        }
        let (lo, hi) = if src.0 <= dst.0 { (src, dst) } else { (dst, src) };
        let sym = mix2(self.seed ^ lo.0 as u64, hi.0 as u64);
        let dir = mix2(self.seed ^ src.0 as u64, dst.0 as u64);

        let (base_us, spread_us) = match (reg.as_of(src), reg.as_of(dst)) {
            (Some(a), Some(b)) if a == b => (2_000, 6_000),
            (Some(a), Some(b)) => {
                let ra = reg.info(a).map(|i| i.country.region());
                let rb = reg.info(b).map(|i| i.country.region());
                match (ra, rb) {
                    (Some(x), Some(y)) if x.same(y) => match x {
                        Region::Europe => (8_000, 22_000),
                        Region::Asia => (10_000, 40_000),
                        _ => (10_000, 50_000),
                    },
                    (Some(Region::Europe), Some(Region::Asia))
                    | (Some(Region::Asia), Some(Region::Europe)) => (110_000, 60_000),
                    _ => (80_000, 60_000),
                }
            }
            _ => (60_000, 80_000),
        };
        let jitter = 1.0 + 0.05 * (unit(dir) - 0.5); // ±2.5% directional
        ((base_us as f64 + unit(sym) * spread_us as f64) * jitter) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::{AsId, AsInfo, AsKind};
    use crate::country::CountryCode;
    use crate::ip::Prefix;
    use crate::registry::GeoRegistryBuilder;

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(2, CountryCode::FR, AsKind::Academic, "RENATER"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(1))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(137, 194, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn lan_is_100us() {
        let m = LatencyModel::new(1);
        let r = reg();
        assert_eq!(
            m.one_way_us(&r, Ip::from_octets(130, 192, 1, 1), Ip::from_octets(130, 192, 1, 2)),
            100
        );
    }

    #[test]
    fn hierarchy_of_delays() {
        let m = LatencyModel::new(1);
        let r = reg();
        let intra_as = m.one_way_us(
            &r,
            Ip::from_octets(130, 192, 1, 1),
            Ip::from_octets(130, 192, 99, 2),
        );
        let eu_eu = m.one_way_us(
            &r,
            Ip::from_octets(130, 192, 1, 1),
            Ip::from_octets(137, 194, 3, 4),
        );
        let eu_cn = m.one_way_us(
            &r,
            Ip::from_octets(130, 192, 1, 1),
            Ip::from_octets(58, 9, 9, 9),
        );
        assert!(intra_as < eu_eu, "{intra_as} !< {eu_eu}");
        assert!(eu_eu < eu_cn, "{eu_eu} !< {eu_cn}");
        assert!(eu_cn >= 100_000, "EU-CN {eu_cn}us");
    }

    #[test]
    fn deterministic_and_nearly_symmetric() {
        let m = LatencyModel::new(5);
        let r = reg();
        let a = Ip::from_octets(130, 192, 1, 1);
        let b = Ip::from_octets(58, 9, 9, 9);
        let f = m.one_way_us(&r, a, b);
        assert_eq!(f, m.one_way_us(&r, a, b));
        let rev = m.one_way_us(&r, b, a);
        let ratio = f as f64 / rev as f64;
        assert!((0.9..1.1).contains(&ratio), "asymmetry ratio {ratio}");
    }

    #[test]
    fn unregistered_hosts_get_plausible_delay() {
        let m = LatencyModel::new(5);
        let r = reg();
        let d = m.one_way_us(&r, Ip::from_octets(99, 0, 0, 1), Ip::from_octets(98, 0, 0, 1));
        assert!((60_000..=150_000).contains(&d), "{d}");
    }
}

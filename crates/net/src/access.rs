//! Access-link classes.
//!
//! Table I of the paper lists the access types of the 44 probes:
//! institution "high-bw" LANs plus home DSL/CATV lines like `6/0.512`
//! (6 Mb/s down, 512 kb/s up), some behind NAT and/or firewalls. The BW
//! preferential partition of the analysis classifies a path as
//! high-bandwidth when a 1250-byte packet serialises in under 1 ms, i.e.
//! when the bottleneck exceeds 10 Mb/s — institution LANs qualify,
//! DSL/CATV do not.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bits per second.
pub type Bps = u64;

/// One megabit per second.
pub const MBPS: Bps = 1_000_000;

/// The capacity above which the paper's BW partition calls a peer
/// "high-bandwidth" (1250 B in < 1 ms ⇒ > 10 Mb/s).
pub const HIGH_BW_THRESHOLD: Bps = 10 * MBPS;

/// Named access classes appearing in Table I plus the classes used for the
/// synthetic external population.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessClass {
    /// Institution LAN (≥100 Mb/s both ways) — "high-bw" in Table I.
    Lan,
    /// ADSL with the given down/up rates in kb/s (e.g. `Dsl(6000, 512)`).
    Dsl(u32, u32),
    /// Cable TV access, down/up in kb/s.
    Catv(u32, u32),
    /// Fast fiber/ethernet home access (for the synthetic population tail).
    Fiber(u32, u32),
}

impl AccessClass {
    /// Downstream capacity in bits per second.
    pub const fn down_bps(self) -> Bps {
        match self {
            AccessClass::Lan => 100 * MBPS,
            AccessClass::Dsl(d, _) | AccessClass::Catv(d, _) | AccessClass::Fiber(d, _) => {
                d as Bps * 1000
            }
        }
    }

    /// Upstream capacity in bits per second.
    pub const fn up_bps(self) -> Bps {
        match self {
            AccessClass::Lan => 100 * MBPS,
            AccessClass::Dsl(_, u) | AccessClass::Catv(_, u) | AccessClass::Fiber(_, u) => {
                u as Bps * 1000
            }
        }
    }

    /// `true` when the *upstream* exceeds the paper's 10 Mb/s BW
    /// threshold — this is the direction the analysis can observe, since
    /// capacity is inferred from packets the peer sends.
    pub const fn is_high_bw(self) -> bool {
        self.up_bps() > HIGH_BW_THRESHOLD
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessClass::Lan => write!(f, "high-bw"),
            AccessClass::Dsl(d, u) => write!(f, "DSL {}/{}", kbps_label(*d), kbps_label(*u)),
            AccessClass::Catv(d, u) => write!(f, "CATV {}/{}", kbps_label(*d), kbps_label(*u)),
            AccessClass::Fiber(d, u) => write!(f, "FTTH {}/{}", kbps_label(*d), kbps_label(*u)),
        }
    }
}

fn kbps_label(kbps: u32) -> String {
    if kbps >= 1000 && kbps.is_multiple_of(100) {
        let mb = kbps as f64 / 1000.0;
        if (mb - mb.round()).abs() < 1e-9 {
            format!("{}", mb.round() as u64)
        } else {
            format!("{mb}")
        }
    } else {
        format!("0.{kbps:03}")
    }
}

/// A host's attachment to the network: capacity plus the reachability
/// constraints (NAT/firewall) that shape who can open connections to it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AccessLink {
    /// Capacity class.
    pub class: AccessClass,
    /// Behind a NAT: inbound sessions need the host to have sent first
    /// (hole punching), as for several Table I home peers.
    pub nat: bool,
    /// Behind a firewall dropping unsolicited inbound (ENST site hosts).
    pub firewall: bool,
}

impl AccessLink {
    /// An open institution LAN link.
    pub const fn lan() -> Self {
        AccessLink {
            class: AccessClass::Lan,
            nat: false,
            firewall: false,
        }
    }

    /// An arbitrary link with no middleboxes.
    pub const fn open(class: AccessClass) -> Self {
        AccessLink {
            class,
            nat: false,
            firewall: false,
        }
    }

    /// Marks the link as NATted.
    pub const fn with_nat(mut self) -> Self {
        self.nat = true;
        self
    }

    /// Marks the link as firewalled.
    pub const fn with_firewall(mut self) -> Self {
        self.firewall = true;
        self
    }

    /// Whether a fresh *inbound* session from an unknown remote can reach
    /// this host.
    pub const fn accepts_unsolicited(self) -> bool {
        !self.nat && !self.firewall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_is_high_bw() {
        assert!(AccessClass::Lan.is_high_bw());
        assert_eq!(AccessClass::Lan.up_bps(), 100 * MBPS);
    }

    #[test]
    fn dsl_is_low_bw() {
        // Table I: "DSL 6/0.512".
        let dsl = AccessClass::Dsl(6000, 512);
        assert_eq!(dsl.down_bps(), 6 * MBPS);
        assert_eq!(dsl.up_bps(), 512_000);
        assert!(!dsl.is_high_bw());
    }

    #[test]
    fn fast_dsl_down_still_low_up() {
        // Table I ENST home: "DSL 22/1.8" — fast down, slow up, so NOT
        // high-bw under the (observable, upstream) classification.
        let dsl = AccessClass::Dsl(22_000, 1800);
        assert!(!dsl.is_high_bw());
    }

    #[test]
    fn fiber_above_threshold_is_high_bw() {
        assert!(AccessClass::Fiber(100_000, 50_000).is_high_bw());
        assert!(!AccessClass::Fiber(100_000, 10_000).is_high_bw()); // == threshold, not >
    }

    #[test]
    fn display_matches_table_one_style() {
        assert_eq!(AccessClass::Lan.to_string(), "high-bw");
        assert_eq!(AccessClass::Dsl(6000, 512).to_string(), "DSL 6/0.512");
        assert_eq!(AccessClass::Catv(6000, 512).to_string(), "CATV 6/0.512");
        assert_eq!(AccessClass::Dsl(22_000, 1800).to_string(), "DSL 22/1.8");
    }

    #[test]
    fn middlebox_flags() {
        let l = AccessLink::lan();
        assert!(l.accepts_unsolicited());
        assert!(!l.with_nat().accepts_unsolicited());
        assert!(!l.with_firewall().accepts_unsolicited());
        let both = AccessLink::open(AccessClass::Dsl(2500, 384))
            .with_nat()
            .with_firewall();
        assert!(both.nat && both.firewall);
        assert!(!both.accepts_unsolicited());
    }
}

//! TTL semantics.
//!
//! The paper evaluates hop counts "as 128 minus the TTL of received
//! packets, since 128 is the default TTL considering Windows O.S." — all
//! peers in 2008-era P2P-TV overlays ran Windows clients. We model exactly
//! that: packets leave a sender with TTL 128 and lose one unit per router
//! hop.

/// Initial TTL of every generated packet (Windows default).
pub const DEFAULT_TTL: u8 = 128;

/// TTL observed at the receiver after `hops` router traversals.
///
/// Saturates at 1: real packets with more hops than TTL would be dropped
/// in flight, but hop counts in this model never approach 128.
pub const fn ttl_at_receiver(hops: u8) -> u8 {
    if hops >= DEFAULT_TTL {
        1
    } else {
        DEFAULT_TTL - hops
    }
}

/// The paper's hop estimator: `128 - TTL`. Returns `None` for TTLs above
/// 128 (a host that is not using the Windows default, which the analysis
/// must tolerate gracefully).
pub const fn hops_from_ttl(ttl: u8) -> Option<u8> {
    if ttl > DEFAULT_TTL || ttl == 0 {
        None
    } else {
        Some(DEFAULT_TTL - ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for hops in 0..64u8 {
            let ttl = ttl_at_receiver(hops);
            assert_eq!(hops_from_ttl(ttl), Some(hops));
        }
    }

    #[test]
    fn zero_hops_full_ttl() {
        assert_eq!(ttl_at_receiver(0), 128);
        assert_eq!(hops_from_ttl(128), Some(0));
    }

    #[test]
    fn saturation() {
        assert_eq!(ttl_at_receiver(200), 1);
        assert_eq!(ttl_at_receiver(128), 1);
    }

    #[test]
    fn non_windows_ttl_rejected() {
        assert_eq!(hops_from_ttl(255), None); // unix initial TTL 255
        assert_eq!(hops_from_ttl(129), None);
        assert_eq!(hops_from_ttl(0), None); // expired
    }
}

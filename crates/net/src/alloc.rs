//! Sequential address allocation inside registered prefixes.
//!
//! The testbed scenario builder uses one allocator per announced prefix to
//! hand out host addresses: probe sites get `/24` LAN subnets carved out
//! of their institution prefix, the synthetic external population gets
//! scattered addresses across its ISP's space.

use crate::error::NetError;
use crate::ip::{Ip, Prefix};

/// Bump allocator over a single prefix.
///
/// Skips the all-zeros (network) and all-ones (broadcast) host addresses
/// for prefixes shorter than `/31`, mirroring real subnet conventions.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    prefix: Prefix,
    next: u32,
    /// Stride > 1 scatters consecutive allocations across the prefix so
    /// synthetic peers do not all share a `/24` (which would distort the
    /// NET metric). The stride must be odd so it stays coprime with the
    /// power-of-two prefix size and visits every host exactly once.
    stride: u32,
    handed_out: u32,
}

impl AddressAllocator {
    /// Dense allocator: `.1`, `.2`, `.3`, … (use for LAN subnets).
    pub fn dense(prefix: Prefix) -> Self {
        AddressAllocator {
            prefix,
            next: 0,
            stride: 1,
            handed_out: 0,
        }
    }

    /// Scattered allocator: permutes the host space with an odd stride so
    /// subsequent addresses land in different subnets.
    pub fn scattered(prefix: Prefix, seed: u64) -> Self {
        let size = prefix.size();
        // Pick a deterministic odd stride in [size/4, size/2) so
        // consecutive hosts land in far-apart subnets without the step
        // degenerating to ±small when taken modulo the prefix size. Any
        // odd stride is coprime with the power-of-two host space,
        // guaranteeing a full cycle.
        let span = (size / 4).max(1);
        let stride = (size / 4 + (crate::hash::mix64(seed) as u32) % span) | 1;
        AddressAllocator {
            prefix,
            next: 0,
            stride,
            handed_out: 0,
        }
    }

    /// The prefix being allocated from.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// How many addresses have been handed out.
    pub fn allocated(&self) -> u32 {
        self.handed_out
    }

    /// How many usable host addresses remain.
    pub fn remaining(&self) -> u32 {
        self.capacity() - self.handed_out
    }

    /// Total usable host addresses in the prefix.
    pub fn capacity(&self) -> u32 {
        let size = self.prefix.size();
        if self.prefix.len() >= 31 {
            size
        } else {
            size - 2 // network + broadcast
        }
    }

    /// Allocates the next address, or fails when the prefix is exhausted.
    pub fn next_ip(&mut self) -> Result<Ip, NetError> {
        let size = self.prefix.size();
        loop {
            if self.handed_out >= self.capacity() {
                return Err(NetError::PrefixExhausted {
                    prefix: self.prefix.to_string(),
                });
            }
            let idx = self.next;
            self.next = (self.next.wrapping_add(self.stride)) % size;
            // Skip network/broadcast addresses on classic subnets.
            if self.prefix.len() < 31 && (idx == 0 || idx == size - 1) {
                continue;
            }
            self.handed_out += 1;
            return Ok(self
                .prefix
                .host(idx)
                .expect("idx < size by construction")); // netaware-lint: allow(PA01) idx is reduced mod size above
        }
    }

    /// Carves the `n`-th `/subnet_len` sub-prefix out of this allocator's
    /// prefix (does not interact with host allocation — use separate
    /// allocators per carved subnet).
    pub fn subnet(&self, n: u32, subnet_len: u8) -> Option<Prefix> {
        if subnet_len < self.prefix.len() || subnet_len > 32 {
            return None;
        }
        let shift = 32 - subnet_len;
        let count = 1u32 << (subnet_len - self.prefix.len());
        if n >= count {
            return None;
        }
        Some(Prefix::new_truncating(
            self.prefix.first().0 + (n << shift),
            subnet_len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_allocates_in_order_skipping_network() {
        let mut a = AddressAllocator::dense(Prefix::of(Ip::from_octets(10, 0, 0, 0), 24));
        assert_eq!(a.next_ip().unwrap(), Ip::from_octets(10, 0, 0, 1));
        assert_eq!(a.next_ip().unwrap(), Ip::from_octets(10, 0, 0, 2));
        assert_eq!(a.capacity(), 254);
    }

    #[test]
    fn dense_exhausts_exactly() {
        let mut a = AddressAllocator::dense(Prefix::of(Ip::from_octets(10, 0, 0, 0), 29));
        let mut got = Vec::new();
        while let Ok(ip) = a.next_ip() {
            got.push(ip);
        }
        assert_eq!(got.len(), 6); // 8 - network - broadcast
        assert!(matches!(
            a.next_ip(),
            Err(NetError::PrefixExhausted { .. })
        ));
    }

    #[test]
    fn all_allocations_inside_prefix_and_unique() {
        let p = Prefix::of(Ip::from_octets(10, 7, 0, 0), 22);
        let mut a = AddressAllocator::scattered(p, 42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..a.capacity() {
            let ip = a.next_ip().unwrap();
            assert!(p.contains(ip), "{ip} outside {p}");
            assert!(seen.insert(ip), "duplicate {ip}");
        }
        assert!(a.next_ip().is_err());
    }

    #[test]
    fn scattered_spreads_across_subnets() {
        let p = Prefix::of(Ip::from_octets(60, 0, 0, 0), 16);
        let mut a = AddressAllocator::scattered(p, 7);
        let ips: Vec<Ip> = (0..100).map(|_| a.next_ip().unwrap()).collect();
        let subnets: std::collections::HashSet<u32> = ips.iter().map(|ip| ip.0 >> 8).collect();
        assert!(
            subnets.len() > 50,
            "only {} distinct /24s in 100 scattered allocations",
            subnets.len()
        );
    }

    #[test]
    fn subnet_carving() {
        let a = AddressAllocator::dense(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16));
        assert_eq!(
            a.subnet(0, 24),
            Some(Prefix::of(Ip::from_octets(130, 192, 0, 0), 24))
        );
        assert_eq!(
            a.subnet(5, 24),
            Some(Prefix::of(Ip::from_octets(130, 192, 5, 0), 24))
        );
        assert_eq!(a.subnet(256, 24), None);
        assert_eq!(a.subnet(0, 8), None); // shorter than parent
    }

    #[test]
    fn slash32_allocator() {
        let mut a = AddressAllocator::dense(Prefix::of(Ip::from_octets(1, 1, 1, 1), 32));
        assert_eq!(a.capacity(), 1);
        assert_eq!(a.next_ip().unwrap(), Ip::from_octets(1, 1, 1, 1));
        assert!(a.next_ip().is_err());
    }

    #[test]
    fn scattered_different_seeds_differ() {
        let p = Prefix::of(Ip::from_octets(60, 0, 0, 0), 16);
        let a: Vec<Ip> = {
            let mut al = AddressAllocator::scattered(p, 1);
            (0..10).map(|_| al.next_ip().unwrap()).collect()
        };
        let b: Vec<Ip> = {
            let mut al = AddressAllocator::scattered(p, 2);
            (0..10).map(|_| al.next_ip().unwrap()).collect()
        };
        assert_ne!(a, b);
    }
}

//! Autonomous Systems.
//!
//! The paper's `AS` metric asks whether both endpoints of an exchange sit
//! in the same Autonomous System. We model each AS as an id plus the
//! country it (predominantly) serves and a coarse kind that the population
//! generator uses to decide what access classes live inside it.

use crate::country::CountryCode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An Autonomous System number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// What kind of network an AS is; drives the mix of access links the
/// population generator places inside it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AsKind {
    /// National research & education network — institution LANs
    /// (the NAPA-WINE probe sites are mostly here).
    Academic,
    /// Residential ISP — DSL/CATV customers.
    ResidentialIsp,
    /// Mixed commercial carrier.
    Carrier,
}

/// Static description of an Autonomous System.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AsInfo {
    /// AS number.
    pub id: AsId,
    /// Country the AS serves.
    pub country: CountryCode,
    /// Network kind.
    pub kind: AsKind,
    /// Human-readable name for tables ("AS1".."AS6" in Table I, or a
    /// synthetic name for generated ASes).
    pub name: String,
}

impl AsInfo {
    /// Convenience constructor.
    pub fn new(id: u32, country: CountryCode, kind: AsKind, name: impl Into<String>) -> Self {
        AsInfo {
            id: AsId(id),
            country,
            kind,
            name: name.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(AsId(64512).to_string(), "AS64512");
        assert_eq!(format!("{:?}", AsId(7)), "AS7");
    }

    #[test]
    fn info_construction() {
        let info = AsInfo::new(1, CountryCode::HU, AsKind::Academic, "BME-NET");
        assert_eq!(info.id, AsId(1));
        assert_eq!(info.country, CountryCode::HU);
        assert_eq!(info.kind, AsKind::Academic);
        assert_eq!(info.name, "BME-NET");
    }

    #[test]
    fn ordering_follows_number() {
        assert!(AsId(3) < AsId(10));
        let mut v = vec![AsId(9), AsId(2), AsId(5)];
        v.sort();
        assert_eq!(v, vec![AsId(2), AsId(5), AsId(9)]);
    }
}

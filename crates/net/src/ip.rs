//! IPv4 addresses and CIDR prefixes.
//!
//! Addresses are a thin `u32` newtype: hashable, orderable, copyable, and
//! cheap enough to appear in tens of millions of packet records. The
//! paper's `NET` metric ("the subnetwork a peer belongs to") is evaluated
//! as membership in the same `/24`, which is how the NAPA-WINE probe LANs
//! were laid out.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Prefix length used for the paper's `NET` (same-subnet) metric.
pub const SUBNET_PREFIX_LEN: u8 = 24;

/// An IPv4 address stored as a host-order `u32`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Ip(pub u32);

impl Ip {
    /// Builds an address from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four dotted-quad octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The enclosing subnet, defined as the `/24` the address sits in.
    pub const fn subnet(self) -> Prefix {
        Prefix::new_truncating(self.0, SUBNET_PREFIX_LEN)
    }

    /// `true` if both addresses share the same `/24` — the paper's
    /// `NET` preferential partition (`HOP(e,p) = 0` in LAN terms).
    pub const fn same_subnet(self, other: Ip) -> bool {
        self.0 >> 8 == other.0 >> 8
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ip({self})")
    }
}

impl From<Ipv4Addr> for Ip {
    fn from(a: Ipv4Addr) -> Self {
        Ip(u32::from(a))
    }
}

impl From<Ip> for Ipv4Addr {
    fn from(a: Ip) -> Self {
        Ipv4Addr::from(a.0)
    }
}

impl FromStr for Ip {
    type Err = std::net::AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ipv4Addr::from_str(s).map(Ip::from)
    }
}

/// A CIDR prefix (`base/len`). The base is always stored with host bits
/// cleared, so two equal prefixes compare equal structurally.
///
/// ```
/// use netaware_net::{Ip, Prefix};
///
/// let p = Prefix::of(Ip::from_octets(130, 192, 0, 0), 16);
/// assert!(p.contains("130.192.7.9".parse().unwrap()));
/// assert!(!p.contains("130.193.0.1".parse().unwrap()));
/// assert_eq!(p.to_string(), "130.192.0.0/16");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, truncating any set host bits in `base`.
    pub const fn new_truncating(base: u32, len: u8) -> Self {
        assert!(len <= 32);
        Prefix {
            base: base & Self::mask(len),
            len,
        }
    }

    /// Creates a prefix from an address and a length.
    pub const fn of(ip: Ip, len: u8) -> Self {
        Self::new_truncating(ip.0, len)
    }

    /// The network mask for a prefix length.
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// First address of the prefix.
    pub const fn first(self) -> Ip {
        Ip(self.base)
    }

    /// Last address of the prefix.
    pub const fn last(self) -> Ip {
        Ip(self.base | !Self::mask(self.len))
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a prefix always covers ≥1 address
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered (saturates at `u32::MAX` for `/0`).
    pub const fn size(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// `true` when `ip` falls inside this prefix.
    pub const fn contains(self, ip: Ip) -> bool {
        ip.0 & Self::mask(self.len) == self.base
    }

    /// `true` when `other` is fully covered by `self`.
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && (other.base & Self::mask(self.len)) == self.base
    }

    /// The `idx`-th host address inside the prefix, if it exists.
    pub fn host(self, idx: u32) -> Option<Ip> {
        if self.len < 32 && idx >= self.size() {
            return None;
        }
        Some(Ip(self.base.wrapping_add(idx)))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ip(self.base), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octets_roundtrip() {
        let ip = Ip::from_octets(192, 168, 1, 42);
        assert_eq!(ip.octets(), [192, 168, 1, 42]);
        assert_eq!(ip.to_string(), "192.168.1.42");
    }

    #[test]
    fn std_conversion_roundtrip() {
        let std_ip = Ipv4Addr::new(10, 0, 7, 9);
        let ip: Ip = std_ip.into();
        let back: Ipv4Addr = ip.into();
        assert_eq!(std_ip, back);
    }

    #[test]
    fn parse_from_str() {
        let ip: Ip = "130.192.1.1".parse().unwrap();
        assert_eq!(ip, Ip::from_octets(130, 192, 1, 1));
        assert!("not-an-ip".parse::<Ip>().is_err());
    }

    #[test]
    fn same_subnet_is_slash24() {
        let a = Ip::from_octets(130, 192, 1, 1);
        let b = Ip::from_octets(130, 192, 1, 254);
        let c = Ip::from_octets(130, 192, 2, 1);
        assert!(a.same_subnet(b));
        assert!(!a.same_subnet(c));
        assert!(a.same_subnet(a));
    }

    #[test]
    fn prefix_truncates_host_bits() {
        let p = Prefix::new_truncating(0xC0A8_0142, 24);
        assert_eq!(p.first(), Ip::from_octets(192, 168, 1, 0));
        assert_eq!(p.last(), Ip::from_octets(192, 168, 1, 255));
        assert_eq!(p.size(), 256);
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::of(Ip::from_octets(10, 1, 0, 0), 16);
        assert!(p.contains(Ip::from_octets(10, 1, 200, 3)));
        assert!(!p.contains(Ip::from_octets(10, 2, 0, 0)));
    }

    #[test]
    fn prefix_covers() {
        let big = Prefix::of(Ip::from_octets(10, 0, 0, 0), 8);
        let small = Prefix::of(Ip::from_octets(10, 9, 3, 0), 24);
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(big.covers(big));
    }

    #[test]
    fn prefix_host_indexing() {
        let p = Prefix::of(Ip::from_octets(10, 0, 0, 0), 30);
        assert_eq!(p.host(0), Some(Ip::from_octets(10, 0, 0, 0)));
        assert_eq!(p.host(3), Some(Ip::from_octets(10, 0, 0, 3)));
        assert_eq!(p.host(4), None);
    }

    #[test]
    fn zero_len_prefix_covers_everything() {
        let p = Prefix::new_truncating(0, 0);
        assert!(p.contains(Ip(u32::MAX)));
        assert!(p.contains(Ip(0)));
        assert_eq!(p.size(), u32::MAX);
    }

    #[test]
    fn slash32_is_single_host() {
        let ip = Ip::from_octets(8, 8, 8, 8);
        let p = Prefix::of(ip, 32);
        assert_eq!(p.size(), 1);
        assert_eq!(p.host(0), Some(ip));
        assert!(p.contains(ip));
        assert!(!p.contains(Ip(ip.0 + 1)));
    }

    #[test]
    fn prefix_display() {
        let p = Prefix::of(Ip::from_octets(172, 16, 0, 0), 12);
        assert_eq!(p.to_string(), "172.16.0.0/12");
    }
}

//! Deterministic inter-AS path model: router hop counts per direction.
//!
//! The paper stresses that Internet paths are asymmetric — `HOP(e,p)` can
//! differ from `HOP(p,e)` — and that its coarse median-split partition is
//! what makes a single-vantage-point TTL measurement usable anyway. This
//! model reproduces both facts:
//!
//! * hop counts are a pure function of the (ordered) endpoint pair, so the
//!   same packet flow always sees the same TTL;
//! * forward and reverse hop counts share the same AS-level path length
//!   but differ by a small per-direction router-level jitter, so they are
//!   *correlated but not equal*, exactly the regime in which
//!   `HOP(e,p) ∈ HOP_P ⇒ HOP(p,e) ∈ HOP_P` usually holds.
//!
//! Magnitudes are tuned so that a mostly-China swarm observed from Europe
//! has a median distance around 19 hops, matching the paper ("the actual
//! HOP median ranges from 18 to 20 depending on the application").

use crate::country::Region;
use crate::hash::{mix2, ranged};
use crate::ip::Ip;
use crate::registry::GeoRegistry;

/// Per-direction router hop model over a [`GeoRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct PathModel {
    seed: u64,
}

impl PathModel {
    /// Creates a path model; all hop counts are a function of
    /// `(seed, src, dst)` only.
    pub const fn new(seed: u64) -> Self {
        PathModel { seed }
    }

    /// Router hops from `src` to `dst` (directional).
    ///
    /// * same `/24` subnet → 0 hops (LAN, the paper's `NET` case);
    /// * same AS → a few intra-domain hops;
    /// * different AS → access hops + AS-path router hops, with the
    ///   AS-path length growing with geographic spread.
    pub fn hops(&self, reg: &GeoRegistry, src: Ip, dst: Ip) -> u8 {
        if src.same_subnet(dst) {
            return 0;
        }
        let pair = mix2(
            self.seed ^ ((src.0 as u64) << 32 | dst.0 as u64),
            (dst.0 as u64) << 32 | src.0 as u64,
        );
        // Key AS-path properties on the *unordered* pair so forward and
        // reverse share path length; jitter on the ordered pair.
        let (lo, hi) = if src.0 <= dst.0 { (src, dst) } else { (dst, src) };
        let sym = mix2(self.seed ^ lo.0 as u64, hi.0 as u64);

        let src_as = reg.as_of(src);
        let dst_as = reg.as_of(dst);
        match (src_as, dst_as) {
            (Some(a), Some(b)) if a == b => {
                // Intra-AS: 2..=6 router hops, direction jitter ±1.
                let base = ranged(sym, 2, 5) as i32;
                let jitter = ranged(pair, 0, 2) as i32 - 1;
                (base + jitter).max(1) as u8
            }
            (Some(a), Some(b)) => {
                let (ra, rb) = match (reg.info(a), reg.info(b)) {
                    (Some(ia), Some(ib)) => (ia.country.region(), ib.country.region()),
                    _ => (Region::Elsewhere, Region::Elsewhere),
                };
                let as_path = Self::as_path_len(ra, rb, sym);
                // Routers per AS traversed: 2..=4, plus 2..=3 access hops
                // on each edge.
                let per_as = ranged(sym.rotate_left(17), 2, 4);
                let edge_src = ranged(mix2(self.seed, src.0 as u64), 2, 3);
                let edge_dst = ranged(mix2(self.seed, dst.0 as u64), 2, 3);
                let jitter = ranged(pair, 0, 4) as i32 - 2; // ±2 asymmetry
                let total = edge_src as i32 + edge_dst as i32 + (as_path * per_as) as i32 + jitter;
                total.clamp(3, 64) as u8
            }
            // Unregistered endpoints: a generic long-ish Internet path.
            _ => ranged(sym, 12, 28) as u8,
        }
    }

    /// AS-level path length as a function of the regions the endpoint
    /// ASes sit in.
    fn as_path_len(a: Region, b: Region, sym: u64) -> u32 {
        let x = sym.rotate_left(33);
        if a.same(b) {
            match a {
                // Dense European peering: short AS paths.
                Region::Europe => ranged(x, 2, 4),
                // Large national carriers with provincial sub-networks.
                Region::Asia => ranged(x, 3, 5),
                _ => ranged(x, 2, 5),
            }
        } else {
            // Intercontinental: cross at least one transit provider.
            ranged(x, 4, 6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::{AsId, AsInfo, AsKind};
    use crate::country::CountryCode;
    use crate::ip::Prefix;
    use crate::registry::GeoRegistryBuilder;

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(2, CountryCode::HU, AsKind::Academic, "BME"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(1))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(152, 66, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn same_subnet_is_zero_hops() {
        let m = PathModel::new(1);
        let r = reg();
        let a = Ip::from_octets(130, 192, 1, 10);
        let b = Ip::from_octets(130, 192, 1, 20);
        assert_eq!(m.hops(&r, a, b), 0);
        assert_eq!(m.hops(&r, b, a), 0);
    }

    #[test]
    fn intra_as_is_short() {
        let m = PathModel::new(1);
        let r = reg();
        let a = Ip::from_octets(130, 192, 1, 10);
        let b = Ip::from_octets(130, 192, 77, 20);
        let h = m.hops(&r, a, b);
        assert!((1..=7).contains(&h), "intra-AS hops {h}");
    }

    #[test]
    fn intercontinental_is_long() {
        let m = PathModel::new(1);
        let r = reg();
        let a = Ip::from_octets(130, 192, 1, 10);
        let b = Ip::from_octets(58, 4, 5, 6);
        let h = m.hops(&r, a, b);
        assert!(h >= 12, "EU->CN hops {h}");
    }

    #[test]
    fn deterministic() {
        let m = PathModel::new(9);
        let r = reg();
        let a = Ip::from_octets(130, 192, 1, 10);
        let b = Ip::from_octets(58, 4, 5, 6);
        assert_eq!(m.hops(&r, a, b), m.hops(&r, a, b));
    }

    #[test]
    fn asymmetric_but_correlated() {
        let m = PathModel::new(3);
        let r = reg();
        let mut diffs = Vec::new();
        let mut any_asym = false;
        for i in 0..200u32 {
            let a = Ip::from_octets(130, 192, (i % 200) as u8, 10);
            let b = Ip(Ip::from_octets(58, 0, 0, 0).0 + i * 997 + 1);
            let f = m.hops(&r, a, b) as i32;
            let rev = m.hops(&r, b, a) as i32;
            if f != rev {
                any_asym = true;
            }
            diffs.push((f - rev).abs());
        }
        assert!(any_asym, "paths should not all be symmetric");
        assert!(
            diffs.iter().all(|&d| d <= 4),
            "forward/reverse differ too much: {:?}",
            diffs.iter().max()
        );
    }

    #[test]
    fn eu_cn_median_near_19() {
        let m = PathModel::new(7);
        let r = reg();
        let mut hops: Vec<u8> = (0..2000u32)
            .map(|i| {
                let a = Ip::from_octets(130, 192, (i % 250) as u8, 10);
                let b = Ip(Ip::from_octets(58, 0, 0, 0).0 + i * 16127 + 3);
                m.hops(&r, a, b)
            })
            .collect();
        hops.sort_unstable();
        let median = hops[hops.len() / 2];
        assert!(
            (16..=22).contains(&median),
            "EU->CN median hops {median}, expected ≈19"
        );
    }

    #[test]
    fn unregistered_endpoints_get_generic_path() {
        let m = PathModel::new(7);
        let r = reg();
        let a = Ip::from_octets(99, 1, 2, 3);
        let b = Ip::from_octets(98, 7, 6, 5);
        let h = m.hops(&r, a, b);
        assert!((12..=28).contains(&h));
    }

    #[test]
    fn different_seeds_give_different_paths() {
        let r = reg();
        let a = Ip::from_octets(130, 192, 1, 10);
        let b = Ip::from_octets(58, 4, 5, 6);
        let hs: std::collections::HashSet<u8> = (0..32u64)
            .map(|s| PathModel::new(s).hops(&r, a, b))
            .collect();
        assert!(hs.len() > 1);
    }
}

//! Country codes and coarse geography.
//!
//! The paper's `CC` metric geolocates peers to countries; its Figure 1
//! breaks peers and bytes down by country with China (`CN`) dominant and
//! the four probe countries (`HU`, `IT`, `FR`, `PL`) called out, all other
//! countries binned as `*`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// ISO-3166-ish country codes for the countries that matter to the study,
/// plus a catch-all [`CountryCode::Other`] matching the paper's `*` bin.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CountryCode {
    /// China — where the CCTV-1 audience and hence most peers live.
    CN,
    /// Hungary (BME, MT probe sites).
    HU,
    /// Italy (PoliTO, UniTN probe sites).
    IT,
    /// France (ENST, FFT probe sites).
    FR,
    /// Poland (WUT probe site).
    PL,
    DE,
    ES,
    GB,
    US,
    JP,
    KR,
    TW,
    RU,
    BR,
    /// Any other country (the paper's `*` bin).
    Other,
}

impl CountryCode {
    /// Every code, in a stable order (useful for table rows).
    pub const ALL: [CountryCode; 15] = [
        CountryCode::CN,
        CountryCode::HU,
        CountryCode::IT,
        CountryCode::FR,
        CountryCode::PL,
        CountryCode::DE,
        CountryCode::ES,
        CountryCode::GB,
        CountryCode::US,
        CountryCode::JP,
        CountryCode::KR,
        CountryCode::TW,
        CountryCode::RU,
        CountryCode::BR,
        CountryCode::Other,
    ];

    /// The two-letter label the paper prints (`Other` prints as `*`).
    pub const fn label(self) -> &'static str {
        match self {
            CountryCode::CN => "CN",
            CountryCode::HU => "HU",
            CountryCode::IT => "IT",
            CountryCode::FR => "FR",
            CountryCode::PL => "PL",
            CountryCode::DE => "DE",
            CountryCode::ES => "ES",
            CountryCode::GB => "GB",
            CountryCode::US => "US",
            CountryCode::JP => "JP",
            CountryCode::KR => "KR",
            CountryCode::TW => "TW",
            CountryCode::RU => "RU",
            CountryCode::BR => "BR",
            CountryCode::Other => "*",
        }
    }

    /// Coarse region, used by the latency and hop models.
    pub const fn region(self) -> Region {
        match self {
            CountryCode::CN | CountryCode::JP | CountryCode::KR | CountryCode::TW => Region::Asia,
            CountryCode::US | CountryCode::BR => Region::Americas,
            CountryCode::Other => Region::Elsewhere,
            _ => Region::Europe,
        }
    }

    /// `true` for the four countries hosting NAPA-WINE probe sites.
    pub const fn is_probe_country(self) -> bool {
        matches!(
            self,
            CountryCode::HU | CountryCode::IT | CountryCode::FR | CountryCode::PL
        )
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Continental region; drives baseline propagation delay and AS-path
/// length between countries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Region {
    /// Europe — where all probes sit.
    Europe,
    /// East Asia — where the bulk of the audience sits.
    Asia,
    /// North and South America.
    Americas,
    /// Anywhere else.
    Elsewhere,
}

impl Region {
    /// `true` when two regions are the same continent.
    pub fn same(self, other: Region) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_two_letters_or_star() {
        for cc in CountryCode::ALL {
            let l = cc.label();
            assert!(l == "*" || l.len() == 2, "bad label {l}");
        }
    }

    #[test]
    fn probe_countries() {
        assert!(CountryCode::IT.is_probe_country());
        assert!(CountryCode::HU.is_probe_country());
        assert!(CountryCode::FR.is_probe_country());
        assert!(CountryCode::PL.is_probe_country());
        assert!(!CountryCode::CN.is_probe_country());
        assert!(!CountryCode::Other.is_probe_country());
    }

    #[test]
    fn regions() {
        assert_eq!(CountryCode::CN.region(), Region::Asia);
        assert_eq!(CountryCode::IT.region(), Region::Europe);
        assert_eq!(CountryCode::US.region(), Region::Americas);
        assert_eq!(CountryCode::Other.region(), Region::Elsewhere);
        assert!(Region::Asia.same(Region::Asia));
        assert!(!Region::Asia.same(Region::Europe));
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for cc in CountryCode::ALL {
            assert!(seen.insert(cc));
        }
        assert_eq!(seen.len(), 15);
    }
}

//! Error type for the network substrate.

use std::fmt;

/// Errors raised while building or querying the network model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The address allocator ran out of space in the requested prefix.
    PrefixExhausted {
        /// The prefix that filled up.
        prefix: String,
    },
    /// Two registered prefixes overlap.
    OverlappingPrefix {
        /// The newly registered prefix.
        new: String,
        /// The already-present conflicting prefix.
        existing: String,
    },
    /// Lookup of an address that no registered prefix covers.
    UnknownAddress(
        /// The unresolvable address.
        String,
    ),
    /// Reference to an AS that was never registered.
    UnknownAs(
        /// The missing AS number.
        u32,
    ),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PrefixExhausted { prefix } => {
                write!(f, "address prefix {prefix} exhausted")
            }
            NetError::OverlappingPrefix { new, existing } => {
                write!(f, "prefix {new} overlaps already-registered {existing}")
            }
            NetError::UnknownAddress(ip) => write!(f, "no registered prefix covers {ip}"),
            NetError::UnknownAs(asn) => write!(f, "AS{asn} is not registered"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::UnknownAddress("1.2.3.4".into());
        assert!(e.to_string().contains("1.2.3.4"));
        let e = NetError::PrefixExhausted {
            prefix: "10.0.0.0/30".into(),
        };
        assert!(e.to_string().contains("exhausted"));
        let e = NetError::OverlappingPrefix {
            new: "10.0.0.0/8".into(),
            existing: "10.1.0.0/16".into(),
        };
        assert!(e.to_string().contains("overlaps"));
        assert!(NetError::UnknownAs(7).to_string().contains("AS7"));
    }
}

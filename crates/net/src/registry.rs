//! The geolocation registry: IP prefix → Autonomous System → country.
//!
//! The paper's analysis resolved peer addresses through whois/routing
//! tables to Autonomous Systems and through GeoIP to countries. This
//! registry plays that role: the population generator registers each AS's
//! address space here, and the analysis side performs longest-prefix-match
//! lookups on observed addresses — it never sees the generator's ground
//! truth directly.

use crate::asn::{AsId, AsInfo};
use crate::country::CountryCode;
use crate::error::NetError;
use crate::ip::{Ip, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Immutable prefix→AS registry with AS metadata. Built once via
/// [`GeoRegistryBuilder`], then shared read-only across threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoRegistry {
    /// Non-overlapping prefixes sorted by base address.
    entries: Vec<(Prefix, AsId)>,
    /// AS metadata in registration order.
    infos: Vec<AsInfo>,
    /// AS number → index into `infos`.
    #[serde(skip)]
    index: BTreeMap<AsId, usize>,
}

impl GeoRegistry {
    /// The AS announcing `ip`, if any prefix covers it.
    pub fn as_of(&self, ip: Ip) -> Option<AsId> {
        // entries are sorted by base and non-overlapping: the candidate is
        // the last prefix whose base is <= ip.
        let pos = self
            .entries
            .partition_point(|(p, _)| p.first() <= ip);
        if pos == 0 {
            return None;
        }
        let (prefix, asid) = self.entries[pos - 1];
        prefix.contains(ip).then_some(asid)
    }

    /// The country `ip` geolocates to ([`CountryCode::Other`] when the
    /// address is covered but shouldn't be; `None` when uncovered).
    pub fn country_of(&self, ip: Ip) -> Option<CountryCode> {
        self.as_of(ip).and_then(|a| self.info(a)).map(|i| i.country)
    }

    /// Metadata for a registered AS.
    pub fn info(&self, asid: AsId) -> Option<&AsInfo> {
        self.index.get(&asid).map(|&i| &self.infos[i])
    }

    /// All registered ASes, in registration order.
    pub fn ases(&self) -> &[AsInfo] {
        &self.infos
    }

    /// All registered prefixes with their AS, sorted by base address.
    pub fn prefixes(&self) -> &[(Prefix, AsId)] {
        &self.entries
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no prefix is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rebuilds the AS index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index = self
            .infos
            .iter()
            .enumerate()
            .map(|(i, info)| (info.id, i))
            .collect();
    }
}

/// Builder enforcing prefix disjointness and AS registration.
#[derive(Debug, Default)]
pub struct GeoRegistryBuilder {
    entries: Vec<(Prefix, AsId)>,
    infos: Vec<AsInfo>,
    index: BTreeMap<AsId, usize>,
}

impl GeoRegistryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an AS. Re-registering the same id with identical info is
    /// a no-op; conflicting info panics (it is a programming error in the
    /// scenario builder).
    pub fn register_as(&mut self, info: AsInfo) -> &mut Self {
        if let Some(&i) = self.index.get(&info.id) {
            assert_eq!(
                self.infos[i], info,
                "AS{} registered twice with different metadata",
                info.id.0
            );
            return self;
        }
        self.index.insert(info.id, self.infos.len());
        self.infos.push(info);
        self
    }

    /// Announces `prefix` from `asid`. Fails when the AS is unknown or the
    /// prefix overlaps an existing announcement.
    pub fn announce(&mut self, prefix: Prefix, asid: AsId) -> Result<&mut Self, NetError> {
        if !self.index.contains_key(&asid) {
            return Err(NetError::UnknownAs(asid.0));
        }
        for &(existing, _) in &self.entries {
            if existing.covers(prefix) || prefix.covers(existing) {
                return Err(NetError::OverlappingPrefix {
                    new: prefix.to_string(),
                    existing: existing.to_string(),
                });
            }
        }
        self.entries.push((prefix, asid));
        Ok(self)
    }

    /// Finalizes into an immutable, lookup-ready registry.
    pub fn build(mut self) -> GeoRegistry {
        self.entries.sort_by_key(|(p, _)| p.first());
        GeoRegistry {
            entries: self.entries,
            infos: self.infos,
            index: self.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::AsKind;

    fn sample() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(1, CountryCode::HU, AsKind::Academic, "BME"));
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN-BB"));
        b.announce(Prefix::of(Ip::from_octets(152, 66, 0, 0), 16), AsId(1))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn lookup_resolves_to_owning_as() {
        let r = sample();
        assert_eq!(r.as_of(Ip::from_octets(152, 66, 10, 1)), Some(AsId(1)));
        assert_eq!(r.as_of(Ip::from_octets(130, 192, 1, 1)), Some(AsId(2)));
        assert_eq!(r.as_of(Ip::from_octets(58, 33, 44, 55)), Some(AsId(100)));
    }

    #[test]
    fn lookup_miss_is_none() {
        let r = sample();
        assert_eq!(r.as_of(Ip::from_octets(8, 8, 8, 8)), None);
        assert_eq!(r.country_of(Ip::from_octets(8, 8, 8, 8)), None);
    }

    #[test]
    fn lookup_edges_of_prefix() {
        let r = sample();
        assert_eq!(r.as_of(Ip::from_octets(152, 66, 0, 0)), Some(AsId(1)));
        assert_eq!(r.as_of(Ip::from_octets(152, 66, 255, 255)), Some(AsId(1)));
        assert_eq!(r.as_of(Ip::from_octets(152, 67, 0, 0)), None);
        assert_eq!(r.as_of(Ip::from_octets(152, 65, 255, 255)), None);
    }

    #[test]
    fn country_resolution() {
        let r = sample();
        assert_eq!(
            r.country_of(Ip::from_octets(58, 1, 2, 3)),
            Some(CountryCode::CN)
        );
        assert_eq!(
            r.country_of(Ip::from_octets(130, 192, 9, 9)),
            Some(CountryCode::IT)
        );
    }

    #[test]
    fn overlap_rejected_both_directions() {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(1, CountryCode::HU, AsKind::Academic, "A"));
        b.announce(Prefix::of(Ip::from_octets(10, 0, 0, 0), 16), AsId(1))
            .unwrap();
        // New prefix inside existing.
        assert!(matches!(
            b.announce(Prefix::of(Ip::from_octets(10, 0, 3, 0), 24), AsId(1)),
            Err(NetError::OverlappingPrefix { .. })
        ));
        // New prefix covering existing.
        assert!(matches!(
            b.announce(Prefix::of(Ip::from_octets(10, 0, 0, 0), 8), AsId(1)),
            Err(NetError::OverlappingPrefix { .. })
        ));
        // Disjoint sibling is fine.
        b.announce(Prefix::of(Ip::from_octets(10, 1, 0, 0), 16), AsId(1))
            .unwrap();
    }

    #[test]
    fn announce_requires_registered_as() {
        let mut b = GeoRegistryBuilder::new();
        assert!(matches!(
            b.announce(Prefix::of(Ip::from_octets(10, 0, 0, 0), 8), AsId(9)),
            Err(NetError::UnknownAs(9))
        ));
    }

    #[test]
    fn duplicate_identical_as_registration_is_noop() {
        let mut b = GeoRegistryBuilder::new();
        let info = AsInfo::new(1, CountryCode::HU, AsKind::Academic, "A");
        b.register_as(info.clone()).register_as(info);
        assert_eq!(b.build().ases().len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn conflicting_as_registration_panics() {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(1, CountryCode::HU, AsKind::Academic, "A"));
        b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "A"));
    }

    #[test]
    fn empty_registry() {
        let r = GeoRegistryBuilder::new().build();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.as_of(Ip(1)), None);
    }

    #[test]
    fn many_adjacent_prefixes_resolve_exactly() {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(1, CountryCode::CN, AsKind::Carrier, "A"));
        for i in 0..64u32 {
            b.announce(
                Prefix::new_truncating(0x0A00_0000 | (i << 8), 24),
                AsId(1),
            )
            .unwrap();
        }
        let r = b.build();
        assert_eq!(r.len(), 64);
        for i in 0..64u32 {
            let ip = Ip(0x0A00_0000 | (i << 8) | 7);
            assert_eq!(r.as_of(ip), Some(AsId(1)), "block {i}");
        }
        assert_eq!(r.as_of(Ip(0x0A00_4000)), None); // block 64 not announced
    }
}

//! Read-only views over a probe trace: direction, time window, payload
//! size. These are the primitive selections out of which the analysis
//! builds its per-remote aggregations.

use crate::record::PacketRecord;
use crate::set::ProbeTrace;
use netaware_net::Ip;

/// Traffic direction relative to the capturing probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Packets received by the probe (download; `e → p`).
    Rx,
    /// Packets sent by the probe (upload; `p → e`).
    Tx,
    /// Both directions.
    Both,
}

impl Direction {
    /// Whether `rec`, captured at `probe`, matches this direction.
    pub fn matches(self, probe: Ip, rec: &PacketRecord) -> bool {
        match self {
            Direction::Rx => rec.dst == probe,
            Direction::Tx => rec.src == probe,
            Direction::Both => rec.src == probe || rec.dst == probe,
        }
    }
}

/// A composable, lazily-evaluated selection over one probe's records.
#[derive(Clone, Copy, Debug)]
pub struct TraceView<'a> {
    probe: Ip,
    records: &'a [PacketRecord],
    direction: Direction,
    from_us: u64,
    to_us: u64,
    min_size: u16,
    remote: Option<Ip>,
}

impl<'a> TraceView<'a> {
    /// A view over the whole trace.
    pub fn of(trace: &'a ProbeTrace) -> Self {
        TraceView {
            probe: trace.probe,
            records: trace.records_unsorted(),
            direction: Direction::Both,
            from_us: 0,
            to_us: u64::MAX,
            min_size: 0,
            remote: None,
        }
    }

    /// Restricts to one direction.
    pub fn direction(mut self, d: Direction) -> Self {
        self.direction = d;
        self
    }

    /// Restricts to `[from_us, to_us)`.
    pub fn window(mut self, from_us: u64, to_us: u64) -> Self {
        self.from_us = from_us;
        self.to_us = to_us;
        self
    }

    /// Keeps only packets of at least `min_size` bytes.
    pub fn min_size(mut self, min_size: u16) -> Self {
        self.min_size = min_size;
        self
    }

    /// Keeps only packets exchanged with `remote`.
    pub fn with_remote(mut self, remote: Ip) -> Self {
        self.remote = Some(remote);
        self
    }

    /// The capturing probe.
    pub fn probe(&self) -> Ip {
        self.probe
    }

    /// Iterates the selected records.
    pub fn iter(&self) -> impl Iterator<Item = &'a PacketRecord> + '_ {
        let probe = self.probe;
        let dir = self.direction;
        let (from, to) = (self.from_us, self.to_us);
        let min_size = self.min_size;
        let remote = self.remote;
        self.records.iter().filter(move |r| {
            r.ts_us >= from
                && r.ts_us < to
                && r.size >= min_size
                && dir.matches(probe, r)
                && remote.is_none_or(|rem| r.remote_of(probe) == Some(rem))
        })
    }

    /// Number of selected packets.
    pub fn count(&self) -> usize {
        self.iter().count()
    }

    /// Total selected bytes.
    pub fn bytes(&self) -> u64 {
        self.iter().map(|r| r.size as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PayloadKind;

    fn build() -> ProbeTrace {
        let p = Ip::from_octets(10, 0, 0, 1);
        let a = Ip::from_octets(58, 0, 0, 1);
        let b = Ip::from_octets(60, 0, 0, 1);
        let mut t = ProbeTrace::new(p);
        let mk = |ts, src, dst, size| PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl: 110,
            kind: PayloadKind::Video,
        };
        t.push(mk(100, a, p, 1000)); // rx from a
        t.push(mk(200, p, a, 60)); // tx to a
        t.push(mk(300, b, p, 1200)); // rx from b
        t.push(mk(400, p, b, 1200)); // tx to b
        t.push(mk(500, a, p, 300)); // rx from a
        t
    }

    #[test]
    fn direction_filtering() {
        let t = build();
        let v = TraceView::of(&t);
        assert_eq!(v.count(), 5);
        assert_eq!(v.direction(Direction::Rx).count(), 3);
        assert_eq!(v.direction(Direction::Tx).count(), 2);
    }

    #[test]
    fn window_is_half_open() {
        let t = build();
        let v = TraceView::of(&t).window(200, 400);
        let ts: Vec<u64> = v.iter().map(|r| r.ts_us).collect();
        assert_eq!(ts, vec![200, 300]);
    }

    #[test]
    fn size_and_remote_filters_compose() {
        let t = build();
        let a = Ip::from_octets(58, 0, 0, 1);
        let v = TraceView::of(&t)
            .with_remote(a)
            .direction(Direction::Rx)
            .min_size(400);
        assert_eq!(v.count(), 1);
        assert_eq!(v.bytes(), 1000);
    }

    #[test]
    fn bytes_sums_sizes() {
        let t = build();
        assert_eq!(TraceView::of(&t).bytes(), 1000 + 60 + 1200 + 1200 + 300);
    }

    #[test]
    fn direction_matches_helper() {
        let p = Ip::from_octets(1, 1, 1, 1);
        let r = PacketRecord {
            ts_us: 0,
            src: p,
            dst: Ip::from_octets(2, 2, 2, 2),
            sport: 0,
            dport: 0,
            size: 100,
            ttl: 64,
            kind: PayloadKind::Signaling,
        };
        assert!(Direction::Tx.matches(p, &r));
        assert!(!Direction::Rx.matches(p, &r));
        assert!(Direction::Both.matches(p, &r));
    }
}

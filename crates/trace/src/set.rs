//! Per-probe traces and experiment trace sets.

use crate::record::PacketRecord;
use netaware_net::Ip;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The time-ordered packet capture at one vantage point.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbeTrace {
    /// The capturing host.
    pub probe: Ip,
    records: Vec<PacketRecord>,
    /// Whether `records` is known to be sorted by timestamp.
    sorted: bool,
}

impl ProbeTrace {
    /// An empty capture at `probe`.
    pub fn new(probe: Ip) -> Self {
        ProbeTrace {
            probe,
            records: Vec::new(),
            sorted: true,
        }
    }

    /// Appends a captured packet. The packet must touch the probe.
    pub fn push(&mut self, rec: PacketRecord) {
        debug_assert!(
            rec.src == self.probe || rec.dst == self.probe,
            "captured packet does not touch probe {}",
            self.probe
        );
        if let Some(last) = self.records.last() {
            if rec.ts_us < last.ts_us {
                self.sorted = false;
            }
        }
        self.records.push(rec);
    }

    /// The time-sorted records.
    ///
    /// Requires [`ProbeTrace::finalize`] (or [`TraceSet::finalize`]) to
    /// have run if any record arrived out of order — sorting is an
    /// explicit, one-time step, never a hidden side effect of a read.
    /// Debug builds assert the invariant; release builds trust it.
    pub fn records(&self) -> &[PacketRecord] {
        debug_assert!(
            self.sorted,
            "probe {} trace read before finalize(); records are not time-sorted",
            self.probe
        );
        &self.records
    }

    /// The records without enforcing order (read-only contexts that are
    /// order-insensitive or do their own per-flow ordering).
    pub fn records_unsorted(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Whether the records are known to be in timestamp order (always
    /// true after [`ProbeTrace::finalize`]).
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total captured bytes (both directions).
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size as u64).sum()
    }

    /// Sorts records by timestamp (idempotent).
    pub fn finalize(&mut self) {
        if !self.sorted {
            self.records.sort_by_key(|r| r.ts_us);
            self.sorted = true;
        }
    }

    /// Consumes into the raw record vector (sorted).
    pub fn into_records(mut self) -> Vec<PacketRecord> {
        self.finalize();
        self.records
    }

    /// Builds from pre-collected records (sorts them).
    pub fn from_records(probe: Ip, mut records: Vec<PacketRecord>) -> Self {
        records.sort_by_key(|r| r.ts_us);
        ProbeTrace {
            probe,
            records,
            sorted: true,
        }
    }
}

/// All captures of one experiment, plus the metadata the analysis needs:
/// which application ran, for how long, and the probe set `W`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Human-readable application name ("PPLive", "SopCast", "TVAnts", …).
    pub app: String,
    /// Experiment duration in microseconds.
    pub duration_us: u64,
    /// One trace per probe.
    pub traces: Vec<ProbeTrace>,
}

impl TraceSet {
    /// An empty set for `app`.
    pub fn new(app: impl Into<String>, duration_us: u64) -> Self {
        TraceSet {
            app: app.into(),
            duration_us,
            traces: Vec::new(),
        }
    }

    /// Adds a probe's capture.
    pub fn add(&mut self, trace: ProbeTrace) {
        self.traces.push(trace);
    }

    /// The probe set `W` — every vantage point in the experiment
    /// (including probes that captured nothing).
    pub fn probe_set(&self) -> BTreeSet<Ip> {
        self.traces.iter().map(|t| t.probe).collect()
    }

    /// Total packets across all probes.
    pub fn total_packets(&self) -> usize {
        self.traces.iter().map(|t| t.len()).sum()
    }

    /// Total bytes across all probes.
    pub fn total_bytes(&self) -> u64 {
        self.traces.iter().map(|t| t.total_bytes()).sum()
    }

    /// Sorts every trace (idempotent; call once after capture).
    pub fn finalize(&mut self) {
        for t in &mut self.traces {
            t.finalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PayloadKind;

    fn rec(ts: u64, src: Ip, dst: Ip, size: u16) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl: 120,
            kind: PayloadKind::Video,
        }
    }

    #[test]
    fn push_and_read_in_order() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let r = Ip::from_octets(10, 0, 0, 2);
        let mut t = ProbeTrace::new(p);
        t.push(rec(10, p, r, 100));
        t.push(rec(20, r, p, 200));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_bytes(), 300);
        assert_eq!(t.records()[0].ts_us, 10);
    }

    #[test]
    fn out_of_order_pushes_get_sorted_by_finalize() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let r = Ip::from_octets(10, 0, 0, 2);
        let mut t = ProbeTrace::new(p);
        t.push(rec(20, p, r, 100));
        t.push(rec(10, r, p, 100));
        assert!(!t.is_sorted());
        t.finalize();
        assert!(t.is_sorted());
        let ts: Vec<u64> = t.records().iter().map(|x| x.ts_us).collect();
        assert_eq!(ts, vec![10, 20]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before finalize")]
    fn unsorted_read_panics_in_debug() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let r = Ip::from_octets(10, 0, 0, 2);
        let mut t = ProbeTrace::new(p);
        t.push(rec(20, p, r, 100));
        t.push(rec(10, r, p, 100));
        let _ = t.records();
    }

    #[test]
    fn from_records_sorts() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let r = Ip::from_octets(10, 0, 0, 2);
        let t = ProbeTrace::from_records(p, vec![rec(30, p, r, 1), rec(5, r, p, 1)]);
        assert_eq!(t.records_unsorted()[0].ts_us, 5);
    }

    #[test]
    fn trace_set_aggregates() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 1, 1);
        let ext = Ip::from_octets(58, 0, 0, 1);
        let mut s = TraceSet::new("SopCast", 60_000_000);
        let mut t1 = ProbeTrace::new(p1);
        t1.push(rec(1, p1, ext, 500));
        let mut t2 = ProbeTrace::new(p2);
        t2.push(rec(2, ext, p2, 700));
        t2.push(rec(3, p2, ext, 100));
        s.add(t1);
        s.add(t2);
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.total_bytes(), 1300);
        assert_eq!(s.probe_set().len(), 2);
        assert!(s.probe_set().contains(&p1));
    }

    #[test]
    fn empty_probe_still_in_probe_set() {
        let mut s = TraceSet::new("TVAnts", 1);
        s.add(ProbeTrace::new(Ip::from_octets(1, 1, 1, 1)));
        assert_eq!(s.probe_set().len(), 1);
        assert_eq!(s.total_packets(), 0);
    }
}

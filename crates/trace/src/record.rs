//! A single captured packet.

use netaware_net::Ip;
use serde::{Deserialize, Serialize};

/// Ground-truth payload class, written by the simulator.
///
/// **Not used by the analysis** (which classifies by size, as the paper
/// does); kept in the record so the classification heuristic can be
/// scored against truth in tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum PayloadKind {
    /// Video chunk payload.
    Video = 0,
    /// Signalling: peer discovery, buffer maps, requests, keep-alives.
    Signaling = 1,
}

impl PayloadKind {
    /// Decodes from the wire byte.
    pub const fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(PayloadKind::Video),
            1 => Some(PayloadKind::Signaling),
            _ => None,
        }
    }
}

/// One packet as seen on the wire at a probe.
///
/// 24 bytes on disk; tens of millions of these make up an experiment, so
/// the layout is deliberately lean.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp, microseconds since experiment start.
    pub ts_us: u64,
    /// Source address.
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// Source UDP port.
    pub sport: u16,
    /// Destination UDP port.
    pub dport: u16,
    /// IP datagram size in bytes.
    pub size: u16,
    /// TTL observed at the capture point.
    pub ttl: u8,
    /// Ground-truth payload class (see [`PayloadKind`]).
    pub kind: PayloadKind,
}

impl PacketRecord {
    /// Size of the on-disk encoding.
    pub const WIRE_SIZE: usize = 24;

    /// `true` when this packet was received by `host`.
    pub fn is_rx_at(&self, host: Ip) -> bool {
        self.dst == host
    }

    /// `true` when this packet was sent by `host`.
    pub fn is_tx_at(&self, host: Ip) -> bool {
        self.src == host
    }

    /// The non-`host` endpoint, or `None` when the packet doesn't touch
    /// `host` at all (shouldn't appear in that host's trace).
    pub fn remote_of(&self, host: Ip) -> Option<Ip> {
        if self.src == host {
            Some(self.dst)
        } else if self.dst == host {
            Some(self.src)
        } else {
            None
        }
    }

    /// Encodes into exactly [`Self::WIRE_SIZE`] bytes (little endian).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts_us.to_le_bytes());
        out.extend_from_slice(&self.src.0.to_le_bytes());
        out.extend_from_slice(&self.dst.0.to_le_bytes());
        out.extend_from_slice(&self.sport.to_le_bytes());
        out.extend_from_slice(&self.dport.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.push(self.ttl);
        out.push(self.kind as u8);
    }

    /// Decodes from exactly [`Self::WIRE_SIZE`] bytes.
    pub fn decode(b: &[u8; Self::WIRE_SIZE]) -> Option<Self> {
        let [t0, t1, t2, t3, t4, t5, t6, t7, s0, s1, s2, s3, d0, d1, d2, d3, sp0, sp1, dp0, dp1, z0, z1, ttl, kind] =
            *b;
        Some(PacketRecord {
            ts_us: u64::from_le_bytes([t0, t1, t2, t3, t4, t5, t6, t7]),
            src: Ip(u32::from_le_bytes([s0, s1, s2, s3])),
            dst: Ip(u32::from_le_bytes([d0, d1, d2, d3])),
            sport: u16::from_le_bytes([sp0, sp1]),
            dport: u16::from_le_bytes([dp0, dp1]),
            size: u16::from_le_bytes([z0, z1]),
            ttl,
            kind: PayloadKind::from_u8(kind)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketRecord {
        PacketRecord {
            ts_us: 123_456_789,
            src: Ip::from_octets(130, 192, 1, 5),
            dst: Ip::from_octets(58, 3, 2, 1),
            sport: 41000,
            dport: 8021,
            size: 1278,
            ttl: 109,
            kind: PayloadKind::Video,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = sample();
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), PacketRecord::WIRE_SIZE);
        let back = PacketRecord::decode(buf[..].try_into().unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[23] = 9;
        assert!(PacketRecord::decode(buf[..].try_into().unwrap()).is_none());
    }

    #[test]
    fn direction_helpers() {
        let r = sample();
        let probe = Ip::from_octets(130, 192, 1, 5);
        assert!(r.is_tx_at(probe));
        assert!(!r.is_rx_at(probe));
        assert_eq!(r.remote_of(probe), Some(Ip::from_octets(58, 3, 2, 1)));
        assert_eq!(r.remote_of(Ip::from_octets(9, 9, 9, 9)), None);
    }

    #[test]
    fn payload_kind_codes() {
        assert_eq!(PayloadKind::from_u8(0), Some(PayloadKind::Video));
        assert_eq!(PayloadKind::from_u8(1), Some(PayloadKind::Signaling));
        assert_eq!(PayloadKind::from_u8(2), None);
    }
}

//! Combining trace corpora.
//!
//! The paper's tables aggregate "more than 120 hours of experiments" —
//! several same-application runs merged into one corpus before analysis.
//! [`TraceSet::absorb`] implements that: captures from the same probe
//! are concatenated with a time offset so runs line up back-to-back,
//! exactly as if the probe had kept capturing across sessions.

use crate::record::PacketRecord;
use crate::set::{ProbeTrace, TraceSet};
use std::collections::BTreeMap;

impl TraceSet {
    /// Appends another run of the same application: every record of
    /// `other` is shifted by this set's duration, per-probe captures are
    /// concatenated (probes present in only one run are kept), and the
    /// duration extends to cover both.
    ///
    /// Panics if the application names differ — merging experiments of
    /// different systems is a logic error.
    pub fn absorb(&mut self, other: TraceSet) {
        assert_eq!(
            self.app, other.app,
            "refusing to merge {} into {}",
            other.app, self.app
        );
        let offset = self.duration_us;
        let mut by_probe: BTreeMap<netaware_net::Ip, usize> = self
            .traces
            .iter()
            .enumerate()
            .map(|(i, t)| (t.probe, i))
            .collect();
        for t in other.traces {
            let probe = t.probe;
            let shifted: Vec<PacketRecord> = t
                .into_records()
                .into_iter()
                .map(|mut r| {
                    r.ts_us += offset;
                    r
                })
                .collect();
            match by_probe.get(&probe) {
                Some(&i) => {
                    for r in shifted {
                        self.traces[i].push(r);
                    }
                }
                None => {
                    let idx = self.traces.len();
                    self.traces.push(ProbeTrace::from_records(probe, shifted));
                    by_probe.insert(probe, idx);
                }
            }
        }
        self.duration_us += other.duration_us;
        self.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PayloadKind;
    use netaware_net::Ip;

    fn rec(ts: u64, src: Ip, dst: Ip) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size: 1000,
            ttl: 110,
            kind: PayloadKind::Video,
        }
    }

    fn set_with(probe: Ip, ts: &[u64], duration: u64) -> TraceSet {
        let remote = Ip::from_octets(58, 0, 0, 1);
        let mut s = TraceSet::new("X", duration);
        let mut t = ProbeTrace::new(probe);
        for &x in ts {
            t.push(rec(x, remote, probe));
        }
        s.add(t);
        s
    }

    #[test]
    fn absorb_shifts_and_concatenates() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let mut a = set_with(p, &[100, 200], 1_000);
        let b = set_with(p, &[5, 10], 500);
        a.absorb(b);
        assert_eq!(a.duration_us, 1_500);
        assert_eq!(a.total_packets(), 4);
        let ts: Vec<u64> = a.traces[0]
            .records_unsorted()
            .iter()
            .map(|r| r.ts_us)
            .collect();
        assert_eq!(ts, vec![100, 200, 1_005, 1_010]);
    }

    #[test]
    fn absorb_keeps_disjoint_probes() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 0, 2);
        let mut a = set_with(p1, &[1], 100);
        let b = set_with(p2, &[2], 100);
        a.absorb(b);
        assert_eq!(a.probe_set().len(), 2);
        assert_eq!(a.duration_us, 200);
        // p2's record was shifted by a's original duration.
        let t2 = a.traces.iter().find(|t| t.probe == p2).unwrap();
        assert_eq!(t2.records_unsorted()[0].ts_us, 102);
    }

    #[test]
    #[should_panic(expected = "refusing to merge")]
    fn absorb_rejects_different_apps() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let mut a = set_with(p, &[1], 100);
        let mut b = set_with(p, &[1], 100);
        b.app = "Y".into();
        a.absorb(b);
    }

    #[test]
    fn absorb_empty_run_extends_duration_only() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let mut a = set_with(p, &[1], 100);
        let b = TraceSet::new("X", 300);
        a.absorb(b);
        assert_eq!(a.duration_us, 400);
        assert_eq!(a.total_packets(), 1);
    }
}

//! Directory persistence for whole experiments.
//!
//! A [`TraceSet`] saved with [`TraceSet::write_dir`] becomes one `.nawt`
//! file per probe plus a `manifest.json` describing the experiment
//! (application, duration, probe list), and loads back with
//! [`TraceSet::read_dir`] — the unit of exchange for sharing simulated
//! corpora, exactly as NAPA-WINE shared its pcap corpus "upon request".

use crate::format::{read_trace, write_trace, TraceError};
use crate::set::TraceSet;
use netaware_net::Ip;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// The sidecar metadata of a persisted corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusManifest {
    /// Application name.
    pub app: String,
    /// Experiment duration, µs.
    pub duration_us: u64,
    /// Probe addresses, in trace order.
    pub probes: Vec<Ip>,
    /// Total packets at save time (integrity check on load).
    pub total_packets: usize,
}

impl TraceSet {
    /// Persists the set as `<dir>/manifest.json` plus one
    /// `<dir>/<probe-ip>.nawt` per probe. The directory is created.
    pub fn write_dir(&self, dir: &Path) -> Result<CorpusManifest, TraceError> {
        std::fs::create_dir_all(dir)?;
        for t in &self.traces {
            let path = dir.join(format!("{}.nawt", t.probe));
            let mut w = BufWriter::new(File::create(path)?);
            write_trace(t, &mut w)?;
        }
        let manifest = CorpusManifest {
            app: self.app.clone(),
            duration_us: self.duration_us,
            probes: self.traces.iter().map(|t| t.probe).collect(),
            total_packets: self.total_packets(),
        };
        // netaware-lint: allow(PA01) value-tree serialisation of an in-memory struct cannot fail
        let js = serde_json::to_string_pretty(&manifest).expect("manifest serialises");
        std::fs::write(dir.join("manifest.json"), js)?;
        Ok(manifest)
    }

    /// Loads a corpus saved by [`TraceSet::write_dir`]. Fails if the
    /// manifest is missing/corrupt, a probe file is missing, or the
    /// packet count disagrees with the manifest.
    pub fn read_dir(dir: &Path) -> Result<TraceSet, TraceError> {
        let manifest_raw = std::fs::read_to_string(dir.join("manifest.json"))?;
        let manifest: CorpusManifest = serde_json::from_str(&manifest_raw)
            .map_err(|e| TraceError::BadManifest(e.to_string()))?;
        let mut set = TraceSet::new(manifest.app.clone(), manifest.duration_us);
        for probe in &manifest.probes {
            let path = dir.join(format!("{probe}.nawt"));
            let mut r = BufReader::new(File::open(path)?);
            let trace = read_trace(&mut r)?;
            if trace.probe != *probe {
                return Err(TraceError::BadManifest(format!(
                    "{probe}.nawt contains capture for {}",
                    trace.probe
                )));
            }
            set.add(trace);
        }
        if set.total_packets() != manifest.total_packets {
            return Err(TraceError::Truncated {
                expected: manifest.total_packets as u64,
                got: set.total_packets() as u64,
            });
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PacketRecord, PayloadKind};
    use crate::set::ProbeTrace;

    fn sample() -> TraceSet {
        let mut set = TraceSet::new("SopCast", 60_000_000);
        for k in 0..3u32 {
            let probe = Ip::from_octets(10, 0, k as u8, 1);
            let mut t = ProbeTrace::new(probe);
            for i in 0..50u64 {
                t.push(PacketRecord {
                    ts_us: i * 1000,
                    src: Ip(0x3A00_0000 + i as u32),
                    dst: probe,
                    sport: 1,
                    dport: 2,
                    size: 1250,
                    ttl: 110,
                    kind: PayloadKind::Video,
                });
            }
            set.add(t);
        }
        set
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("netaware_corpus_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip() {
        let dir = tmp("rt");
        let set = sample();
        let manifest = set.write_dir(&dir).unwrap();
        assert_eq!(manifest.probes.len(), 3);
        assert_eq!(manifest.total_packets, 150);
        let back = TraceSet::read_dir(&dir).unwrap();
        assert_eq!(back.app, set.app);
        assert_eq!(back.duration_us, set.duration_us);
        assert_eq!(back.total_packets(), set.total_packets());
        assert_eq!(back.probe_set(), set.probe_set());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_probe_file_fails() {
        let dir = tmp("missing");
        let set = sample();
        set.write_dir(&dir).unwrap();
        std::fs::remove_file(dir.join("10.0.1.1.nawt")).unwrap();
        assert!(TraceSet::read_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn count_mismatch_fails() {
        let dir = tmp("count");
        let set = sample();
        set.write_dir(&dir).unwrap();
        // Overwrite one trace with an empty one.
        let empty = ProbeTrace::new(Ip::from_octets(10, 0, 2, 1));
        let mut w = BufWriter::new(File::create(dir.join("10.0.2.1.nawt")).unwrap());
        write_trace(&empty, &mut w).unwrap();
        drop(w);
        assert!(matches!(
            TraceSet::read_dir(&dir),
            Err(TraceError::Truncated { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_fails() {
        let dir = tmp("manifest");
        sample().write_dir(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), "{not json").unwrap();
        assert!(TraceSet::read_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

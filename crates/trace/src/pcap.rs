//! Classic libpcap import/export.
//!
//! The original study worked from tcpdump captures; exporting our traces
//! in the same classic pcap format (synthesising Ethernet/IPv4/UDP
//! headers around each record) keeps them inspectable with standard
//! tooling, and the importer lets externally produced captures flow into
//! the same analysis pipeline.
//!
//! Only what the analysis needs survives the trip: timestamps, endpoint
//! addresses, ports, datagram size, and TTL. The payload-kind ground
//! truth cannot be represented in pcap, so imported records are tagged by
//! the same size heuristic the analysis uses.

use crate::record::{PacketRecord, PayloadKind};
use crate::set::ProbeTrace;
use crate::TraceError;
use netaware_net::Ip;
use std::io::{self, Read, Write};

/// Classic pcap magic (microsecond timestamps, little-endian).
const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_EN10MB: u32 = 1;
const ETH_HDR: usize = 14;
const IP_HDR: usize = 20;
const UDP_HDR: usize = 8;

/// Size boundary used to tag imported packets as video when ground truth
/// is unavailable — matches the analysis heuristic default.
pub const IMPORT_VIDEO_SIZE_THRESHOLD: u16 = 400;

/// Writes a probe trace as a classic pcap file.
pub fn export_pcap<W: Write>(trace: &ProbeTrace, out: &mut W) -> Result<(), TraceError> {
    // Global header.
    out.write_all(&PCAP_MAGIC.to_le_bytes())?;
    out.write_all(&2u16.to_le_bytes())?; // version major
    out.write_all(&4u16.to_le_bytes())?; // version minor
    out.write_all(&0i32.to_le_bytes())?; // thiszone
    out.write_all(&0u32.to_le_bytes())?; // sigfigs
    out.write_all(&65_535u32.to_le_bytes())?; // snaplen
    out.write_all(&LINKTYPE_EN10MB.to_le_bytes())?;

    let mut frame = Vec::with_capacity(ETH_HDR + IP_HDR + UDP_HDR);
    for rec in trace.records_unsorted() {
        frame.clear();
        build_frame(rec, &mut frame);
        // Per-packet header: ts_sec, ts_usec, incl_len, orig_len.
        out.write_all(&((rec.ts_us / 1_000_000) as u32).to_le_bytes())?;
        out.write_all(&((rec.ts_us % 1_000_000) as u32).to_le_bytes())?;
        out.write_all(&(frame.len() as u32).to_le_bytes())?;
        let orig = ETH_HDR as u32 + rec.size as u32;
        out.write_all(&orig.to_le_bytes())?;
        out.write_all(&frame)?;
    }
    Ok(())
}

/// Synthesises Ethernet+IPv4+UDP headers for a record. Captured length is
/// truncated at the UDP header (snap-length style) — the analysis never
/// needs payload bytes, only sizes, which live in the IP total-length
/// field.
fn build_frame(rec: &PacketRecord, out: &mut Vec<u8>) {
    // Ethernet: synthetic MACs derived from the IPs, EtherType IPv4.
    let s = rec.src.octets();
    let d = rec.dst.octets();
    out.extend_from_slice(&[0x02, 0x00, d[0], d[1], d[2], d[3]]);
    out.extend_from_slice(&[0x02, 0x00, s[0], s[1], s[2], s[3]]);
    out.extend_from_slice(&[0x08, 0x00]);

    // IPv4 header.
    let total_len = rec.size.max((IP_HDR + UDP_HDR) as u16);
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP
    out.extend_from_slice(&total_len.to_be_bytes());
    out.extend_from_slice(&[0, 0, 0x40, 0]); // id, flags DF
    out.push(rec.ttl);
    out.push(17); // UDP
    let cksum_at = out.len();
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&s);
    out.extend_from_slice(&d);
    let cksum = ipv4_checksum(&out[ETH_HDR..ETH_HDR + IP_HDR]);
    out[cksum_at..cksum_at + 2].copy_from_slice(&cksum.to_be_bytes());

    // UDP header.
    out.extend_from_slice(&rec.sport.to_be_bytes());
    out.extend_from_slice(&rec.dport.to_be_bytes());
    let udp_len = total_len - IP_HDR as u16;
    out.extend_from_slice(&udp_len.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // checksum optional in IPv4
}

fn ipv4_checksum(hdr: &[u8]) -> u16 {
    let mut sum = 0u32;
    for pair in hdr.chunks(2) {
        let word = u16::from_be_bytes([pair[0], *pair.get(1).unwrap_or(&0)]);
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Incremental pcap reader: yields one [`PacketRecord`] per UDP/IPv4
/// frame without materialising the capture.
///
/// pcap is a foreign format with no ordering guarantee, so unlike
/// [`crate::stream::RecordStream`] this iterator does **not** enforce
/// timestamp monotonicity — collect through
/// [`ProbeTrace::from_records`] (or sort downstream) before analyses
/// that need time order.
pub struct PcapStream<R: Read> {
    input: R,
    skipped: u64,
    done: bool,
}

impl<R: Read> PcapStream<R> {
    /// Opens a stream by validating the 24-byte pcap global header
    /// (classic magic, Ethernet link type).
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut head = [0u8; 24];
        input.read_exact(&mut head)?;
        let magic_bytes = [head[0], head[1], head[2], head[3]];
        let magic = u32::from_le_bytes(magic_bytes);
        if magic != PCAP_MAGIC {
            return Err(TraceError::BadMagic(magic_bytes));
        }
        let linktype = u32::from_le_bytes([head[20], head[21], head[22], head[23]]);
        if linktype != LINKTYPE_EN10MB {
            return Err(TraceError::BadVersion(linktype as u16));
        }
        Ok(PcapStream {
            input,
            skipped: 0,
            done: false,
        })
    }

    /// Frames skipped so far because they were not IPv4/UDP.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Reads frames until one parses, EOF (`Ok(None)`), or an I/O error.
    fn next_record(&mut self) -> Result<Option<PacketRecord>, TraceError> {
        let mut pkt_head = [0u8; 16];
        loop {
            match self.input.read_exact(&mut pkt_head) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
                Err(e) => return Err(e.into()),
            }
            let [s0, s1, s2, s3, u0, u1, u2, u3, i0, i1, i2, i3, ..] = pkt_head;
            let ts_sec = u32::from_le_bytes([s0, s1, s2, s3]) as u64;
            let ts_usec = u32::from_le_bytes([u0, u1, u2, u3]) as u64;
            let incl = u32::from_le_bytes([i0, i1, i2, i3]) as usize;
            let mut frame = vec![0u8; incl];
            self.input.read_exact(&mut frame)?;
            match parse_frame(ts_sec * 1_000_000 + ts_usec, &frame) {
                Some(rec) => return Ok(Some(rec)),
                None => self.skipped += 1,
            }
        }
    }
}

impl<R: Read> Iterator for PcapStream<R> {
    type Item = Result<PacketRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads a classic pcap file captured at `probe` back into a trace.
///
/// Non-IPv4/non-UDP frames are skipped. Returns the trace and the number
/// of skipped frames.
pub fn import_pcap<R: Read>(probe: Ip, input: &mut R) -> Result<(ProbeTrace, u64), TraceError> {
    let mut stream = PcapStream::new(input)?;
    let mut records = Vec::new();
    for rec in stream.by_ref() {
        records.push(rec?);
    }
    Ok((ProbeTrace::from_records(probe, records), stream.skipped()))
}

fn parse_frame(ts_us: u64, frame: &[u8]) -> Option<PacketRecord> {
    if frame.len() < ETH_HDR + IP_HDR + UDP_HDR {
        return None;
    }
    if frame[12] != 0x08 || frame[13] != 0x00 {
        return None; // not IPv4
    }
    let ip = &frame[ETH_HDR..];
    if ip[0] >> 4 != 4 || ip[9] != 17 {
        return None; // not IPv4/UDP
    }
    let ihl = ((ip[0] & 0x0F) as usize) * 4;
    if ihl < IP_HDR || frame.len() < ETH_HDR + ihl + UDP_HDR {
        return None;
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]);
    let ttl = ip[8];
    let src = Ip(u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]));
    let dst = Ip(u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]));
    let udp = &ip[ihl..];
    let sport = u16::from_be_bytes([udp[0], udp[1]]);
    let dport = u16::from_be_bytes([udp[2], udp[3]]);
    Some(PacketRecord {
        ts_us,
        src,
        dst,
        sport,
        dport,
        size: total_len,
        ttl,
        kind: if total_len >= IMPORT_VIDEO_SIZE_THRESHOLD {
            PayloadKind::Video
        } else {
            PayloadKind::Signaling
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ProbeTrace {
        let probe = Ip::from_octets(130, 192, 1, 9);
        let remote = Ip::from_octets(58, 7, 7, 7);
        let mut t = ProbeTrace::new(probe);
        for i in 0..50u64 {
            t.push(PacketRecord {
                ts_us: 1_000_000 + i * 777,
                src: if i % 2 == 0 { remote } else { probe },
                dst: if i % 2 == 0 { probe } else { remote },
                sport: 4000,
                dport: 8021,
                size: if i % 5 == 0 { 120 } else { 1278 },
                ttl: 109,
                kind: if i % 5 == 0 {
                    PayloadKind::Signaling
                } else {
                    PayloadKind::Video
                },
            });
        }
        t
    }

    #[test]
    fn export_import_roundtrip_preserves_analysis_fields() {
        let t = sample_trace();
        let mut buf = Vec::new();
        export_pcap(&t, &mut buf).unwrap();
        let (back, skipped) = import_pcap(t.probe, &mut buf.as_slice()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.len(), t.len());
        for (a, b) in back.records_unsorted().iter().zip(t.records_unsorted()) {
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.sport, b.sport);
            assert_eq!(a.dport, b.dport);
            assert_eq!(a.size, b.size);
            assert_eq!(a.ttl, b.ttl);
        }
    }

    #[test]
    fn import_kind_follows_size_heuristic() {
        let t = sample_trace();
        let mut buf = Vec::new();
        export_pcap(&t, &mut buf).unwrap();
        let (back, _) = import_pcap(t.probe, &mut buf.as_slice()).unwrap();
        for r in back.records_unsorted() {
            if r.size >= IMPORT_VIDEO_SIZE_THRESHOLD {
                assert_eq!(r.kind, PayloadKind::Video);
            } else {
                assert_eq!(r.kind, PayloadKind::Signaling);
            }
        }
    }

    #[test]
    fn global_header_fields() {
        let mut buf = Vec::new();
        export_pcap(&sample_trace(), &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_EN10MB
        );
    }

    #[test]
    fn checksum_is_valid() {
        // Sum of all header 16-bit words including the checksum must be
        // 0xFFFF.
        let mut buf = Vec::new();
        let t = sample_trace();
        export_pcap(&t, &mut buf).unwrap();
        let ip_hdr = &buf[24 + 16 + ETH_HDR..24 + 16 + ETH_HDR + IP_HDR];
        let mut sum = 0u32;
        for pair in ip_hdr.chunks(2) {
            sum += u16::from_be_bytes([pair[0], pair[1]]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum, 0xFFFF);
    }

    #[test]
    fn import_rejects_non_pcap() {
        let garbage = vec![0u8; 64];
        assert!(matches!(
            import_pcap(Ip(0), &mut garbage.as_slice()),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn pcap_stream_yields_frames_incrementally() {
        let t = sample_trace();
        let mut buf = Vec::new();
        export_pcap(&t, &mut buf).unwrap();
        let mut stream = PcapStream::new(buf.as_slice()).unwrap();
        let recs: Vec<PacketRecord> = stream.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), t.len());
        assert_eq!(stream.skipped(), 0);
        assert_eq!(recs[0].ts_us, t.records_unsorted()[0].ts_us);
    }

    #[test]
    fn import_skips_non_udp_frames() {
        let t = sample_trace();
        let mut buf = Vec::new();
        export_pcap(&t, &mut buf).unwrap();
        // Corrupt the protocol byte of the first frame's IP header (TCP).
        let proto_at = 24 + 16 + ETH_HDR + 9;
        buf[proto_at] = 6;
        let (back, skipped) = import_pcap(t.probe, &mut buf.as_slice()).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(back.len(), t.len() - 1);
    }
}

//! Record sinks: where a capture goes as it is produced.
//!
//! The testbed runner historically returned a fully-built
//! [`TraceSet`] — every probe's records resident at once. A
//! [`RecordSink`] inverts that: the producer hands over one finalized
//! [`ProbeTrace`] at a time and the sink decides whether to keep it in
//! memory ([`MemorySink`], the legacy behaviour) or spill it to a corpus
//! directory immediately ([`CorpusSink`], bounding peak memory to a
//! single probe's capture regardless of experiment scale).

use crate::corpus::CorpusManifest;
use crate::format::{write_trace, TraceError};
use crate::set::{ProbeTrace, TraceSet};
use netaware_net::Ip;
use netaware_obs::{Counter, Level, Obs, ProfCell};
use netaware_sim::SimTime;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// Payload bytes carried by a capture (profiling only — computed when a
/// profiler cell is armed, skipped otherwise).
fn trace_bytes(trace: &ProbeTrace) -> u64 {
    trace.records_unsorted().iter().map(|r| r.size as u64).sum()
}

/// Sim time of a sunk trace: its last record's timestamp (the moment
/// the capture was complete), or zero for an empty capture. Reads the
/// unsorted view so a [`MemorySink`] fed a not-yet-finalized trace
/// still stamps a usable time.
fn sink_time(trace: &ProbeTrace) -> SimTime {
    SimTime::from_us(trace.records_unsorted().last().map_or(0, |r| r.ts_us))
}

/// Consumes finalized probe captures one at a time.
///
/// `sink_probe` is called once per probe in experiment order; `finish`
/// seals the sink with the experiment metadata and yields whatever the
/// sink built (a [`TraceSet`], a [`CorpusManifest`], …).
pub trait RecordSink {
    /// What the sink produces once sealed.
    type Output;

    /// Accepts one probe's finalized (time-sorted) capture.
    fn sink_probe(&mut self, trace: ProbeTrace) -> Result<(), TraceError>;

    /// Seals the sink with experiment metadata.
    fn finish(self, app: &str, duration_us: u64) -> Result<Self::Output, TraceError>;
}

/// Keeps every probe trace in memory and builds a [`TraceSet`] — the
/// legacy in-memory path, expressed as a sink.
#[derive(Default)]
pub struct MemorySink {
    traces: Vec<ProbeTrace>,
    obs: Obs,
    records_sunk: Counter,
    prof: ProfCell,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// An in-memory sink reporting `trace.records_sunk` and per-probe
    /// `stream.sink` events through `obs`.
    pub fn with_obs(obs: Obs) -> Self {
        MemorySink {
            traces: Vec::new(),
            records_sunk: obs.counter("trace.records_sunk"),
            prof: obs.prof_cell("trace.sink"),
            obs,
        }
    }
}

impl RecordSink for MemorySink {
    type Output = TraceSet;

    fn sink_probe(&mut self, trace: ProbeTrace) -> Result<(), TraceError> {
        self.records_sunk.add(trace.len() as u64);
        if self.prof.is_enabled() {
            self.prof.add_calls(1);
            self.prof.add_records(trace.len() as u64);
            self.prof.add_bytes(trace_bytes(&trace));
        }
        netaware_obs::event!(
            self.obs,
            Level::Info,
            "stream.sink",
            sink_time(&trace),
            "probe" = trace.probe.to_string(),
            "records" = trace.len(),
        );
        self.traces.push(trace);
        Ok(())
    }

    fn finish(self, app: &str, duration_us: u64) -> Result<TraceSet, TraceError> {
        let mut set = TraceSet::new(app, duration_us);
        for t in self.traces {
            set.add(t);
        }
        Ok(set)
    }
}

/// Spills each probe trace to `<dir>/<probe>.nawt` the moment it
/// arrives, then writes `manifest.json` at [`RecordSink::finish`]. The
/// resulting directory is identical to one saved by
/// [`TraceSet::write_dir`], so it loads with `TraceSet::read_dir` or
/// streams with [`crate::stream::CorpusStream`].
pub struct CorpusSink {
    dir: PathBuf,
    probes: Vec<Ip>,
    total_packets: usize,
    obs: Obs,
    records_sunk: Counter,
    probes_spilled: Counter,
    prof: ProfCell,
}

impl CorpusSink {
    /// Creates the corpus directory (and parents) and an empty sink
    /// writing into it.
    pub fn create(dir: &Path) -> Result<Self, TraceError> {
        CorpusSink::create_with(dir, Obs::default())
    }

    /// Like [`CorpusSink::create`], additionally reporting
    /// `trace.records_sunk` / `trace.probes_spilled` and per-probe
    /// `stream.spill` events through `obs`.
    pub fn create_with(dir: &Path, obs: Obs) -> Result<Self, TraceError> {
        std::fs::create_dir_all(dir)?;
        Ok(CorpusSink {
            dir: dir.to_path_buf(),
            probes: Vec::new(),
            total_packets: 0,
            records_sunk: obs.counter("trace.records_sunk"),
            probes_spilled: obs.counter("trace.probes_spilled"),
            prof: obs.prof_cell("trace.spill"),
            obs,
        })
    }

    /// Where the corpus is being written.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl RecordSink for CorpusSink {
    type Output = CorpusManifest;

    fn sink_probe(&mut self, trace: ProbeTrace) -> Result<(), TraceError> {
        debug_assert!(
            trace.is_sorted(),
            "probe {} sunk before finalize(); corpus files must be time-sorted",
            trace.probe
        );
        let path = self.dir.join(format!("{}.nawt", trace.probe));
        let mut w = BufWriter::new(File::create(path)?);
        self.prof.time(|| write_trace(&trace, &mut w))?;
        self.records_sunk.add(trace.len() as u64);
        self.probes_spilled.inc();
        if self.prof.is_enabled() {
            self.prof.add_records(trace.len() as u64);
            self.prof.add_bytes(trace_bytes(&trace));
        }
        netaware_obs::event!(
            self.obs,
            Level::Info,
            "stream.spill",
            sink_time(&trace),
            "probe" = trace.probe.to_string(),
            "records" = trace.len(),
        );
        self.probes.push(trace.probe);
        self.total_packets += trace.len();
        Ok(())
    }

    fn finish(self, app: &str, duration_us: u64) -> Result<CorpusManifest, TraceError> {
        let manifest = CorpusManifest {
            app: app.to_string(),
            duration_us,
            probes: self.probes,
            total_packets: self.total_packets,
        };
        // netaware-lint: allow(PA01) value-tree serialisation of an in-memory struct cannot fail
        let js = serde_json::to_string_pretty(&manifest).expect("manifest serialises");
        std::fs::write(self.dir.join("manifest.json"), js)?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PacketRecord, PayloadKind};

    fn trace(probe: Ip, n: u64) -> ProbeTrace {
        let mut t = ProbeTrace::new(probe);
        for i in 0..n {
            t.push(PacketRecord {
                ts_us: i * 500,
                src: Ip::from_octets(58, 0, 0, 1),
                dst: probe,
                sport: 1,
                dport: 2,
                size: 1250,
                ttl: 110,
                kind: PayloadKind::Video,
            });
        }
        t
    }

    #[test]
    fn memory_sink_rebuilds_trace_set() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 1, 1);
        let mut sink = MemorySink::new();
        sink.sink_probe(trace(p1, 5)).unwrap();
        sink.sink_probe(trace(p2, 7)).unwrap();
        let set = sink.finish("PPLive", 9_000_000).unwrap();
        assert_eq!(set.app, "PPLive");
        assert_eq!(set.duration_us, 9_000_000);
        assert_eq!(set.traces.len(), 2);
        assert_eq!(set.traces[0].probe, p1);
        assert_eq!(set.total_packets(), 12);
    }

    #[test]
    fn corpus_sink_matches_write_dir_layout() {
        let dir = std::env::temp_dir()
            .join(format!("netaware_sink_layout_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 1, 1);
        let mut sink = CorpusSink::create(&dir).unwrap();
        sink.sink_probe(trace(p1, 5)).unwrap();
        sink.sink_probe(trace(p2, 7)).unwrap();
        let manifest = sink.finish("TVAnts", 60_000_000).unwrap();
        assert_eq!(manifest.probes, vec![p1, p2]);
        assert_eq!(manifest.total_packets, 12);
        // Readable through the eager corpus loader.
        let set = TraceSet::read_dir(&dir).unwrap();
        assert_eq!(set.app, "TVAnts");
        assert_eq!(set.total_packets(), 12);
        // Byte-identical manifest to the TraceSet::write_dir path.
        let via_sink = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let dir2 = std::env::temp_dir()
            .join(format!("netaware_sink_layout2_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir2);
        set.write_dir(&dir2).unwrap();
        let via_set = std::fs::read_to_string(dir2.join("manifest.json")).unwrap();
        assert_eq!(via_sink, via_set);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}

//! Streaming trace readers: records straight off disk, one at a time.
//!
//! [`crate::format::read_trace`] materialises a whole [`crate::ProbeTrace`]
//! before the analysis sees a single packet — fine for CI-scale runs,
//! memory-unbounded at the paper's >140M-packet campaign scale. The
//! streaming readers here yield [`PacketRecord`]s incrementally so an
//! analysis pass can fold over a corpus while holding only its
//! accumulators:
//!
//! * [`RecordStream`] — one `.nawt` probe file, validated record by
//!   record (typed [`TraceError`]s for truncation, corruption and
//!   ordering violations — never a silently short iterator);
//! * [`CorpusStream`] — a saved corpus directory (`manifest.json` plus
//!   per-probe files), handing out one [`RecordStream`] per probe.
//!
//! NAWT files are written post-finalize and are therefore time-sorted;
//! since a streaming reader cannot re-sort, [`RecordStream`] *enforces*
//! monotonic timestamps and fails with [`TraceError::OutOfOrder`] on a
//! file that was written from an unfinalized trace.

use crate::corpus::CorpusManifest;
use crate::format::{read_header, TraceError};
use crate::record::PacketRecord;
use netaware_net::Ip;
use netaware_obs::{Level, Obs};
use netaware_sim::SimTime;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};

/// Stable label for a stream failure, used as the `kind` field of
/// `stream.error` events and as the `trace.stream_errors.<kind>`
/// counter suffix.
fn error_kind(e: &TraceError) -> &'static str {
    match e {
        TraceError::Io(_) => "io",
        TraceError::BadMagic(_) => "bad_magic",
        TraceError::BadVersion(_) => "bad_version",
        TraceError::Truncated { .. } => "truncated",
        TraceError::CorruptRecord(_) => "corrupt_record",
        TraceError::OutOfOrder(_) => "out_of_order",
        TraceError::BadManifest(_) => "bad_manifest",
    }
}

/// Incremental reader over one binary probe trace.
///
/// Iterates `Result<PacketRecord, TraceError>`; after the first error the
/// stream is exhausted (subsequent `next()` calls return `None`), so a
/// `for`-loop with `?` observes each failure exactly once.
pub struct RecordStream<R: Read> {
    input: R,
    probe: Ip,
    expected: u64,
    yielded: u64,
    last_ts: u64,
    done: bool,
    obs: Obs,
}

impl<R: Read> RecordStream<R> {
    /// Opens a stream by parsing the 18-byte NAWT header. Fails with the
    /// same typed errors as [`crate::format::read_trace`].
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let (probe, expected) = read_header(&mut input)?;
        Ok(RecordStream {
            input,
            probe,
            expected,
            yielded: 0,
            last_ts: 0,
            done: false,
            obs: Obs::default(),
        })
    }

    /// Attaches an observability handle: read failures are counted as
    /// `trace.stream_errors.<kind>` and reported as `stream.error`
    /// events stamped with the last good record's sim time.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The capturing probe, from the header.
    pub fn probe(&self) -> Ip {
        self.probe
    }

    /// Number of records the header promises.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Records yielded successfully so far.
    pub fn yielded(&self) -> u64 {
        self.yielded
    }

    fn read_record(&mut self) -> Result<PacketRecord, TraceError> {
        let mut buf = [0u8; PacketRecord::WIRE_SIZE];
        match self.input.read_exact(&mut buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated {
                    expected: self.expected,
                    got: self.yielded,
                });
            }
            Err(e) => return Err(e.into()),
        }
        let rec =
            PacketRecord::decode(&buf).ok_or(TraceError::CorruptRecord(self.yielded))?;
        if rec.ts_us < self.last_ts {
            return Err(TraceError::OutOfOrder(self.yielded));
        }
        self.last_ts = rec.ts_us;
        Ok(rec)
    }

    /// Reports a stream failure through the obs handle. Out of line and
    /// cold so the error machinery (string formatting, event assembly)
    /// stays off the per-record `next()` hot path.
    #[cold]
    #[inline(never)]
    fn report_error(&self, e: &TraceError) {
        let kind = error_kind(e);
        self.obs
            .counter(&format!("trace.stream_errors.{kind}"))
            .inc();
        netaware_obs::event!(
            self.obs,
            Level::Error,
            "stream.error",
            SimTime::from_us(self.last_ts),
            "probe" = self.probe.to_string(),
            "at_record" = self.yielded,
            "kind" = kind,
        );
    }
}

impl<R: Read> Iterator for RecordStream<R> {
    type Item = Result<PacketRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.yielded == self.expected {
            self.done = true;
            return None;
        }
        match self.read_record() {
            Ok(rec) => {
                self.yielded += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.done = true;
                self.report_error(&e);
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let left = (self.expected - self.yielded).min(usize::MAX as u64) as usize;
        (0, Some(left))
    }
}

/// A [`RecordStream`] over a buffered file handle — what
/// [`CorpusStream::open_probe`] hands out.
pub type FileRecordStream = RecordStream<BufReader<File>>;

/// A saved corpus directory opened for streaming: the manifest is loaded
/// eagerly (it is tiny), probe traces are opened lazily one file at a
/// time and never materialised.
pub struct CorpusStream {
    dir: PathBuf,
    manifest: CorpusManifest,
    obs: Obs,
}

impl CorpusStream {
    /// Opens `<dir>/manifest.json`. Fails with [`TraceError::Io`] when the
    /// manifest is missing and [`TraceError::BadManifest`] when it does
    /// not parse.
    pub fn open(dir: &Path) -> Result<Self, TraceError> {
        CorpusStream::open_with(dir, Obs::default())
    }

    /// Like [`CorpusStream::open`], additionally attaching `obs` to
    /// every probe stream handed out by
    /// [`CorpusStream::open_probe`] (see [`RecordStream::set_obs`]).
    pub fn open_with(dir: &Path, obs: Obs) -> Result<Self, TraceError> {
        let raw = std::fs::read_to_string(dir.join("manifest.json"))?;
        let manifest: CorpusManifest =
            serde_json::from_str(&raw).map_err(|e| TraceError::BadManifest(e.to_string()))?;
        Ok(CorpusStream {
            dir: dir.to_path_buf(),
            manifest,
            obs,
        })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &CorpusManifest {
        &self.manifest
    }

    /// Application name recorded at save time.
    pub fn app(&self) -> &str {
        &self.manifest.app
    }

    /// Experiment duration, µs.
    pub fn duration_us(&self) -> u64 {
        self.manifest.duration_us
    }

    /// Probe addresses in trace order (the probe set `W`, including
    /// probes that captured nothing).
    pub fn probes(&self) -> &[Ip] {
        &self.manifest.probes
    }

    /// Total packets the manifest promises across all probes.
    pub fn total_packets(&self) -> usize {
        self.manifest.total_packets
    }

    /// Opens the record stream of one probe, verifying that the file's
    /// header agrees with the manifest about who captured it.
    pub fn open_probe(&self, probe: Ip) -> Result<FileRecordStream, TraceError> {
        let path = self.dir.join(format!("{probe}.nawt"));
        let mut stream = RecordStream::new(BufReader::new(File::open(path)?))?;
        stream.set_obs(self.obs.clone());
        if stream.probe() != probe {
            return Err(TraceError::BadManifest(format!(
                "{probe}.nawt contains capture for {}",
                stream.probe()
            )));
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_trace;
    use crate::record::PayloadKind;
    use crate::set::{ProbeTrace, TraceSet};

    fn rec(ts: u64, src: Ip, dst: Ip) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size: 1250,
            ttl: 110,
            kind: PayloadKind::Video,
        }
    }

    fn sample_bytes(n: u64) -> (ProbeTrace, Vec<u8>) {
        let probe = Ip::from_octets(10, 0, 0, 1);
        let remote = Ip::from_octets(58, 0, 0, 1);
        let mut t = ProbeTrace::new(probe);
        for i in 0..n {
            t.push(rec(i * 100, remote, probe));
        }
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        (t, buf)
    }

    #[test]
    fn streams_whole_trace_in_order() {
        let (t, buf) = sample_bytes(1000);
        let s = RecordStream::new(buf.as_slice()).unwrap();
        assert_eq!(s.probe(), t.probe);
        assert_eq!(s.expected(), 1000);
        let recs: Vec<PacketRecord> = s.map(|r| r.unwrap()).collect();
        assert_eq!(recs.as_slice(), t.records());
    }

    #[test]
    fn truncated_stream_yields_typed_error_then_ends() {
        let (_, mut buf) = sample_bytes(10);
        buf.truncate(18 + 4 * PacketRecord::WIRE_SIZE + 7);
        let mut s = RecordStream::new(buf.as_slice()).unwrap();
        let mut ok = 0;
        let err = loop {
            match s.next().unwrap() {
                Ok(_) => ok += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(ok, 4);
        match err {
            TraceError::Truncated { expected, got } => {
                assert_eq!((expected, got), (10, 4));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(s.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn corrupt_record_reports_index() {
        let (_, mut buf) = sample_bytes(5);
        buf[18 + 2 * PacketRecord::WIRE_SIZE + 23] = 0xFF; // kind byte of record 2
        let errs: Vec<TraceError> = RecordStream::new(buf.as_slice())
            .unwrap()
            .filter_map(|r| r.err())
            .collect();
        assert!(matches!(errs.as_slice(), [TraceError::CorruptRecord(2)]));
    }

    #[test]
    fn out_of_order_file_is_rejected() {
        // write_trace serialises push order; skipping finalize leaves the
        // file unsorted, which the streaming reader must refuse.
        let probe = Ip::from_octets(10, 0, 0, 1);
        let remote = Ip::from_octets(58, 0, 0, 1);
        let mut t = ProbeTrace::new(probe);
        t.push(rec(500, remote, probe));
        t.push(rec(100, remote, probe));
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let errs: Vec<TraceError> = RecordStream::new(buf.as_slice())
            .unwrap()
            .filter_map(|r| r.err())
            .collect();
        assert!(matches!(errs.as_slice(), [TraceError::OutOfOrder(1)]));
    }

    #[test]
    fn empty_trace_streams_nothing() {
        let (_, buf) = sample_bytes(0);
        let mut s = RecordStream::new(buf.as_slice()).unwrap();
        assert!(s.next().is_none());
    }

    #[test]
    fn corpus_stream_walks_every_probe() {
        let dir = std::env::temp_dir()
            .join(format!("netaware_stream_walk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut set = TraceSet::new("SopCast", 60_000_000);
        for k in 0..3u8 {
            let probe = Ip::from_octets(10, 0, k, 1);
            let mut t = ProbeTrace::new(probe);
            for i in 0..20u64 {
                t.push(rec(i * 1000, Ip::from_octets(58, 0, 0, 1), probe));
            }
            set.add(t);
        }
        set.finalize();
        set.write_dir(&dir).unwrap();

        let corpus = CorpusStream::open(&dir).unwrap();
        assert_eq!(corpus.app(), "SopCast");
        assert_eq!(corpus.duration_us(), 60_000_000);
        assert_eq!(corpus.probes().len(), 3);
        let mut total = 0u64;
        for &probe in corpus.probes() {
            for r in corpus.open_probe(probe).unwrap() {
                r.unwrap();
                total += 1;
            }
        }
        assert_eq!(total as usize, corpus.total_packets());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_stream_detects_probe_mismatch() {
        let dir = std::env::temp_dir()
            .join(format!("netaware_stream_mismatch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let probe = Ip::from_octets(10, 0, 0, 1);
        let other = Ip::from_octets(10, 0, 9, 9);
        let mut set = TraceSet::new("X", 1_000_000);
        set.add(ProbeTrace::new(probe));
        set.finalize();
        set.write_dir(&dir).unwrap();
        // Overwrite the probe file with a capture from someone else.
        let imposter = ProbeTrace::new(other);
        let mut w = std::io::BufWriter::new(
            File::create(dir.join(format!("{probe}.nawt"))).unwrap(),
        );
        write_trace(&imposter, &mut w).unwrap();
        drop(w);
        let corpus = CorpusStream::open(&dir).unwrap();
        assert!(matches!(
            corpus.open_probe(probe),
            Err(TraceError::BadManifest(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

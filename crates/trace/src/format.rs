//! Compact binary trace format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   4 B   "NAWT"
//! version 2 B   currently 1
//! probe   4 B   capturing host address
//! count   8 B   number of records
//! records count × 24 B  (see PacketRecord::encode)
//! ```
//!
//! A 1-hour, 44-probe experiment serialises to a few hundred MB — the
//! same order as the original pcap corpus per run, but with fixed-size
//! records it reads back at memory bandwidth.

use crate::record::PacketRecord;
use crate::set::ProbeTrace;
use netaware_net::Ip;
use std::fmt;
use std::io::{self, Read, Write};

/// Format magic.
pub const MAGIC: [u8; 4] = *b"NAWT";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors reading or writing trace files.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes were wrong — not a trace file.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u16),
    /// The file ended before `count` records were read.
    Truncated {
        /// Records expected from the header.
        expected: u64,
        /// Records actually present.
        got: u64,
    },
    /// A record failed to decode (e.g. invalid payload kind).
    CorruptRecord(u64),
    /// A streamed record's timestamp went backwards. Streaming readers
    /// cannot re-sort, so the file must already be time-sorted (traces
    /// are written post-finalize; see `ProbeTrace::finalize`).
    OutOfOrder(
        /// Index of the record that broke monotonicity.
        u64,
    ),
    /// A corpus manifest was missing, unparsable, or inconsistent with
    /// its trace files.
    BadManifest(
        /// What was wrong.
        String,
    ),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic(m) => write!(f, "bad magic {m:?}, not a NAWT trace"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { expected, got } => {
                write!(f, "truncated trace: header said {expected} records, found {got}")
            }
            TraceError::CorruptRecord(i) => write!(f, "corrupt record at index {i}"),
            TraceError::OutOfOrder(i) => {
                write!(f, "record {i} is out of timestamp order; finalize before writing")
            }
            TraceError::BadManifest(why) => write!(f, "bad corpus manifest: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serialises a probe trace to `out`.
///
/// ```
/// use netaware_net::Ip;
/// use netaware_trace::{write_trace, read_trace, ProbeTrace, PacketRecord, PayloadKind};
///
/// let probe = Ip::from_octets(10, 0, 0, 1);
/// let mut t = ProbeTrace::new(probe);
/// t.push(PacketRecord {
///     ts_us: 42, src: Ip::from_octets(58, 0, 0, 1), dst: probe,
///     sport: 1, dport: 2, size: 1250, ttl: 110, kind: PayloadKind::Video,
/// });
/// let mut buf = Vec::new();
/// write_trace(&t, &mut buf).unwrap();
/// let back = read_trace(&mut buf.as_slice()).unwrap();
/// assert_eq!(back.records_unsorted(), t.records_unsorted());
/// ```
pub fn write_trace<W: Write>(trace: &ProbeTrace, out: &mut W) -> Result<(), TraceError> {
    let records = trace.records_unsorted();
    out.write_all(&MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&trace.probe.0.to_le_bytes())?;
    out.write_all(&(records.len() as u64).to_le_bytes())?;
    // Encode in chunks to amortise the Vec growth without holding the
    // whole serialisation in memory.
    let mut buf = Vec::with_capacity(PacketRecord::WIRE_SIZE * 4096);
    for block in records.chunks(4096) {
        buf.clear();
        for r in block {
            r.encode(&mut buf);
        }
        out.write_all(&buf)?;
    }
    Ok(())
}

/// Parses the fixed 18-byte header, returning `(probe, record count)`.
/// Shared by the eager [`read_trace`] and the streaming
/// [`crate::stream::RecordStream`] readers.
pub(crate) fn read_header<R: Read>(input: &mut R) -> Result<(Ip, u64), TraceError> {
    let mut head = [0u8; 18];
    input.read_exact(&mut head)?;
    let [m0, m1, m2, m3, v0, v1, p0, p1, p2, p3, c0, c1, c2, c3, c4, c5, c6, c7] = head;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([v0, v1]);
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let probe = Ip(u32::from_le_bytes([p0, p1, p2, p3]));
    let count = u64::from_le_bytes([c0, c1, c2, c3, c4, c5, c6, c7]);
    Ok((probe, count))
}

/// Deserialises a probe trace from `input`.
pub fn read_trace<R: Read>(input: &mut R) -> Result<ProbeTrace, TraceError> {
    let (probe, count) = read_header(input)?;
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut rec_buf = [0u8; PacketRecord::WIRE_SIZE];
    for i in 0..count {
        match input.read_exact(&mut rec_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated {
                    expected: count,
                    got: i,
                });
            }
            Err(e) => return Err(e.into()),
        }
        let rec = PacketRecord::decode(&rec_buf).ok_or(TraceError::CorruptRecord(i))?;
        records.push(rec);
    }
    Ok(ProbeTrace::from_records(probe, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PayloadKind;

    fn sample_trace(n: u64) -> ProbeTrace {
        let probe = Ip::from_octets(130, 192, 1, 9);
        let mut t = ProbeTrace::new(probe);
        for i in 0..n {
            t.push(PacketRecord {
                ts_us: i * 100,
                src: if i % 2 == 0 { probe } else { Ip(i as u32 | 0x3A00_0000) },
                dst: if i % 2 == 0 { Ip(i as u32 | 0x3A00_0000) } else { probe },
                sport: (i % 65536) as u16,
                dport: 8021,
                size: 60 + (i % 1300) as u16,
                ttl: (100 + i % 28) as u8,
                kind: if i % 3 == 0 {
                    PayloadKind::Signaling
                } else {
                    PayloadKind::Video
                },
            });
        }
        t
    }

    #[test]
    fn roundtrip_empty() {
        let t = sample_trace(0);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.probe, t.probe);
        assert!(back.is_empty());
    }

    #[test]
    fn roundtrip_many() {
        let t = sample_trace(10_000);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 18 + 10_000 * PacketRecord::WIRE_SIZE);
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.probe, t.probe);
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(1), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(1), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected_with_counts() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(10), &mut buf).unwrap();
        buf.truncate(18 + 5 * PacketRecord::WIRE_SIZE + 3);
        match read_trace(&mut buf.as_slice()) {
            Err(TraceError::Truncated { expected, got }) => {
                assert_eq!(expected, 10);
                assert_eq!(got, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_record_detected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(3), &mut buf).unwrap();
        // Payload-kind byte of record 1.
        buf[18 + PacketRecord::WIRE_SIZE + 23] = 0xFF;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::CorruptRecord(1))
        ));
    }

    #[test]
    fn error_display() {
        let e = TraceError::Truncated {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("4"));
        assert!(TraceError::BadVersion(7).to_string().contains("7"));
    }
}

//! # netaware-trace — packet traces captured at probe vantage points
//!
//! The NAPA-WINE study is strictly passive: everything it knows comes from
//! packet-level traces collected at 44 probe hosts. This crate is that
//! capture layer:
//!
//! * [`PacketRecord`] — one captured packet: timestamp, endpoints, ports,
//!   size, received TTL and (ground-truth, for validation only) payload
//!   kind;
//! * [`ProbeTrace`] — the time-ordered capture at one vantage point;
//! * [`TraceSet`] — all probes of one experiment plus metadata (which
//!   application, how long, who the probes were — the set `W`);
//! * [`format`](mod@format) — a compact binary on-disk format with round-trip
//!   guarantees;
//! * [`pcap`] — classic libpcap export/import (synthesising Ethernet,
//!   IPv4 and UDP headers), so traces open in standard tooling;
//! * [`stream`] — incremental readers ([`RecordStream`],
//!   [`CorpusStream`]) that yield records straight off disk so analyses
//!   can run without materialising a [`TraceSet`];
//! * [`sink`] — [`RecordSink`] consumers for captures as they are
//!   produced: in-memory ([`MemorySink`]) or spill-to-disk
//!   ([`CorpusSink`]);
//! * [`filter`] — direction/time/size windowing used by the analysis.
//!
//! The analysis crate never looks at [`PayloadKind`] ground truth — it
//! classifies video vs. signalling from packet sizes exactly like the
//! paper; the ground-truth tag exists so tests can *score* that heuristic.

#![warn(missing_docs)]

pub mod corpus;
pub mod filter;
pub mod format;
pub mod merge;
pub mod pcap;
pub mod record;
pub mod set;
pub mod sink;
pub mod stream;

pub use filter::{Direction, TraceView};
pub use format::{read_trace, write_trace, TraceError};
pub use record::{PacketRecord, PayloadKind};
pub use set::{ProbeTrace, TraceSet};
pub use sink::{CorpusSink, MemorySink, RecordSink};
pub use stream::{CorpusStream, FileRecordStream, RecordStream};

//! Property tests for trace formats and views.

use netaware_net::Ip;
use netaware_trace::pcap::{export_pcap, import_pcap};
use netaware_trace::{
    read_trace, write_trace, Direction, PacketRecord, PayloadKind, ProbeTrace, TraceView,
};
use proptest::prelude::*;

const PROBE: Ip = Ip(0x0A00_0001);

prop_compose! {
    fn arb_record()(
        ts in any::<u64>(),
        remote in 1u32..u32::MAX,
        rx in any::<bool>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        size in 28u16..1500,
        ttl in 1u8..=255,
        video in any::<bool>(),
    ) -> PacketRecord {
        let remote = Ip(remote ^ 0x5000_0000);
        let (src, dst) = if rx { (remote, PROBE) } else { (PROBE, remote) };
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport,
            dport,
            size,
            ttl,
            kind: if video { PayloadKind::Video } else { PayloadKind::Signaling },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Record encode/decode is the identity for every field pattern.
    #[test]
    fn record_codec_roundtrip(r in arb_record()) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        prop_assert_eq!(buf.len(), PacketRecord::WIRE_SIZE);
        let back = PacketRecord::decode(buf[..].try_into().unwrap()).unwrap();
        prop_assert_eq!(back, r);
    }

    /// File format round-trips arbitrary traces bit-for-bit.
    #[test]
    fn file_roundtrip(records in prop::collection::vec(arb_record(), 0..300)) {
        let trace = ProbeTrace::from_records(PROBE, records);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.probe, PROBE);
        prop_assert_eq!(back.records_unsorted(), trace.records_unsorted());
    }

    /// Truncating a valid file anywhere strictly inside yields an error,
    /// never a silent partial read.
    #[test]
    fn any_truncation_errors(records in prop::collection::vec(arb_record(), 1..50), frac in 0.0f64..1.0) {
        let trace = ProbeTrace::from_records(PROBE, records);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(read_trace(&mut &buf[..cut]).is_err());
    }

    /// pcap round-trip preserves analysis fields (sizes below the IP+UDP
    /// header floor are clamped up by the encapsulation).
    #[test]
    fn pcap_roundtrip(records in prop::collection::vec(arb_record(), 0..150)) {
        // pcap stores second+µs timestamps in u32s: stay in range.
        let records: Vec<PacketRecord> = records
            .into_iter()
            .map(|mut r| { r.ts_us %= 4_000_000_000_000_000; r })
            .collect();
        let trace = ProbeTrace::from_records(PROBE, records);
        let mut buf = Vec::new();
        export_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) = import_pcap(PROBE, &mut buf.as_slice()).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in back.records_unsorted().iter().zip(trace.records_unsorted()) {
            prop_assert_eq!(a.ts_us, b.ts_us);
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.sport, b.sport);
            prop_assert_eq!(a.dport, b.dport);
            prop_assert_eq!(a.ttl, b.ttl);
            prop_assert_eq!(a.size, b.size.max(28));
        }
    }

    /// Rx and Tx views partition the trace; window views partition time.
    #[test]
    fn views_partition(records in prop::collection::vec(arb_record(), 0..300), split in any::<u64>()) {
        let trace = ProbeTrace::from_records(PROBE, records);
        let all = TraceView::of(&trace);
        let rx = all.direction(Direction::Rx);
        let tx = all.direction(Direction::Tx);
        prop_assert_eq!(rx.count() + tx.count(), all.count());
        prop_assert_eq!(rx.bytes() + tx.bytes(), all.bytes());
        let early = all.window(0, split);
        let late = all.window(split, u64::MAX);
        // Records exactly at u64::MAX fall out of the half-open window;
        // exclude them from the partition check.
        let at_max = trace.records_unsorted().iter().filter(|r| r.ts_us == u64::MAX).count();
        prop_assert_eq!(early.count() + late.count() + at_max, all.count());
    }
}

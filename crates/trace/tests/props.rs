//! Randomized property tests for trace formats and views, driven by a
//! seeded [`DetRng`] so every run explores the same cases.

use netaware_net::Ip;
use netaware_sim::DetRng;
use netaware_trace::pcap::{export_pcap, import_pcap};
use netaware_trace::{
    read_trace, write_trace, Direction, PacketRecord, PayloadKind, ProbeTrace, TraceView,
};

const PROBE: Ip = Ip(0x0A00_0001);
const CASES: usize = 128;

fn arb_record(rng: &mut DetRng) -> PacketRecord {
    let remote = Ip(rng.range(1..u32::MAX) ^ 0x5000_0000);
    let rx = rng.chance(0.5);
    let (src, dst) = if rx { (remote, PROBE) } else { (PROBE, remote) };
    PacketRecord {
        ts_us: rng.next_u64(),
        src,
        dst,
        sport: rng.range(0..=u16::MAX as u32) as u16,
        dport: rng.range(0..=u16::MAX as u32) as u16,
        size: rng.range(28..1500u32) as u16,
        ttl: rng.range(1..=255u32) as u8,
        kind: if rng.chance(0.5) {
            PayloadKind::Video
        } else {
            PayloadKind::Signaling
        },
    }
}

fn arb_records(rng: &mut DetRng, max_len: usize) -> Vec<PacketRecord> {
    let n = rng.range(0..max_len);
    (0..n).map(|_| arb_record(rng)).collect()
}

/// Record encode/decode is the identity for every field pattern.
#[test]
fn record_codec_roundtrip() {
    let mut rng = DetRng::stream(0x7ACE, "trace/record_codec");
    for _ in 0..CASES {
        let r = arb_record(&mut rng);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), PacketRecord::WIRE_SIZE);
        let back = PacketRecord::decode(buf[..].try_into().unwrap()).unwrap();
        assert_eq!(back, r);
    }
}

/// File format round-trips arbitrary traces bit-for-bit.
#[test]
fn file_roundtrip() {
    let mut rng = DetRng::stream(0x7ACE, "trace/file_roundtrip");
    for _ in 0..CASES {
        let trace = ProbeTrace::from_records(PROBE, arb_records(&mut rng, 300));
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.probe, PROBE);
        assert_eq!(back.records_unsorted(), trace.records_unsorted());
    }
}

/// Truncating a valid file anywhere strictly inside yields an error,
/// never a silent partial read.
#[test]
fn any_truncation_errors() {
    let mut rng = DetRng::stream(0x7ACE, "trace/truncation");
    for _ in 0..CASES {
        let mut records = arb_records(&mut rng, 50);
        if records.is_empty() {
            records.push(arb_record(&mut rng));
        }
        let frac: f64 = rng.range(0.0..1.0);
        let trace = ProbeTrace::from_records(PROBE, records);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        assert!(read_trace(&mut &buf[..cut]).is_err());
    }
}

/// pcap round-trip preserves analysis fields (sizes below the IP+UDP
/// header floor are clamped up by the encapsulation).
#[test]
fn pcap_roundtrip() {
    let mut rng = DetRng::stream(0x7ACE, "trace/pcap_roundtrip");
    for _ in 0..CASES {
        // pcap stores second+µs timestamps in u32s: stay in range.
        let records: Vec<PacketRecord> = arb_records(&mut rng, 150)
            .into_iter()
            .map(|mut r| {
                r.ts_us %= 4_000_000_000_000_000;
                r
            })
            .collect();
        let trace = ProbeTrace::from_records(PROBE, records);
        let mut buf = Vec::new();
        export_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) = import_pcap(PROBE, &mut buf.as_slice()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.len(), trace.len());
        for (a, b) in back.records_unsorted().iter().zip(trace.records_unsorted()) {
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.sport, b.sport);
            assert_eq!(a.dport, b.dport);
            assert_eq!(a.ttl, b.ttl);
            assert_eq!(a.size, b.size.max(28));
        }
    }
}

/// Rx and Tx views partition the trace; window views partition time.
#[test]
fn views_partition() {
    let mut rng = DetRng::stream(0x7ACE, "trace/views_partition");
    for _ in 0..CASES {
        let trace = ProbeTrace::from_records(PROBE, arb_records(&mut rng, 300));
        let split = rng.next_u64();
        let all = TraceView::of(&trace);
        let rx = all.direction(Direction::Rx);
        let tx = all.direction(Direction::Tx);
        assert_eq!(rx.count() + tx.count(), all.count());
        assert_eq!(rx.bytes() + tx.bytes(), all.bytes());
        let early = all.window(0, split);
        let late = all.window(split, u64::MAX);
        // Records exactly at u64::MAX fall out of the half-open window;
        // exclude them from the partition check.
        let at_max = trace
            .records_unsorted()
            .iter()
            .filter(|r| r.ts_us == u64::MAX)
            .count();
        assert_eq!(early.count() + late.count() + at_max, all.count());
    }
}

//! # netaware-testbed — the NAPA-WINE testbed, reconstructed
//!
//! Builds the measurement scenario of the paper: the Table I probe
//! hosts across seven European sites (with their LAN/DSL/CATV access,
//! NAT and firewall flags, ASes and countries), a synthetic external
//! overlay population with 2008-plausible geography (China-dominant)
//! and access-capacity mix, the geolocation registry covering everyone,
//! and an orchestration layer that runs the three application profiles
//! and feeds the captured traces to the analysis — reproducing every
//! table and figure of the paper in one call.

#![warn(missing_docs)]

pub mod hosts;
pub mod matrix;
pub mod population;
pub mod replication;
pub mod runner;
pub mod scenario;

pub use hosts::{table1_hosts, HostDef, Site, SITES};
pub use matrix::{run_matrix, FaultSpec, MatrixConfig, SessionSpec};
pub use population::PopulationConfig;
pub use runner::{
    run_ablation, run_experiment, run_on_scenario, run_paper_suite, run_streamed,
    run_streamed_on_scenario, ExperimentOptions, ExperimentOutput,
};
pub use replication::{run_replicated, ReplicatedSummary, RunStat};
pub use scenario::{BuiltScenario, ScenarioConfig};

//! Scenario assembly: registry, probes, population, network models.
//!
//! The address/AS plan mirrors the paper's setup:
//!
//! * six institution ASes (`AS1`–`AS6`) hosting the seven sites — PoliTO
//!   and UniTN share `AS2` (both on the Italian NREN) but sit in
//!   different subnets, which is exactly what makes Fig. 2's
//!   intra-AS-but-not-subnet cell measurable;
//! * one residential-ISP AS per home probe ("ASx" rows), shared with
//!   that country's external DSL population, so probes can have genuine
//!   same-AS external peers;
//! * four Chinese carrier ASes holding the bulk of the audience;
//! * a handful of rest-of-world ASes feeding the `*` bin of Fig. 1;
//! * a small academic-external contingent inside `AS1`–`AS6` (students
//!   watching the same channel from campus networks).

use crate::hosts::{table1_hosts, HostDef, SITES};
use crate::population::{generate, AccessMix, PopulationConfig, PopulationSlot};
use netaware_net::{
    AccessLink, AddressAllocator, AsId, AsInfo, AsKind, CountryCode, GeoRegistry,
    GeoRegistryBuilder, Ip, LatencyModel, PathModel, Prefix,
};
use netaware_proto::{ExternalSpec, ProbeSpec};
use std::collections::BTreeSet;

/// Scenario-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Master seed (network models, population, swarm all derive from
    /// it).
    pub seed: u64,
    /// Population scale: 1.0 = the paper's overlay sizes; tests and CI
    /// run at a few percent.
    pub scale: f64,
    /// Fraction of the external population in China (the paper measured
    /// ≈0.87 for CCTV-1 at China peak hours). The European, academic and
    /// rest-of-world shares scale proportionally into the remainder —
    /// the knob behind the population-composition robustness experiment.
    pub cn_fraction: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            scale: 1.0,
            cn_fraction: 0.87,
        }
    }
}

/// A fully assembled scenario, ready to hand to a swarm.
pub struct BuiltScenario {
    /// The geolocation registry covering every participant.
    pub registry: GeoRegistry,
    /// Probe specs, parallel to `probe_hosts`.
    pub probes: Vec<ProbeSpec>,
    /// Table I rows behind each probe.
    pub probe_hosts: Vec<HostDef>,
    /// The external population (scaled).
    pub externals: Vec<ExternalSpec>,
    /// The broadcast source.
    pub source: ExternalSpec,
    /// High-bandwidth probe addresses (Table I knowledge, for Fig. 2).
    pub highbw_probe_ips: BTreeSet<Ip>,
    /// Hop model.
    pub paths: PathModel,
    /// Delay model.
    pub latency: LatencyModel,
}

const AS_ACADEMIC: [(u32, &str, CountryCode, [u8; 2]); 6] = [
    (1, "AS1-BME", CountryCode::HU, [152, 66]),
    (2, "AS2-GARR", CountryCode::IT, [130, 192]),
    (3, "AS3-MT", CountryCode::HU, [193, 6]),
    (4, "AS4-ENST", CountryCode::FR, [137, 194]),
    (5, "AS5-FFT", CountryCode::FR, [193, 252]),
    (6, "AS6-WUT", CountryCode::PL, [194, 29]),
];

/// Residential ISP ASes: id, name, country, /16 prefix. The first six
/// host the Table I home probes; the rest only external population.
const AS_RESIDENTIAL: [(u32, &str, CountryCode, [u8; 2]); 8] = [
    (301, "ISP-HU-A", CountryCode::HU, [84, 1]),
    (302, "ISP-IT-A", CountryCode::IT, [84, 2]),
    (303, "ISP-IT-B", CountryCode::IT, [84, 3]),
    (304, "ISP-FR-A", CountryCode::FR, [84, 4]),
    (305, "ISP-IT-C", CountryCode::IT, [84, 5]),
    (306, "ISP-PL-A", CountryCode::PL, [84, 6]),
    (307, "ISP-FR-B", CountryCode::FR, [84, 7]),
    (308, "ISP-HU-B", CountryCode::HU, [84, 8]),
];

const AS_CN: [(u32, &str, [u8; 2], f64); 4] = [
    (100, "CN-NET-A", [58, 0], 0.40),
    (101, "CN-NET-B", [59, 0], 0.28),
    (102, "CN-NET-C", [60, 0], 0.20),
    (103, "CN-NET-D", [61, 0], 0.12),
];

const AS_WORLD: [(u32, &str, CountryCode, [u8; 2]); 7] = [
    (400, "US-NET", CountryCode::US, [12, 0]),
    (401, "JP-NET", CountryCode::JP, [126, 0]),
    (402, "KR-NET", CountryCode::KR, [121, 128]),
    (403, "TW-NET", CountryCode::TW, [114, 32]),
    (404, "DE-NET", CountryCode::DE, [91, 0]),
    (405, "GB-NET", CountryCode::GB, [86, 0]),
    (406, "RU-NET", CountryCode::RU, [95, 0]),
];

/// Which residential AS hosts each Table I home probe.
fn home_as_for(site: &str, host: u8) -> u32 {
    match (site, host) {
        ("BME", _) => 301,
        ("PoliTO", 10) => 302,
        ("PoliTO", _) => 303,
        ("ENST", _) => 304,
        ("UniTN", _) => 305,
        ("WUT", _) => 306,
        _ => 302,
    }
}

impl BuiltScenario {
    /// Assembles the testbed for an overlay of `overlay_size` external
    /// peers (before scaling).
    pub fn build(cfg: &ScenarioConfig, overlay_size: usize) -> Self {
        let mut b = GeoRegistryBuilder::new();

        // The AS tables are compile-time constants with disjoint prefixes,
        // so registration cannot fail at runtime.
        for (id, name, cc, p) in AS_ACADEMIC {
            b.register_as(AsInfo::new(id, cc, AsKind::Academic, name));
            b.announce(Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 16), AsId(id))
                .expect("academic prefix"); // netaware-lint: allow(PA01) const table, disjoint by construction
        }
        for (id, name, cc, p) in AS_RESIDENTIAL {
            b.register_as(AsInfo::new(id, cc, AsKind::ResidentialIsp, name));
            b.announce(Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 16), AsId(id))
                .expect("residential prefix"); // netaware-lint: allow(PA01) const table, disjoint by construction
        }
        for (id, name, p, _) in AS_CN {
            b.register_as(AsInfo::new(id, CountryCode::CN, AsKind::Carrier, name));
            b.announce(Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 10), AsId(id))
                .expect("CN prefix"); // netaware-lint: allow(PA01) const table, disjoint by construction
        }
        for (id, name, cc, p) in AS_WORLD {
            b.register_as(AsInfo::new(id, cc, AsKind::Carrier, name));
            b.announce(Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 12), AsId(id))
                .expect("world prefix"); // netaware-lint: allow(PA01) const table, disjoint by construction
        }
        let registry = b.build();

        // ---- Probes: each site gets a /24 inside its institution AS;
        // home probes get addresses inside their ISP's space.
        let hosts = table1_hosts();
        let mut probes = Vec::with_capacity(hosts.len());
        let mut highbw = BTreeSet::new();
        let mut home_allocs: std::collections::BTreeMap<u32, AddressAllocator> =
            std::collections::BTreeMap::new();
        for h in &hosts {
            let site = h.site_def();
            let ip = if h.home {
                let asn = home_as_for(h.site, h.host);
                let (_, _, _, p) = AS_RESIDENTIAL
                    .iter()
                    .find(|(id, ..)| *id == asn)
                    .expect("home AS registered"); // netaware-lint: allow(PA01) home_as_for only returns table ids
                let alloc = home_allocs.entry(asn).or_insert_with(|| {
                    AddressAllocator::dense(Prefix::of(
                        Ip::from_octets(p[0], p[1], 77, 0),
                        24,
                    ))
                });
                // netaware-lint: allow(PA01) a /24 holds every Table-1 home host
                alloc.next_ip().expect("home subnet has room")
            } else {
                let (_, _, _, p) = AS_ACADEMIC
                    .iter()
                    .find(|(_, name, ..)| name.starts_with(site.as_label))
                    .expect("site AS registered"); // netaware-lint: allow(PA01) every SITES label appears in AS_ACADEMIC
                // Site subnet: one /24 per site, numbered by site index.
                // netaware-lint: allow(PA01) host site names come from SITES itself
                let site_idx = SITES.iter().position(|s| s.name == h.site).unwrap() as u8;
                Ip::from_octets(p[0], p[1], 10 + site_idx, h.host)
            };
            let mut access = AccessLink::open(h.access);
            access.nat = h.nat;
            access.firewall = h.fw;
            probes.push(ProbeSpec { ip, access });
            if h.is_high_bw() {
                highbw.insert(ip);
            }
        }

        // ---- External population slots. Non-CN shares were designed
        // against the paper's 13% remainder; rescale them into whatever
        // remainder the configured CN fraction leaves.
        let cn_fraction = cfg.cn_fraction.clamp(0.0, 1.0);
        let rest_scale = (1.0 - cn_fraction) / 0.13;
        let mut slots = Vec::new();
        for (_, _, p, w) in AS_CN {
            slots.push(PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 10),
                weight: cn_fraction * w,
                mix: AccessMix::CnCarrier,
            });
        }
        // EU residential: HU 1%, IT 2%, FR 1.5%, PL 1% split across that
        // country's ISP ASes.
        let eu_weight = |cc: CountryCode| match cc {
            CountryCode::HU => 0.010,
            CountryCode::IT => 0.020,
            CountryCode::FR => 0.015,
            CountryCode::PL => 0.010,
            _ => 0.0,
        };
        for cc in [CountryCode::HU, CountryCode::IT, CountryCode::FR, CountryCode::PL] {
            let ases: Vec<_> = AS_RESIDENTIAL.iter().filter(|(_, _, c, _)| *c == cc).collect();
            for (_, _, _, p) in &ases {
                slots.push(PopulationSlot {
                    prefix: Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 16),
                    weight: rest_scale * eu_weight(cc) / ases.len() as f64,
                    mix: AccessMix::EuResidential,
                });
            }
        }
        // Academic externals: 0.3% spread over the six institution ASes,
        // in subnets away from the probe sites.
        for (_, _, _, p) in AS_ACADEMIC {
            slots.push(PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(p[0], p[1], 128, 0), 17),
                weight: rest_scale * 0.003 / 6.0,
                mix: AccessMix::Academic,
            });
        }
        // Rest of world.
        for (_, _, _, p) in AS_WORLD {
            slots.push(PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(p[0], p[1], 0, 0), 12),
                weight: rest_scale * 0.072 / 7.0,
                mix: AccessMix::Other,
            });
        }

        let size = ((overlay_size as f64) * cfg.scale).ceil().max(1.0) as usize;
        let mut externals = generate(
            &slots,
            &PopulationConfig {
                size,
                seed: cfg.seed ^ 0x9E37,
            },
        );

        // The CCTV-1 ingest: a high-capacity server in CN-NET-A.
        let source = ExternalSpec {
            ip: Ip::from_octets(58, 10, 0, 1),
            access: AccessLink::lan(),
        };

        // The scattered allocators roam whole ISP prefixes, which include
        // the home-probe subnets: drop the rare collisions.
        let taken: std::collections::BTreeSet<Ip> = probes
            .iter()
            .map(|p| p.ip)
            .chain([source.ip])
            .collect();
        externals.retain(|e| !taken.contains(&e.ip));

        BuiltScenario {
            registry,
            probes,
            probe_hosts: hosts,
            externals,
            source,
            highbw_probe_ips: highbw,
            paths: PathModel::new(cfg.seed ^ 0xA11),
            latency: LatencyModel::new(cfg.seed ^ 0x1A7),
        }
    }

    /// Simulator ground truth for grading the passive inferences
    /// (never visible to the analysis itself).
    pub fn ground_truth(&self) -> netaware_analysis::validation::GroundTruth {
        let mut t = netaware_analysis::validation::GroundTruth::default();
        for e in &self.externals {
            if e.access.class.is_high_bw() {
                t.high_bw.insert(e.ip);
            }
        }
        if self.source.access.class.is_high_bw() {
            t.high_bw.insert(self.source.ip);
        }
        for p in &self.probes {
            if p.access.class.is_high_bw() {
                t.high_bw.insert(p.ip);
            }
            if p.access.class.down_bps() <= 10_000_000 {
                t.narrow_probes.insert(p.ip);
            }
        }
        t
    }

    /// The probe set as peer specs for [`netaware_proto::PeerSetup`].
    pub fn peer_setup(&self) -> netaware_proto::PeerSetup {
        netaware_proto::PeerSetup {
            source: self.source.clone(),
            probes: self.probes.clone(),
            externals: self.externals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_small() -> BuiltScenario {
        BuiltScenario::build(
            &ScenarioConfig {
                seed: 1,
                scale: 1.0,
                ..Default::default()
            },
            2_000,
        )
    }

    #[test]
    fn probe_count_matches_table1() {
        let s = build_small();
        assert_eq!(s.probes.len(), 46);
        assert_eq!(s.probe_hosts.len(), 46);
        assert_eq!(s.highbw_probe_ips.len(), 39);
    }

    #[test]
    fn every_probe_resolves_in_registry() {
        let s = build_small();
        for (p, h) in s.probes.iter().zip(&s.probe_hosts) {
            let asn = s.registry.as_of(p.ip).expect("probe must resolve");
            let cc = s.registry.country_of(p.ip).unwrap();
            assert_eq!(cc, h.site_def().cc, "{}:{}", h.site, h.host);
            if h.home {
                assert!(asn.0 >= 300, "home probe must sit in an ISP AS");
            } else {
                assert!(asn.0 <= 6, "site probe must sit in AS1–AS6");
            }
        }
    }

    #[test]
    fn polito_and_unitn_same_as_different_subnet() {
        let s = build_small();
        let polito = s
            .probes
            .iter()
            .zip(&s.probe_hosts)
            .find(|(_, h)| h.site == "PoliTO" && !h.home)
            .unwrap()
            .0
            .ip;
        let unitn = s
            .probes
            .iter()
            .zip(&s.probe_hosts)
            .find(|(_, h)| h.site == "UniTN" && !h.home)
            .unwrap()
            .0
            .ip;
        assert_eq!(s.registry.as_of(polito), s.registry.as_of(unitn));
        assert!(!polito.same_subnet(unitn));
    }

    #[test]
    fn site_hosts_share_a_subnet() {
        let s = build_small();
        let wut: Vec<Ip> = s
            .probes
            .iter()
            .zip(&s.probe_hosts)
            .filter(|(_, h)| h.site == "WUT" && !h.home)
            .map(|(p, _)| p.ip)
            .collect();
        assert!(wut.len() >= 2);
        assert!(wut.windows(2).all(|w| w[0].same_subnet(w[1])));
    }

    #[test]
    fn population_is_cn_dominant_and_resolvable() {
        let s = build_small();
        let mut cn = 0;
        for e in &s.externals {
            let cc = s
                .registry
                .country_of(e.ip)
                .expect("external must resolve");
            if cc == CountryCode::CN {
                cn += 1;
            }
        }
        let frac = cn as f64 / s.externals.len() as f64;
        assert!((0.82..0.92).contains(&frac), "CN fraction {frac}");
    }

    #[test]
    fn some_externals_share_probe_ases() {
        let s = build_small();
        let probe_as: std::collections::BTreeSet<_> = s
            .probes
            .iter()
            .filter_map(|p| s.registry.as_of(p.ip))
            .collect();
        let same_as_ext = s
            .externals
            .iter()
            .filter(|e| {
                s.registry
                    .as_of(e.ip)
                    .is_some_and(|a| probe_as.contains(&a))
            })
            .count();
        assert!(
            same_as_ext > 5,
            "population must include same-AS externals, got {same_as_ext}"
        );
    }

    #[test]
    fn scale_shrinks_population() {
        let full = BuiltScenario::build(&ScenarioConfig { seed: 1, scale: 1.0, ..Default::default() }, 4_000);
        let tenth = BuiltScenario::build(&ScenarioConfig { seed: 1, scale: 0.1, ..Default::default() }, 4_000);
        // Exact counts minus the rare probe-address collisions.
        assert!((3_995..=4_000).contains(&full.externals.len()));
        assert!((395..=400).contains(&tenth.externals.len()));
    }

    #[test]
    fn no_external_collides_with_probes() {
        let s = build_small();
        let probe_ips: std::collections::BTreeSet<Ip> = s.probes.iter().map(|p| p.ip).collect();
        for e in &s.externals {
            assert!(!probe_ips.contains(&e.ip));
        }
    }

    #[test]
    fn source_is_chinese_lan() {
        let s = build_small();
        assert_eq!(s.registry.country_of(s.source.ip), Some(CountryCode::CN));
        assert!(s.source.access.class.is_high_bw());
    }
}

//! Replicated experiments.
//!
//! The paper's numbers aggregate "more than 120 hours of experiments" —
//! many repeated 1-hour runs. This module runs the same configuration
//! under several seeds (concurrently) and reports cross-run statistics
//! for the headline metrics, so reproduction claims carry error bars
//! instead of single samples.

use crate::runner::{run_experiment, ExperimentOptions, ExperimentOutput};
use netaware_proto::AppProfile;
use netaware_sim::Welford;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Mean ± stddev of one metric across runs.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RunStat {
    /// Cross-run mean.
    pub mean: f64,
    /// Cross-run standard deviation.
    pub stddev: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl RunStat {
    fn from_samples(xs: &[f64]) -> Self {
        let mut w = Welford::new();
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for &x in xs {
            if x.is_nan() {
                continue;
            }
            w.push(x);
            min = min.min(x);
            max = max.max(x);
        }
        if w.count() == 0 {
            return RunStat::default();
        }
        RunStat {
            mean: w.mean(),
            stddev: w.stddev(),
            min,
            max,
        }
    }
}

/// Cross-run statistics of the headline metrics for one application.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReplicatedSummary {
    /// Application name.
    pub app: String,
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Download byte-wise BW preference.
    pub bw_bytes_pct: RunStat,
    /// Download byte-wise AS preference (all contributors).
    pub as_bytes_pct: RunStat,
    /// Download byte-wise HOP preference, probes excluded.
    pub hop_nonw_bytes_pct: RunStat,
    /// Fig. 2 intra/inter ratio.
    pub r_ratio: RunStat,
    /// Table III contributor bytes share among probes.
    pub selfbias_bytes_pct: RunStat,
    /// Mean RX rate, kb/s.
    pub rx_kbps: RunStat,
    /// Stream continuity (ground truth).
    pub continuity: RunStat,
}

/// Runs `profile` under each seed and summarises across runs. Returns
/// the summary plus the individual outputs (in seed order).
pub fn run_replicated(
    profile: &AppProfile,
    base: &ExperimentOptions,
    seeds: &[u64],
) -> (ReplicatedSummary, Vec<ExperimentOutput>) {
    let outputs: Vec<ExperimentOutput> = seeds
        .par_iter()
        .map(|&seed| {
            let opts = ExperimentOptions {
                seed,
                ..base.clone()
            };
            run_experiment(profile.clone(), &opts)
        })
        .collect();

    let pick = |f: &dyn Fn(&ExperimentOutput) -> f64| -> RunStat {
        RunStat::from_samples(&outputs.iter().map(f).collect::<Vec<_>>())
    };
    let summary = ReplicatedSummary {
        app: profile.name.clone(),
        seeds: seeds.to_vec(),
        bw_bytes_pct: pick(&|o| {
            o.analysis
                .preference("BW")
                .map_or(f64::NAN, |p| p.download_all.bytes_pct)
        }),
        as_bytes_pct: pick(&|o| {
            o.analysis
                .preference("AS")
                .map_or(f64::NAN, |p| p.download_all.bytes_pct)
        }),
        hop_nonw_bytes_pct: pick(&|o| {
            o.analysis
                .preference("HOP")
                .map_or(f64::NAN, |p| p.download_nonw.bytes_pct)
        }),
        r_ratio: pick(&|o| o.analysis.asmatrix.r_ratio),
        selfbias_bytes_pct: pick(&|o| o.analysis.selfbias.contrib_bytes_pct),
        rx_kbps: pick(&|o| o.analysis.summary.rx_kbps.mean),
        continuity: pick(&|o| o.report.continuity()),
    };
    (summary, outputs)
}

impl ReplicatedSummary {
    /// Renders a one-line-per-metric report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{} over {} seeds:", self.app, self.seeds.len());
        let row = |name: &str, r: &RunStat| {
            format!(
                "  {:<22} {:8.2} ± {:6.2}  [{:.2}, {:.2}]\n",
                name, r.mean, r.stddev, r.min, r.max
            )
        };
        s.push_str(&row("BW bytes %", &self.bw_bytes_pct));
        s.push_str(&row("AS bytes %", &self.as_bytes_pct));
        s.push_str(&row("HOP bytes % (non-W)", &self.hop_nonw_bytes_pct));
        s.push_str(&row("Fig.2 R", &self.r_ratio));
        s.push_str(&row("self-bias bytes %", &self.selfbias_bytes_pct));
        s.push_str(&row("RX kb/s", &self.rx_kbps));
        s.push_str(&row("continuity", &self.continuity));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runstat_basics() {
        let r = RunStat::from_samples(&[1.0, 2.0, 3.0]);
        assert!((r.mean - 2.0).abs() < 1e-12);
        assert_eq!(r.min, 1.0);
        assert_eq!(r.max, 3.0);
        assert!(r.stddev > 0.0);
    }

    #[test]
    fn runstat_skips_nans() {
        let r = RunStat::from_samples(&[f64::NAN, 4.0]);
        assert_eq!(r.mean, 4.0);
        assert_eq!(r.stddev, 0.0);
    }

    #[test]
    fn runstat_empty_is_default() {
        let r = RunStat::from_samples(&[f64::NAN]);
        assert_eq!(r.mean, 0.0);
    }

    #[test]
    fn replication_is_seed_stable_on_conclusions() {
        let base = ExperimentOptions {
            scale: 0.03,
            duration_us: 45_000_000,
            ..Default::default()
        };
        let (summary, outputs) =
            run_replicated(&AppProfile::sopcast(), &base, &[11, 12, 13]);
        assert_eq!(outputs.len(), 3);
        assert_eq!(summary.seeds, vec![11, 12, 13]);
        // BW conclusion must hold for every seed, tightly.
        assert!(summary.bw_bytes_pct.min > 90.0, "{:?}", summary.bw_bytes_pct);
        assert!(summary.bw_bytes_pct.stddev < 5.0);
        assert!(summary.continuity.min > 0.9);
        let txt = summary.render();
        assert!(txt.contains("SopCast"));
        assert!(txt.contains("BW bytes %"));
    }
}

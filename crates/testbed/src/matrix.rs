//! Scenario-matrix runner: sweep application profiles × swarm scales ×
//! session models × fault plans through the streaming pipeline and emit
//! one deterministic cross-scenario awareness report.
//!
//! The paper's experiment is a single point of this grid (one network
//! condition, three applications). [`run_matrix`] generalises it: a
//! [`MatrixConfig`] names the axes, every cell runs the full
//! scenario → swarm → traces → analysis pipeline under its own fault
//! plan, and the rows land in a
//! [`MatrixReport`](netaware_analysis::scenario::MatrixReport) in fixed
//! sweep order (profiles outermost, faults innermost).
//!
//! ## Determinism contract
//!
//! Cells are independent deterministic experiments sharing one seed, so
//! the report is a pure function of the config: byte-identical across
//! repeat runs, shard counts and toolchains (the CI `scenario-matrix`
//! job re-runs a small config twice and diffs the bytes). Cells execute
//! concurrently under rayon, but results are collected in sweep order,
//! so thread scheduling never reaches the output.

use crate::runner::{run_experiment, run_streamed, ExperimentOptions};
use netaware_analysis::scenario::{CellSummary, MatrixReport};
use netaware_faults::{ChurnPlan, FaultPlan, LinkFaultPlan, SessionModel};
use netaware_proto::AppProfile;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One point on the session axis: a named combination of churn plan and
/// session model. `churn: null, model: null` is the static baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Axis label (appears in cell names; keep it short and path-safe).
    pub name: String,
    /// Churn plan for this point; `None` = static external population.
    pub churn: Option<ChurnPlan>,
    /// Session model reshaping the churn draws; `None` = legacy
    /// exponential process.
    pub model: Option<SessionModel>,
}

/// One point on the fault axis: named link impairments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Axis label (appears in cell names).
    pub name: String,
    /// Link impairments; the default is a clean link.
    pub link: LinkFaultPlan,
}

/// The scenario matrix: one seed, one duration, four axes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Master seed shared by every cell.
    pub seed: u64,
    /// Simulated duration per cell, µs.
    pub duration_us: u64,
    /// Application profiles, by [`AppProfile::by_name`] name or alias.
    pub profiles: Vec<String>,
    /// Swarm scale factors (1.0 = paper-size overlays).
    pub scales: Vec<f64>,
    /// Session axis points.
    pub sessions: Vec<SessionSpec>,
    /// Fault axis points.
    pub faults: Vec<FaultSpec>,
}

impl MatrixConfig {
    /// A small ready-to-run example (also the CLI `matrix --example`
    /// template): two profiles — one paper app, one epidemic push — a
    /// single scale, baseline vs flash-crowd sessions, clean vs lossy
    /// links.
    pub fn example() -> Self {
        MatrixConfig {
            seed: 777,
            duration_us: 20_000_000,
            profiles: vec!["pplive".into(), "epidemic-rp".into()],
            scales: vec![0.02],
            sessions: vec![
                SessionSpec {
                    name: "baseline".into(),
                    churn: Some(ChurnPlan::preset()),
                    model: None,
                },
                SessionSpec {
                    name: "flashcrowd".into(),
                    churn: Some(ChurnPlan::preset()),
                    model: Some(SessionModel::flashcrowd_preset()),
                },
            ],
            faults: vec![
                FaultSpec {
                    name: "clean".into(),
                    link: LinkFaultPlan::default(),
                },
                FaultSpec {
                    name: "lossy".into(),
                    link: LinkFaultPlan {
                        loss: 0.05,
                        jitter_us: 2_000,
                        ..LinkFaultPlan::default()
                    },
                },
            ],
        }
    }

    /// The example config as pretty JSON (CLI template output).
    pub fn example_json() -> String {
        serde_json::to_string_pretty(&Self::example()).unwrap_or_default()
    }

    /// Parses and validates a config from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let cfg: MatrixConfig = serde_json::from_str(s).map_err(|e| e.to_string())?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates the config: non-empty axes, resolvable profile names,
    /// unique path-safe axis labels, and a valid fault plan per
    /// session/fault combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_us == 0 {
            return Err("duration_us must be > 0".into());
        }
        if self.profiles.is_empty()
            || self.scales.is_empty()
            || self.sessions.is_empty()
            || self.faults.is_empty()
        {
            return Err("every axis (profiles/scales/sessions/faults) needs ≥ 1 entry".into());
        }
        for p in &self.profiles {
            if AppProfile::by_name(p).is_none() {
                return Err(format!("unknown profile {p:?} (see AppProfile::all)"));
            }
        }
        for &s in &self.scales {
            if !(s > 0.0 && s.is_finite()) {
                return Err(format!("scale {s} must be finite and > 0"));
            }
        }
        let mut names: Vec<&str> = self.sessions.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.sessions.len() || names.contains(&"") {
            return Err("session names must be unique and non-empty".into());
        }
        let mut names: Vec<&str> = self.faults.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.faults.len() || names.contains(&"") {
            return Err("fault names must be unique and non-empty".into());
        }
        for sess in &self.sessions {
            for fs in &self.faults {
                cell_plan(sess, fs).validate().map_err(|e| {
                    format!("session {:?} × faults {:?}: {e}", sess.name, fs.name)
                })?;
            }
        }
        Ok(())
    }
}

/// The fault plan one (session, fault) combination runs under.
fn cell_plan(sess: &SessionSpec, fs: &FaultSpec) -> FaultPlan {
    FaultPlan {
        link: fs.link,
        churn: sess.churn.clone(),
        session: sess.model.clone(),
    }
}

/// Stable cell label: `<profile>/x<scale>/<session>/<faults>`.
fn cell_label(profile: &str, scale: f64, session: &str, faults: &str) -> String {
    format!("{}/x{}/{}/{}", profile.to_lowercase(), scale, session, faults)
}

/// Filesystem-safe form of a cell label (per-cell corpus directory).
fn cell_dirname(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '-' => c,
            _ => '_',
        })
        .collect()
}

/// Runs the whole matrix. With `out_dir` set, every cell streams its
/// capture to `out_dir/<cell-dirname>/` (a re-analysable corpus);
/// without it, cells run in memory. `shards` is forwarded to each
/// swarm's event loop (sharded cells are byte-identical to serial
/// ones). Returns the report in fixed sweep order.
pub fn run_matrix(
    cfg: &MatrixConfig,
    shards: usize,
    out_dir: Option<&Path>,
) -> Result<MatrixReport, String> {
    cfg.validate()?;
    // Enumerate cells in sweep order first; rayon preserves this order
    // in the collected results regardless of execution interleaving.
    let mut todo = Vec::new();
    for pname in &cfg.profiles {
        let profile = AppProfile::by_name(pname)
            .ok_or_else(|| format!("unknown profile {pname:?}"))?;
        for &scale in &cfg.scales {
            for sess in &cfg.sessions {
                for fs in &cfg.faults {
                    todo.push((profile.clone(), scale, sess, fs));
                }
            }
        }
    }
    let cells: Vec<Result<CellSummary, String>> = todo
        .into_par_iter()
        .map(|(profile, scale, sess, fs)| {
            let label = cell_label(&profile.name, scale, &sess.name, &fs.name);
            let opts = ExperimentOptions {
                seed: cfg.seed,
                scale,
                duration_us: cfg.duration_us,
                faults: cell_plan(sess, fs),
                shards,
                ..Default::default()
            };
            let out = match out_dir {
                Some(dir) => run_streamed(profile.clone(), &opts, &dir.join(cell_dirname(&label)))
                    .map_err(|e| format!("cell {label}: {e:?}"))?,
                None => run_experiment(profile.clone(), &opts),
            };
            Ok(CellSummary::from_analysis(
                label,
                profile.name.clone(),
                scale,
                sess.name.clone(),
                fs.name.clone(),
                &out.analysis,
                (
                    out.report.continuity(),
                    out.report.chunks_delivered,
                    out.report.chunks_pushed,
                    out.report.peers_departed,
                    out.report.peers_arrived,
                ),
            ))
        })
        .collect();
    let cells = cells.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(MatrixReport {
        seed: cfg.seed,
        duration_us: cfg.duration_us,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_config_validates_and_round_trips() {
        let cfg = MatrixConfig::from_json(&MatrixConfig::example_json()).expect("example parses");
        assert_eq!(cfg, MatrixConfig::example());
        assert_eq!(cfg.profiles.len() * cfg.sessions.len() * cfg.faults.len(), 8);
    }

    #[test]
    fn validation_catches_config_mistakes() {
        let mut cfg = MatrixConfig::example();
        cfg.profiles.push("no-such-app".into());
        assert!(cfg.validate().is_err());

        let mut cfg = MatrixConfig::example();
        cfg.sessions[1].name = "baseline".into(); // duplicate
        assert!(cfg.validate().is_err());

        let mut cfg = MatrixConfig::example();
        cfg.sessions[1].churn = None; // model without churn
        assert!(cfg.validate().is_err());

        let mut cfg = MatrixConfig::example();
        cfg.scales = vec![0.0];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cell_labels_are_stable_and_path_safe() {
        let label = cell_label("Epidemic-RP", 0.02, "flashcrowd", "lossy");
        assert_eq!(label, "epidemic-rp/x0.02/flashcrowd/lossy");
        assert_eq!(cell_dirname(&label), "epidemic-rp_x0.02_flashcrowd_lossy");
    }

    #[test]
    fn tiny_matrix_runs_and_is_deterministic() {
        let cfg = MatrixConfig {
            seed: 9,
            duration_us: 12_000_000,
            profiles: vec!["tvants".into(), "epidemic-ba".into()],
            scales: vec![0.02],
            sessions: vec![SessionSpec {
                name: "baseline".into(),
                churn: Some(ChurnPlan::preset()),
                model: None,
            }],
            faults: vec![FaultSpec {
                name: "clean".into(),
                link: LinkFaultPlan::default(),
            }],
        };
        let a = run_matrix(&cfg, 1, None).expect("matrix runs");
        let b = run_matrix(&cfg, 1, None).expect("matrix runs");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.cells.len(), 2);
        assert_eq!(a.cells[0].profile, "TVAnts");
        assert_eq!(a.cells[1].profile, "Epidemic-BA");
        // The epidemic cell actually pushed; the pull-only cell did not.
        assert_eq!(a.cells[0].chunks_pushed, 0);
        assert!(a.cells[1].chunks_pushed > 0, "epidemic profile never pushed");
    }
}

//! Experiment orchestration: scenario → swarm → traces → analysis.
//!
//! [`run_experiment`] executes one application profile end-to-end;
//! [`run_paper_suite`] runs all three paper applications concurrently
//! (rayon) and returns their analyses in the paper's presentation order.
//! Independent experiments are the parallelism boundary: each swarm is
//! single-threaded and deterministic, so the suite is reproducible
//! regardless of thread scheduling.

use crate::scenario::{BuiltScenario, ScenarioConfig};
use netaware_analysis::{
    analyze_corpus_with_obs, analyze_with_obs, AnalysisConfig, ExperimentAnalysis,
};
use netaware_faults::FaultPlan;
use netaware_obs::{Level, Obs};
use netaware_proto::{
    AppProfile, NetworkEnv, StreamParams, Swarm, SwarmConfig, SwarmReport,
};
use netaware_sim::SimTime;
use netaware_trace::{CorpusSink, MemorySink, TraceError, TraceSet};
use rayon::prelude::*;
use std::path::Path;

/// Options for one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Master seed.
    pub seed: u64,
    /// Population scale (1.0 = paper-size overlays).
    pub scale: f64,
    /// Experiment duration, µs (the paper ran 1 hour).
    pub duration_us: u64,
    /// Analysis thresholds.
    pub analysis: AnalysisConfig,
    /// Keep the raw traces in the output (they can be large).
    pub keep_traces: bool,
    /// Observability handle threaded through the swarm, the trace
    /// sinks, and the analysis. Defaults to disabled (all
    /// instrumentation is a no-op). Note: [`run_paper_suite`] and
    /// [`run_ablation`] run experiments concurrently, so a shared
    /// enabled handle interleaves their events nondeterministically —
    /// the per-run event-log determinism guarantee applies to a single
    /// experiment per handle.
    pub obs: Obs,
    /// Fault-injection plan (link loss/jitter/outages, peer churn).
    /// Defaults to the no-op plan, which installs nothing and leaves
    /// runs byte-identical to fault-unaware ones.
    pub faults: FaultPlan,
    /// Shard workers for the swarm event loop (default 1 = serial).
    /// Sharded runs are byte-identical to serial ones; see
    /// `Swarm::set_shards`.
    pub shards: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seed: 42,
            scale: 0.05,
            duration_us: 120_000_000,
            analysis: AnalysisConfig::default(),
            keep_traces: false,
            obs: Obs::default(),
            faults: FaultPlan::none(),
            shards: 1,
        }
    }
}

impl ExperimentOptions {
    /// Paper-scale options: full overlays, one hour. Heavy — minutes of
    /// CPU and GBs of trace per application.
    pub fn paper_scale(seed: u64) -> Self {
        ExperimentOptions {
            seed,
            scale: 1.0,
            duration_us: 3_600_000_000,
            ..Default::default()
        }
    }

    /// CI-scale options: a few percent of the population, two minutes.
    pub fn ci_scale(seed: u64) -> Self {
        ExperimentOptions {
            seed,
            ..Default::default()
        }
    }
}

/// Everything one experiment produced.
pub struct ExperimentOutput {
    /// Application name.
    pub app: String,
    /// The passive analysis (all tables/figures for this app).
    pub analysis: ExperimentAnalysis,
    /// Simulator ground truth (validation only).
    pub report: SwarmReport,
    /// Raw traces, when requested.
    pub traces: Option<TraceSet>,
}

/// Runs one application end-to-end.
pub fn run_experiment(profile: AppProfile, opts: &ExperimentOptions) -> ExperimentOutput {
    let scenario = {
        let _build = opts.obs.pspan("testbed.build");
        BuiltScenario::build(
            &ScenarioConfig {
                seed: opts.seed,
                scale: opts.scale,
                ..Default::default()
            },
            profile.overlay_size,
        )
    };
    run_on_scenario(profile, &scenario, opts)
}

/// Runs one application on an already-built scenario.
pub fn run_on_scenario(
    profile: AppProfile,
    scenario: &BuiltScenario,
    opts: &ExperimentOptions,
) -> ExperimentOutput {
    let app = profile.name.clone();
    let tspan = opts.obs.pspan("testbed.run");
    tspan.add_sim_us(opts.duration_us);
    let env = NetworkEnv {
        registry: &scenario.registry,
        paths: scenario.paths,
        latency: scenario.latency,
    };
    let cfg = SwarmConfig {
        seed: opts.seed,
        duration_us: opts.duration_us,
        stream: StreamParams::cctv1(),
        profile,
    };
    netaware_obs::event!(
        opts.obs,
        Level::Info,
        "testbed.experiment",
        SimTime::ZERO,
        "app" = app.as_str(),
        "seed" = opts.seed,
        "scale" = opts.scale,
        "streamed" = false,
    );
    let mut swarm = Swarm::new(cfg, env, scenario.peer_setup());
    swarm.set_obs(opts.obs.clone());
    swarm.set_faults(&opts.faults);
    swarm.set_shards(opts.shards);
    let (traces, report) = {
        let _swarm_span = opts.obs.span("testbed.swarm");
        match swarm.run_into(MemorySink::with_obs(opts.obs.clone())) {
            Ok(out) => out,
            // MemorySink::sink_probe / finish are infallible.
            Err(_) => unreachable!("in-memory sink cannot fail"),
        }
    };
    let analysis = analyze_with_obs(
        &traces,
        &scenario.registry,
        &opts.analysis,
        &scenario.highbw_probe_ips,
        &opts.obs,
    );
    ExperimentOutput {
        app,
        analysis,
        report,
        traces: opts.keep_traces.then_some(traces),
    }
}

/// Runs one application end-to-end with the capture spilled to an
/// on-disk corpus at `dir` and the analysis streamed back off disk —
/// the full `TraceSet` is never resident, so peak memory is bounded by
/// one probe's capture plus the analysis accumulators. The corpus
/// directory is left in place for re-analysis or sharing.
pub fn run_streamed(
    profile: AppProfile,
    opts: &ExperimentOptions,
    dir: &Path,
) -> Result<ExperimentOutput, TraceError> {
    let scenario = {
        let _build = opts.obs.pspan("testbed.build");
        BuiltScenario::build(
            &ScenarioConfig {
                seed: opts.seed,
                scale: opts.scale,
                ..Default::default()
            },
            profile.overlay_size,
        )
    };
    run_streamed_on_scenario(profile, &scenario, opts, dir)
}

/// [`run_streamed`] on an already-built scenario.
pub fn run_streamed_on_scenario(
    profile: AppProfile,
    scenario: &BuiltScenario,
    opts: &ExperimentOptions,
    dir: &Path,
) -> Result<ExperimentOutput, TraceError> {
    let app = profile.name.clone();
    let tspan = opts.obs.pspan("testbed.run");
    tspan.add_sim_us(opts.duration_us);
    let env = NetworkEnv {
        registry: &scenario.registry,
        paths: scenario.paths,
        latency: scenario.latency,
    };
    let cfg = SwarmConfig {
        seed: opts.seed,
        duration_us: opts.duration_us,
        stream: StreamParams::cctv1(),
        profile,
    };
    netaware_obs::event!(
        opts.obs,
        Level::Info,
        "testbed.experiment",
        SimTime::ZERO,
        "app" = app.as_str(),
        "seed" = opts.seed,
        "scale" = opts.scale,
        "streamed" = true,
    );
    let mut swarm = Swarm::new(cfg, env, scenario.peer_setup());
    swarm.set_obs(opts.obs.clone());
    swarm.set_faults(&opts.faults);
    swarm.set_shards(opts.shards);
    let (manifest, report) = {
        let _swarm_span = opts.obs.span("testbed.swarm");
        swarm.run_into(CorpusSink::create_with(dir, opts.obs.clone())?)?
    };
    let analysis = analyze_corpus_with_obs(
        dir,
        &scenario.registry,
        &opts.analysis,
        &scenario.highbw_probe_ips,
        &opts.obs,
    )?;
    debug_assert_eq!(manifest.total_packets, analysis.total_packets);
    Ok(ExperimentOutput {
        app,
        analysis,
        report,
        traces: None,
    })
}

/// Runs the three paper applications (PPLive, SopCast, TVAnts)
/// concurrently and returns their outputs in that order.
pub fn run_paper_suite(opts: &ExperimentOptions) -> Vec<ExperimentOutput> {
    AppProfile::paper_apps()
        .into_par_iter()
        .map(|p| run_experiment(p, opts))
        .collect()
}

/// Runs native-vs-uniform ablation pairs for every paper application:
/// `(native output, uniform-selection output)` per app.
pub fn run_ablation(opts: &ExperimentOptions) -> Vec<(ExperimentOutput, ExperimentOutput)> {
    AppProfile::paper_apps()
        .into_par_iter()
        .map(|p| {
            let native = run_experiment(p.clone(), opts);
            let uniform = run_experiment(p.uniform_selection(), opts);
            (native, uniform)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_proto::AppProfile;

    fn quick_opts() -> ExperimentOptions {
        ExperimentOptions {
            seed: 7,
            scale: 0.02,
            duration_us: 40_000_000,
            analysis: AnalysisConfig::default(),
            keep_traces: false,
            obs: Obs::default(),
            faults: FaultPlan::none(),
            shards: 1,
        }
    }

    #[test]
    fn single_experiment_produces_analysis() {
        let out = run_experiment(AppProfile::tvants(), &quick_opts());
        assert_eq!(out.app, "TVAnts");
        assert!(out.analysis.total_packets > 0);
        assert!(out.report.chunks_delivered > 0);
        assert!(out.traces.is_none());
        // BW download preference must be measurable.
        let bw = out.analysis.preference("BW").unwrap();
        assert!(bw.download_all.is_measurable());
    }

    #[test]
    fn traces_kept_on_request() {
        let mut opts = quick_opts();
        opts.keep_traces = true;
        let out = run_experiment(AppProfile::sopcast(), &opts);
        let t = out.traces.expect("traces requested");
        assert_eq!(t.traces.len(), 46);
        assert_eq!(t.total_packets(), out.analysis.total_packets);
    }

    #[test]
    fn streamed_run_matches_in_memory_run() {
        let dir = std::env::temp_dir()
            .join(format!("netaware_runner_streamed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = quick_opts();
        opts.duration_us = 25_000_000;
        let mem = run_experiment(AppProfile::tvants(), &opts);
        let streamed = run_streamed(AppProfile::tvants(), &opts, &dir).unwrap();
        assert!(streamed.traces.is_none());
        assert_eq!(streamed.analysis.to_json(), mem.analysis.to_json());
        // The spilled corpus is a loadable artifact.
        let set = TraceSet::read_dir(&dir).unwrap();
        assert_eq!(set.total_packets(), mem.analysis.total_packets);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_experiment(AppProfile::sopcast(), &quick_opts());
        let b = run_experiment(AppProfile::sopcast(), &quick_opts());
        assert_eq!(a.analysis.total_packets, b.analysis.total_packets);
        assert_eq!(a.analysis.total_bytes, b.analysis.total_bytes);
        let (pa, pb) = (
            a.analysis.preference("AS").unwrap(),
            b.analysis.preference("AS").unwrap(),
        );
        assert_eq!(pa.download_all.peers_pct, pb.download_all.peers_pct);
    }

    #[test]
    fn suite_runs_all_three_apps_in_order() {
        let mut opts = quick_opts();
        opts.duration_us = 25_000_000;
        let outs = run_paper_suite(&opts);
        let names: Vec<&str> = outs.iter().map(|o| o.app.as_str()).collect();
        assert_eq!(names, vec!["PPLive", "SopCast", "TVAnts"]);
        for o in &outs {
            assert!(o.report.continuity() > 0.5, "{} starving", o.app);
        }
    }
}

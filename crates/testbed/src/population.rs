//! Synthetic external-peer population.
//!
//! The paper's overlays were dominated by Chinese peers (CCTV-1 during
//! China peak hours) with a sprinkle of European ones; access capacities
//! follow a 2008-plausible mix of residential DSL/CATV, fiber, and
//! institution LANs. The generator is deterministic in its seed and
//! draws addresses from per-AS allocators so the geolocation registry
//! can resolve every peer.

use netaware_net::{AccessClass, AccessLink, AddressAllocator, Prefix};
use netaware_proto::ExternalSpec;
use netaware_sim::DetRng;
use serde::{Deserialize, Serialize};

/// Access-capacity mix archetypes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMix {
    /// Chinese carrier: some campus/cafe LANs and fast fiber, mostly
    /// ADSL.
    CnCarrier,
    /// European residential ISP: DSL/CATV with a fiber tail.
    EuResidential,
    /// Academic network: LANs and throttled dorm links.
    Academic,
    /// Rest-of-world mix.
    Other,
}

impl AccessMix {
    /// Draws an access link from the mix.
    pub fn draw(self, rng: &mut DetRng) -> AccessLink {
        let u = rng.unit();
        let class = match self {
            AccessMix::CnCarrier => {
                if u < 0.18 {
                    AccessClass::Lan
                } else if u < 0.36 {
                    AccessClass::Fiber(100_000, 20_000)
                } else if u < 0.66 {
                    AccessClass::Dsl(4_000, 512)
                } else if u < 0.86 {
                    AccessClass::Dsl(2_000, 384)
                } else {
                    AccessClass::Catv(6_000, 512)
                }
            }
            AccessMix::EuResidential => {
                if u < 0.12 {
                    AccessClass::Fiber(100_000, 20_000)
                } else if u < 0.52 {
                    AccessClass::Dsl(8_000, 512)
                } else if u < 0.82 {
                    AccessClass::Dsl(4_000, 384)
                } else {
                    AccessClass::Catv(6_000, 512)
                }
            }
            AccessMix::Academic => {
                if u < 0.8 {
                    AccessClass::Lan
                } else {
                    // Dorm/VPN links: fast down, capped up — NOT high-bw.
                    AccessClass::Fiber(20_000, 8_000)
                }
            }
            AccessMix::Other => {
                if u < 0.2 {
                    AccessClass::Fiber(100_000, 20_000)
                } else if u < 0.7 {
                    AccessClass::Dsl(6_000, 512)
                } else {
                    AccessClass::Catv(6_000, 512)
                }
            }
        };
        // A share of residential links sit behind NAT.
        let nat = matches!(
            class,
            AccessClass::Dsl(..) | AccessClass::Catv(..) | AccessClass::Fiber(..)
        ) && rng.chance(0.3);
        let link = AccessLink::open(class);
        if nat {
            link.with_nat()
        } else {
            link
        }
    }
}

/// One AS the population draws peers into.
#[derive(Clone, Debug)]
pub struct PopulationSlot {
    /// Prefix peers are allocated from.
    pub prefix: Prefix,
    /// Relative share of the population living here.
    pub weight: f64,
    /// Access mix of the AS.
    pub mix: AccessMix,
}

/// Population generation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of external peers to generate.
    pub size: usize,
    /// Seed for the generator streams.
    pub seed: u64,
}

/// Generates `cfg.size` external peers distributed over `slots` by
/// weight, with per-slot scattered addressing and access mixes.
pub fn generate(slots: &[PopulationSlot], cfg: &PopulationConfig) -> Vec<ExternalSpec> {
    assert!(!slots.is_empty(), "population needs at least one slot");
    let mut rng = DetRng::stream(cfg.seed, "population");
    let mut weights: Vec<f64> = slots.iter().map(|s| s.weight).collect();
    let mut allocators: Vec<AddressAllocator> = slots
        .iter()
        .enumerate()
        .map(|(i, s)| AddressAllocator::scattered(s.prefix, cfg.seed ^ (i as u64) << 17))
        .collect();

    let mut peers = Vec::with_capacity(cfg.size);
    while peers.len() < cfg.size {
        let Some(k) = rng.pick_weighted(&weights) else {
            break; // every slot exhausted
        };
        let Ok(ip) = allocators[k].next_ip() else {
            weights[k] = 0.0; // slot exhausted: stop drawing from it
            continue;
        };
        let access = slots[k].mix.draw(&mut rng);
        peers.push(ExternalSpec { ip, access });
    }
    peers
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_net::Ip;

    fn slots() -> Vec<PopulationSlot> {
        vec![
            PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(58, 0, 0, 0), 9),
                weight: 0.9,
                mix: AccessMix::CnCarrier,
            },
            PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(84, 0, 0, 0), 16),
                weight: 0.1,
                mix: AccessMix::EuResidential,
            },
        ]
    }

    #[test]
    fn generates_requested_count() {
        let peers = generate(&slots(), &PopulationConfig { size: 2_000, seed: 1 });
        assert_eq!(peers.len(), 2_000);
    }

    #[test]
    fn respects_weights_roughly() {
        let peers = generate(&slots(), &PopulationConfig { size: 5_000, seed: 2 });
        let cn = peers
            .iter()
            .filter(|p| Prefix::of(Ip::from_octets(58, 0, 0, 0), 9).contains(p.ip))
            .count();
        let frac = cn as f64 / peers.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "CN fraction {frac}");
    }

    #[test]
    fn addresses_unique_and_in_prefix() {
        let peers = generate(&slots(), &PopulationConfig { size: 3_000, seed: 3 });
        let mut seen = std::collections::HashSet::new();
        for p in &peers {
            assert!(seen.insert(p.ip), "duplicate {ip}", ip = p.ip);
            assert!(
                Prefix::of(Ip::from_octets(58, 0, 0, 0), 9).contains(p.ip)
                    || Prefix::of(Ip::from_octets(84, 0, 0, 0), 16).contains(p.ip)
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&slots(), &PopulationConfig { size: 500, seed: 7 });
        let b = generate(&slots(), &PopulationConfig { size: 500, seed: 7 });
        let c = generate(&slots(), &PopulationConfig { size: 500, seed: 8 });
        assert_eq!(
            a.iter().map(|p| p.ip).collect::<Vec<_>>(),
            b.iter().map(|p| p.ip).collect::<Vec<_>>()
        );
        assert_ne!(
            a.iter().map(|p| p.ip).collect::<Vec<_>>(),
            c.iter().map(|p| p.ip).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cn_mix_has_plausible_highbw_share() {
        let mut rng = DetRng::stream(5, "mix");
        let n = 20_000;
        let high = (0..n)
            .filter(|_| AccessMix::CnCarrier.draw(&mut rng).class.is_high_bw())
            .count();
        let frac = high as f64 / n as f64;
        assert!((0.30..0.45).contains(&frac), "CN high-bw share {frac}");
    }

    #[test]
    fn academic_mix_never_nats_lans() {
        let mut rng = DetRng::stream(6, "mix2");
        for _ in 0..1000 {
            let l = AccessMix::Academic.draw(&mut rng);
            if l.class == AccessClass::Lan {
                assert!(!l.nat);
            }
        }
    }

    #[test]
    fn exhausted_slot_redirects_to_others() {
        // A /30 slot (1-2 usable scattered hosts) with high weight: the
        // generator must still deliver the full count from the other slot.
        let tiny = vec![
            PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(9, 9, 9, 8), 30),
                weight: 0.9,
                mix: AccessMix::Other,
            },
            PopulationSlot {
                prefix: Prefix::of(Ip::from_octets(58, 0, 0, 0), 16),
                weight: 0.1,
                mix: AccessMix::CnCarrier,
            },
        ];
        let peers = generate(&tiny, &PopulationConfig { size: 100, seed: 4 });
        assert_eq!(peers.len(), 100);
    }
}

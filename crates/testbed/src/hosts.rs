//! Table I: the probe hosts.
//!
//! "The setup involved a total of 44 peers, including 37 PCs from 7
//! different industrial/academic sites, and 7 home PCs. Probes are
//! distributed over four countries, and connected to 6 different
//! Autonomous Systems, while home PCs are connected to 7 other ASs and
//! ISPs." We encode the table as printed; each home PC gets its own
//! residential-ISP AS (the paper's "ASx"), shared with that country's
//! external DSL population.

use netaware_net::{AccessClass, CountryCode};
use serde::Serialize;

/// One of the seven probe sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Site {
    /// Site short name as in Table I.
    pub name: &'static str,
    /// Country.
    pub cc: CountryCode,
    /// Institution AS label ("AS1".."AS6").
    pub as_label: &'static str,
}

/// The seven sites of the experiments.
pub const SITES: [Site; 7] = [
    Site { name: "BME", cc: CountryCode::HU, as_label: "AS1" },
    Site { name: "PoliTO", cc: CountryCode::IT, as_label: "AS2" },
    Site { name: "MT", cc: CountryCode::HU, as_label: "AS3" },
    Site { name: "ENST", cc: CountryCode::FR, as_label: "AS4" },
    Site { name: "FFT", cc: CountryCode::FR, as_label: "AS5" },
    Site { name: "UniTN", cc: CountryCode::IT, as_label: "AS2" },
    Site { name: "WUT", cc: CountryCode::PL, as_label: "AS6" },
];

/// One probe host row.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HostDef {
    /// Site the host belongs to (home PCs are associated with the site
    /// of the partner operating them, but sit in their own ISP's AS).
    pub site: &'static str,
    /// Host number within the site (Table I numbering).
    pub host: u8,
    /// Access class.
    pub access: AccessClass,
    /// Behind NAT.
    pub nat: bool,
    /// Behind a firewall.
    pub fw: bool,
    /// Home PC (connected through a residential ISP, the "ASx" rows).
    pub home: bool,
}

impl HostDef {
    const fn lan(site: &'static str, host: u8) -> Self {
        HostDef {
            site,
            host,
            access: AccessClass::Lan,
            nat: false,
            fw: false,
            home: false,
        }
    }

    const fn lan_flags(site: &'static str, host: u8, nat: bool, fw: bool) -> Self {
        HostDef {
            site,
            host,
            access: AccessClass::Lan,
            nat,
            fw,
            home: false,
        }
    }

    const fn home(site: &'static str, host: u8, access: AccessClass, nat: bool, fw: bool) -> Self {
        HostDef {
            site,
            host,
            access,
            nat,
            fw,
            home: true,
        }
    }

    /// Whether the host counts as high-bandwidth (Table I "high-bw").
    pub fn is_high_bw(&self) -> bool {
        self.access.is_high_bw()
    }

    /// The site definition for this host.
    pub fn site_def(&self) -> Site {
        SITES
            .iter()
            .copied()
            .find(|s| s.name == self.site)
            .expect("host references a known site") // netaware-lint: allow(PA01) table1_hosts only uses SITES names
    }
}

/// Every probe host of Table I, in table order.
pub fn table1_hosts() -> Vec<HostDef> {
    let mut v = Vec::new();
    // BME, HU, AS1: hosts 1-4 high-bw; host 5 home DSL 6/0.512.
    for h in 1..=4 {
        v.push(HostDef::lan("BME", h));
    }
    v.push(HostDef::home("BME", 5, AccessClass::Dsl(6_000, 512), false, false));

    // PoliTO, IT, AS2: 1-9 high-bw; 10 DSL 4/0.384; 11-12 DSL 8/0.384 NAT.
    for h in 1..=9 {
        v.push(HostDef::lan("PoliTO", h));
    }
    v.push(HostDef::home("PoliTO", 10, AccessClass::Dsl(4_000, 384), false, false));
    v.push(HostDef::home("PoliTO", 11, AccessClass::Dsl(8_000, 384), true, false));
    v.push(HostDef::home("PoliTO", 12, AccessClass::Dsl(8_000, 384), true, false));

    // MT, HU, AS3: 1-4 high-bw.
    for h in 1..=4 {
        v.push(HostDef::lan("MT", h));
    }

    // FFT, FR, AS5: 1-3 high-bw.
    for h in 1..=3 {
        v.push(HostDef::lan("FFT", h));
    }

    // ENST, FR, AS4: 1-4 high-bw behind firewall; 5 DSL 22/1.8 NAT.
    for h in 1..=4 {
        v.push(HostDef::lan_flags("ENST", h, false, true));
    }
    v.push(HostDef::home("ENST", 5, AccessClass::Dsl(22_000, 1_800), true, false));

    // UniTN, IT, AS2: 1-5 high-bw; 6-7 high-bw NAT; 8 DSL 2.5/0.384 NAT+FW.
    for h in 1..=5 {
        v.push(HostDef::lan("UniTN", h));
    }
    v.push(HostDef::lan_flags("UniTN", 6, true, false));
    v.push(HostDef::lan_flags("UniTN", 7, true, false));
    v.push(HostDef::home("UniTN", 8, AccessClass::Dsl(2_500, 384), true, true));

    // WUT, PL, AS6: 1-8 high-bw; 9 CATV 6/0.512.
    for h in 1..=8 {
        v.push(HostDef::lan("WUT", h));
    }
    v.push(HostDef::home("WUT", 9, AccessClass::Catv(6_000, 512), false, false));

    v
}

/// Renders Table I in the paper's layout.
pub fn render_table1() -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE I — probe hosts: site, country, AS, access, NAT, firewall"
    );
    let _ = writeln!(
        s,
        "{:<6} {:<8} {:<3} {:<4} {:<14} {:<4} {:<3}",
        "Host", "Site", "CC", "AS", "Access", "Nat", "FW"
    );
    for h in table1_hosts() {
        let site = h.site_def();
        let _ = writeln!(
            s,
            "{:<6} {:<8} {:<3} {:<4} {:<14} {:<4} {:<3}",
            h.host,
            h.site,
            site.cc.label(),
            if h.home { "ASx" } else { site.as_label },
            h.access.to_string(),
            if h.nat { "Y" } else { "-" },
            if h.fw { "Y" } else { "-" },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        let hosts = table1_hosts();
        // Table I as printed: 39 institution + 7 home rows.
        let homes = hosts.iter().filter(|h| h.home).count();
        assert_eq!(homes, 7, "seven home PCs");
        let institutional = hosts.iter().filter(|h| !h.home).count();
        assert_eq!(institutional, 39);
        // Seven sites, four countries, six institution ASes.
        let sites: std::collections::HashSet<_> = hosts.iter().map(|h| h.site).collect();
        assert_eq!(sites.len(), 7);
        let ccs: std::collections::HashSet<_> =
            hosts.iter().map(|h| h.site_def().cc).collect();
        assert_eq!(ccs.len(), 4);
        let ases: std::collections::HashSet<_> = hosts
            .iter()
            .filter(|h| !h.home)
            .map(|h| h.site_def().as_label)
            .collect();
        assert_eq!(ases.len(), 6);
    }

    #[test]
    fn high_bw_classification() {
        let hosts = table1_hosts();
        for h in &hosts {
            if h.home {
                assert!(!h.is_high_bw(), "home host {}:{} must be low-bw", h.site, h.host);
            } else {
                assert!(h.is_high_bw());
            }
        }
    }

    #[test]
    fn middlebox_rows_match_table() {
        let hosts = table1_hosts();
        let enst_lan: Vec<_> = hosts
            .iter()
            .filter(|h| h.site == "ENST" && !h.home)
            .collect();
        assert!(enst_lan.iter().all(|h| h.fw && !h.nat));
        let unitn8 = hosts
            .iter()
            .find(|h| h.site == "UniTN" && h.host == 8)
            .unwrap();
        assert!(unitn8.nat && unitn8.fw);
        let polito11 = hosts
            .iter()
            .find(|h| h.site == "PoliTO" && h.host == 11)
            .unwrap();
        assert!(polito11.nat && !polito11.fw);
    }

    #[test]
    fn unitn_and_polito_share_as2() {
        let a = SITES.iter().find(|s| s.name == "PoliTO").unwrap();
        let b = SITES.iter().find(|s| s.name == "UniTN").unwrap();
        assert_eq!(a.as_label, b.as_label);
        assert_eq!(a.cc, b.cc);
    }

    #[test]
    fn render_contains_all_sites() {
        let out = render_table1();
        for s in SITES {
            assert!(out.contains(s.name), "missing {}", s.name);
        }
        assert!(out.contains("DSL 22/1.8"));
        assert!(out.contains("CATV 6/0.512"));
    }
}

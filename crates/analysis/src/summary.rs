//! Table II: stream rates, peer counts, contributor counts.
//!
//! "Mean and maximum values, as seen by NAPA-WINE peers, of i) the
//! stream rates (in upload and download directions), ii) the number of
//! peers and iii) the number of contributing peers." Rates are windowed
//! per probe; the mean column averages per-probe means, the max column
//! takes the largest windowed rate any probe saw.

use crate::contributors::{rx_contributor_count, tx_contributor_count};
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::pass::{run_pass, ProbeRates, RatePass};
use netaware_trace::TraceSet;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A mean/max column pair.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MeanMaxVal {
    /// Mean over probes.
    pub mean: f64,
    /// Maximum over probes (and, for rates, over windows).
    pub max: f64,
}

/// One application's Table II row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppSummary {
    /// Application name.
    pub app: String,
    /// Download stream rate, kb/s.
    pub rx_kbps: MeanMaxVal,
    /// Upload stream rate, kb/s.
    pub tx_kbps: MeanMaxVal,
    /// Distinct peers seen per probe.
    pub peers: MeanMaxVal,
    /// Download contributors per probe.
    pub contrib_rx: MeanMaxVal,
    /// Upload contributors per probe.
    pub contrib_tx: MeanMaxVal,
}

/// Computes Table II for one experiment from traces held in memory. The
/// per-record half (windowed rates) runs as a [`RatePass`] per probe in
/// parallel; the reduction is [`summarize_with_rates`].
pub fn summarize(set: &TraceSet, pfs: &[ProbeFlows], cfg: &AnalysisConfig) -> AppSummary {
    // Windowed rates per probe (parallel over probes, reduced in slice
    // order below).
    let rates: Vec<ProbeRates> = set
        .traces
        .par_iter()
        .map(|t| run_pass(t.records_unsorted(), RatePass::new(t.probe, set.duration_us, cfg)))
        .collect();
    summarize_with_rates(&set.app, &rates, pfs, cfg)
}

/// The reduction half of Table II: folds already-computed per-probe
/// [`ProbeRates`] and [`ProbeFlows`] into the mean/max columns.
/// `rates` and `pfs` must be in the same (trace) order so streaming and
/// in-memory drivers produce bit-identical float accumulation.
pub fn summarize_with_rates(
    app: &str,
    rates: &[ProbeRates],
    pfs: &[ProbeFlows],
    cfg: &AnalysisConfig,
) -> AppSummary {
    let mut rx_kbps = MeanMaxVal::default();
    let mut tx_kbps = MeanMaxVal::default();
    let n = rates.len().max(1) as f64;
    for r in rates {
        rx_kbps.mean += r.rx_mean_kbps / n;
        rx_kbps.max = rx_kbps.max.max(r.rx_max_kbps);
        tx_kbps.mean += r.tx_mean_kbps / n;
        tx_kbps.max = tx_kbps.max.max(r.tx_max_kbps);
    }

    let mut peers = MeanMaxVal::default();
    let mut contrib_rx = MeanMaxVal::default();
    let mut contrib_tx = MeanMaxVal::default();
    let np = pfs.len().max(1) as f64;
    for pf in pfs {
        let seen = pf.peers_seen() as f64;
        let crx = rx_contributor_count(pf, cfg) as f64;
        let ctx = tx_contributor_count(pf, cfg) as f64;
        peers.mean += seen / np;
        peers.max = peers.max.max(seen);
        contrib_rx.mean += crx / np;
        contrib_rx.max = contrib_rx.max.max(crx);
        contrib_tx.mean += ctx / np;
        contrib_tx.max = contrib_tx.max.max(ctx);
    }

    AppSummary {
        app: app.to_string(),
        rx_kbps,
        tx_kbps,
        peers,
        contrib_rx,
        contrib_tx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::aggregate;
    use netaware_net::Ip;
    use netaware_trace::{PacketRecord, PayloadKind, ProbeTrace};

    fn rec(ts: u64, src: Ip, dst: Ip, size: u16) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl: 110,
            kind: PayloadKind::Video,
        }
    }

    #[test]
    fn constant_rate_stream_measures_correctly() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let e = Ip::from_octets(58, 0, 0, 1);
        let mut set = TraceSet::new("X", 60_000_000);
        let mut t = ProbeTrace::new(p);
        // 48 kB/s down for 60 s = 384 kb/s; no upload.
        for s in 0..60u64 {
            for k in 0..48u64 {
                t.push(rec(s * 1_000_000 + k * 20_000, e, p, 1000));
            }
        }
        set.add(t);
        let cfg = AnalysisConfig::default();
        let pfs = aggregate(&set, &cfg);
        let sum = summarize(&set, &pfs, &cfg);
        assert!((sum.rx_kbps.mean - 384.0).abs() < 4.0, "{}", sum.rx_kbps.mean);
        assert!(sum.tx_kbps.mean < 1.0);
        assert_eq!(sum.peers.mean, 1.0);
        assert_eq!(sum.peers.max, 1.0);
        assert_eq!(sum.contrib_rx.max, 1.0);
        assert_eq!(sum.contrib_tx.max, 0.0);
    }

    #[test]
    fn max_exceeds_mean_for_bursty_probes() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 1, 1);
        let e = Ip::from_octets(58, 0, 0, 1);
        let mut set = TraceSet::new("X", 40_000_000);
        let mut t1 = ProbeTrace::new(p1);
        for k in 0..1000u64 {
            t1.push(rec(k * 1_000, p1, e, 1200)); // 1.2 MB burst in w0
        }
        set.add(t1);
        let mut t2 = ProbeTrace::new(p2);
        t2.push(rec(5_000_000, p2, e, 1200));
        set.add(t2);
        let cfg = AnalysisConfig::default();
        let pfs = aggregate(&set, &cfg);
        let sum = summarize(&set, &pfs, &cfg);
        assert!(sum.tx_kbps.max > sum.tx_kbps.mean * 1.5);
    }

    #[test]
    fn empty_experiment_is_all_zero() {
        let set = TraceSet::new("X", 1_000_000);
        let cfg = AnalysisConfig::default();
        let pfs = aggregate(&set, &cfg);
        let sum = summarize(&set, &pfs, &cfg);
        assert_eq!(sum.peers.mean, 0.0);
        assert_eq!(sum.rx_kbps.max, 0.0);
    }
}

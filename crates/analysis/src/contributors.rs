//! Contributor identification (the heuristic of ref. \[14\]).
//!
//! "By contributing peers, we denote peers with whom some video segment
//! has been exchanged, either in upload (TX) or in download (RX)." A
//! remote qualifies in a direction when it moved at least a chunk's
//! worth of video-sized payload in enough packets — conservative against
//! large signalling bursts, exactly as the NAPA-WINE report verified.

use crate::flows::{FlowStats, ProbeFlows};
use crate::heuristics::AnalysisConfig;
use netaware_net::Ip;

/// Whether the remote contributed video *to* the probe (download side,
/// `e ∈ D(p)`).
pub fn is_rx_contributor(f: &FlowStats, cfg: &AnalysisConfig) -> bool {
    f.video_bytes_rx >= cfg.contributor_min_video_bytes
        && f.video_pkts_rx >= cfg.contributor_min_video_pkts
}

/// Whether the probe contributed video to the remote (upload side,
/// `e ∈ U(p)`).
pub fn is_tx_contributor(f: &FlowStats, cfg: &AnalysisConfig) -> bool {
    f.video_bytes_tx >= cfg.contributor_min_video_bytes
        && f.video_pkts_tx >= cfg.contributor_min_video_pkts
}

/// Whether the remote is a contributor in either direction
/// (`e ∈ P(p) = U(p) ∪ D(p)` restricted to actual video exchange).
pub fn is_contributor(f: &FlowStats, cfg: &AnalysisConfig) -> bool {
    is_rx_contributor(f, cfg) || is_tx_contributor(f, cfg)
}

/// The download contributor set `D(p)` of one probe.
pub fn rx_contributors<'a>(
    pf: &'a ProbeFlows,
    cfg: &'a AnalysisConfig,
) -> impl Iterator<Item = &'a FlowStats> {
    pf.flows.values().filter(move |f| is_rx_contributor(f, cfg))
}

/// The upload contributor set `U(p)` of one probe.
pub fn tx_contributors<'a>(
    pf: &'a ProbeFlows,
    cfg: &'a AnalysisConfig,
) -> impl Iterator<Item = &'a FlowStats> {
    pf.flows.values().filter(move |f| is_tx_contributor(f, cfg))
}

/// Count of download contributors.
pub fn rx_contributor_count(pf: &ProbeFlows, cfg: &AnalysisConfig) -> usize {
    rx_contributors(pf, cfg).count()
}

/// Count of upload contributors.
pub fn tx_contributor_count(pf: &ProbeFlows, cfg: &AnalysisConfig) -> usize {
    tx_contributors(pf, cfg).count()
}

/// Jaccard overlap of the upload and download contributor sets,
/// `|U(p) ∩ D(p)| / |U(p) ∪ D(p)|`, aggregated over all probes.
///
/// §III-C observes that "in our experiments, the U(p) and D(p) sets are
/// typically disjoint, which significantly limits the set of peers of
/// which we are able to assess the access capacity" — this function
/// measures that claim on our traces.
pub fn direction_overlap(pfs: &[ProbeFlows], cfg: &AnalysisConfig) -> f64 {
    let mut intersection = 0u64;
    let mut union = 0u64;
    for pf in pfs {
        for f in pf.flows.values() {
            let u = is_tx_contributor(f, cfg);
            let d = is_rx_contributor(f, cfg);
            if u || d {
                union += 1;
            }
            if u && d {
                intersection += 1;
            }
        }
    }
    if union == 0 {
        0.0
    } else {
        intersection as f64 / union as f64
    }
}

/// Scores the heuristic against simulator ground truth: fraction of
/// video bytes (by the trace's ground-truth kind tags) that flows
/// classified as contributors account for. Used only by validation
/// tests.
pub fn heuristic_video_coverage(
    pf: &ProbeFlows,
    cfg: &AnalysisConfig,
    truth_video_bytes_by_remote: &std::collections::BTreeMap<Ip, u64>,
) -> f64 {
    let total: u64 = truth_video_bytes_by_remote.values().sum();
    if total == 0 {
        return 1.0;
    }
    let covered: u64 = pf
        .flows
        .iter()
        .filter(|(_, f)| is_contributor(f, cfg))
        .filter_map(|(remote, _)| truth_video_bytes_by_remote.get(remote))
        .sum();
    covered as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(video_rx: u64, pkts_rx: u64, video_tx: u64, pkts_tx: u64) -> FlowStats {
        FlowStats {
            video_bytes_rx: video_rx,
            video_pkts_rx: pkts_rx,
            video_bytes_tx: video_tx,
            video_pkts_tx: pkts_tx,
            ..Default::default()
        }
    }

    #[test]
    fn chunk_worth_of_video_is_contributor() {
        let cfg = AnalysisConfig::default();
        assert!(is_rx_contributor(&flow(25_000, 20, 0, 0), &cfg));
        assert!(!is_tx_contributor(&flow(25_000, 20, 0, 0), &cfg));
        assert!(is_tx_contributor(&flow(0, 0, 25_000, 20), &cfg));
    }

    #[test]
    fn bytes_without_enough_packets_rejected() {
        let cfg = AnalysisConfig::default();
        // 2 jumbo-ish packets summing over the byte bar must not qualify.
        assert!(!is_rx_contributor(&flow(25_000, 2, 0, 0), &cfg));
    }

    #[test]
    fn packets_without_enough_bytes_rejected() {
        let cfg = AnalysisConfig::default();
        assert!(!is_rx_contributor(&flow(4_000, 10, 0, 0), &cfg));
    }

    #[test]
    fn either_direction_makes_a_contributor() {
        let cfg = AnalysisConfig::default();
        assert!(is_contributor(&flow(25_000, 20, 0, 0), &cfg));
        assert!(is_contributor(&flow(0, 0, 25_000, 20), &cfg));
        assert!(!is_contributor(&flow(0, 0, 0, 0), &cfg));
    }

    #[test]
    fn counts_over_probe_flows() {
        let cfg = AnalysisConfig::default();
        let mut pf = ProbeFlows::default();
        let a = Ip::from_octets(1, 1, 1, 1);
        let b = Ip::from_octets(2, 2, 2, 2);
        let c = Ip::from_octets(3, 3, 3, 3);
        pf.flows.insert(a, flow(30_000, 24, 0, 0));
        pf.flows.insert(b, flow(0, 0, 50_000, 40));
        pf.flows.insert(c, flow(100, 1, 100, 1));
        assert_eq!(rx_contributor_count(&pf, &cfg), 1);
        assert_eq!(tx_contributor_count(&pf, &cfg), 1);
    }

    #[test]
    fn coverage_score() {
        let cfg = AnalysisConfig::default();
        let mut pf = ProbeFlows::default();
        let a = Ip::from_octets(1, 1, 1, 1);
        let b = Ip::from_octets(2, 2, 2, 2);
        pf.flows.insert(a, flow(30_000, 24, 0, 0));
        pf.flows.insert(b, flow(100, 1, 0, 0));
        let mut truth = std::collections::BTreeMap::new();
        truth.insert(a, 30_000u64);
        truth.insert(b, 10_000u64); // heuristic misses this one
        let cov = heuristic_video_coverage(&pf, &cfg, &truth);
        assert!((cov - 0.75).abs() < 1e-9);
    }

    #[test]
    fn direction_overlap_jaccard() {
        let cfg = AnalysisConfig::default();
        let mut pf = ProbeFlows::default();
        pf.flows.insert(Ip::from_octets(1, 0, 0, 1), flow(30_000, 24, 0, 0)); // D only
        pf.flows.insert(Ip::from_octets(1, 0, 0, 2), flow(0, 0, 30_000, 24)); // U only
        pf.flows.insert(Ip::from_octets(1, 0, 0, 3), flow(30_000, 24, 30_000, 24)); // both
        pf.flows.insert(Ip::from_octets(1, 0, 0, 4), flow(0, 0, 0, 0)); // neither
        assert!((direction_overlap(&[pf], &cfg) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(direction_overlap(&[], &cfg), 0.0);
    }

    #[test]
    fn coverage_of_empty_truth_is_one() {
        let cfg = AnalysisConfig::default();
        let pf = ProbeFlows::default();
        assert_eq!(
            heuristic_video_coverage(&pf, &cfg, &std::collections::BTreeMap::new()),
            1.0
        );
    }
}

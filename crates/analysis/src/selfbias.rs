//! Table III: NAPA-WINE self-induced bias.
//!
//! "It reports the percentage of peers and bytes exchanged among
//! NAPA-WINE peers, considering contributors only, or all peers." High
//! values flag that the probe set biases itself — the reason Table IV
//! carries the primed (probe-excluded) variants.

use crate::contributors::is_contributor;
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use netaware_net::Ip;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One application's Table III row.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SelfBias {
    /// % of contributor (probe, remote) pairs whose remote is a probe.
    pub contrib_peer_pct: f64,
    /// % of contributor bytes exchanged with probes.
    pub contrib_bytes_pct: f64,
    /// Same over all observed peers.
    pub all_peer_pct: f64,
    /// Same over all observed bytes.
    pub all_bytes_pct: f64,
}

/// Computes Table III for one experiment.
pub fn self_bias(pfs: &[ProbeFlows], cfg: &AnalysisConfig, probe_set: &BTreeSet<Ip>) -> SelfBias {
    let mut c_peers = (0u64, 0u64); // (to probes, total)
    let mut c_bytes = (0u64, 0u64);
    let mut a_peers = (0u64, 0u64);
    let mut a_bytes = (0u64, 0u64);

    for pf in pfs {
        for f in pf.flows.values() {
            let to_probe = probe_set.contains(&f.remote);
            let bytes = f.bytes_rx + f.bytes_tx;
            a_peers.1 += 1;
            a_bytes.1 += bytes;
            if to_probe {
                a_peers.0 += 1;
                a_bytes.0 += bytes;
            }
            if is_contributor(f, cfg) {
                c_peers.1 += 1;
                c_bytes.1 += bytes;
                if to_probe {
                    c_peers.0 += 1;
                    c_bytes.0 += bytes;
                }
            }
        }
    }
    let pct = |(num, den): (u64, u64)| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    SelfBias {
        contrib_peer_pct: pct(c_peers),
        contrib_bytes_pct: pct(c_bytes),
        all_peer_pct: pct(a_peers),
        all_bytes_pct: pct(a_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;

    fn flow(probe: Ip, remote: Ip, bytes: u64, contributor: bool) -> FlowStats {
        FlowStats {
            probe,
            remote,
            bytes_rx: bytes,
            video_bytes_rx: if contributor { 30_000 } else { 0 },
            video_pkts_rx: if contributor { 24 } else { 0 },
            ..Default::default()
        }
    }

    #[test]
    fn splits_probe_and_external_shares() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 0, 2);
        let e = Ip::from_octets(58, 0, 0, 1);
        let mut w = BTreeSet::new();
        w.insert(p1);
        w.insert(p2);

        let mut pf = ProbeFlows {
            probe: p1,
            ..Default::default()
        };
        pf.flows.insert(p2, flow(p1, p2, 60_000, true)); // probe-probe
        pf.flows.insert(e, flow(p1, e, 40_000, true)); // probe-external
        let cfg = AnalysisConfig::default();
        let sb = self_bias(&[pf], &cfg, &w);
        assert!((sb.contrib_peer_pct - 50.0).abs() < 1e-9);
        assert!((sb.contrib_bytes_pct - 60.0).abs() < 1e-9);
        assert!((sb.all_peer_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn contributors_vs_all_differ() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 0, 2);
        let mut w = BTreeSet::new();
        w.insert(p1);
        w.insert(p2);
        let mut pf = ProbeFlows {
            probe: p1,
            ..Default::default()
        };
        pf.flows.insert(p2, flow(p1, p2, 50_000, true));
        // Ten signalling-only externals.
        for i in 0..10u32 {
            let e = Ip(Ip::from_octets(58, 0, 0, 10).0 + i);
            pf.flows.insert(e, flow(p1, e, 500, false));
        }
        let cfg = AnalysisConfig::default();
        let sb = self_bias(&[pf], &cfg, &w);
        assert!((sb.contrib_peer_pct - 100.0).abs() < 1e-9);
        assert!((sb.all_peer_pct - (100.0 / 11.0)).abs() < 1e-6);
        assert!(sb.all_bytes_pct > 85.0);
    }

    #[test]
    fn empty_is_zero() {
        let cfg = AnalysisConfig::default();
        let sb = self_bias(&[], &cfg, &BTreeSet::new());
        assert_eq!(sb.contrib_peer_pct, 0.0);
        assert_eq!(sb.all_bytes_pct, 0.0);
    }
}

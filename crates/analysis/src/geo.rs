//! Figure 1: geographical breakdown of peers, received and transmitted
//! bytes.
//!
//! "Percentages are expressed over the total number of observed peers"
//! (and, for RX/TX, over total bytes); China plus the four probe
//! countries are called out, the rest binned as `*`.

use crate::flows::ProbeFlows;
use netaware_net::{CountryCode, GeoRegistry, Ip};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-country shares.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GeoRow {
    /// Country label (`*` = rest of world).
    pub label: String,
    /// % of distinct observed peers.
    pub peers_pct: f64,
    /// % of received bytes.
    pub rx_pct: f64,
    /// % of transmitted bytes.
    pub tx_pct: f64,
}

/// Figure 1 data for one application.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GeoBreakdown {
    /// Rows in display order (CN, HU, IT, FR, PL, *).
    pub rows: Vec<GeoRow>,
    /// Total distinct peers observed across all probes (the 4 057 /
    /// 550 / 181 729 of the paper).
    pub total_peers: usize,
}

/// Countries the figure names explicitly; everything else goes to `*`.
const NAMED: [CountryCode; 5] = [
    CountryCode::CN,
    CountryCode::HU,
    CountryCode::IT,
    CountryCode::FR,
    CountryCode::PL,
];

fn bucket(reg: &GeoRegistry, ip: Ip) -> &'static str {
    match reg.country_of(ip) {
        Some(cc) if NAMED.contains(&cc) => cc.label(),
        _ => "*",
    }
}

/// Computes Figure 1 for one experiment.
pub fn geo_breakdown(pfs: &[ProbeFlows], reg: &GeoRegistry) -> GeoBreakdown {
    let mut peers_by: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut rx_by: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut tx_by: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut distinct: BTreeSet<Ip> = BTreeSet::new();
    let mut rx_total = 0u64;
    let mut tx_total = 0u64;

    for pf in pfs {
        for f in pf.flows.values() {
            let b = bucket(reg, f.remote);
            if distinct.insert(f.remote) {
                *peers_by.entry(b).or_default() += 1;
            }
            *rx_by.entry(b).or_default() += f.bytes_rx;
            *tx_by.entry(b).or_default() += f.bytes_tx;
            rx_total += f.bytes_rx;
            tx_total += f.bytes_tx;
        }
    }

    let total_peers = distinct.len();
    let labels: Vec<&'static str> = NAMED.iter().map(|c| c.label()).chain(["*"]).collect();
    let pct = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    let rows = labels
        .into_iter()
        .map(|l| GeoRow {
            label: l.to_string(),
            peers_pct: pct(peers_by.get(l).copied().unwrap_or(0) as u64, total_peers as u64),
            rx_pct: pct(rx_by.get(l).copied().unwrap_or(0), rx_total),
            tx_pct: pct(tx_by.get(l).copied().unwrap_or(0), tx_total),
        })
        .collect();
    GeoBreakdown { rows, total_peers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::{AsId, AsInfo, AsKind, GeoRegistryBuilder, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.register_as(AsInfo::new(200, CountryCode::US, AsKind::Carrier, "US"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(12, 0, 0, 0), 8), AsId(200))
            .unwrap();
        b.build()
    }

    fn flow(probe: Ip, remote: Ip, rx: u64, tx: u64) -> FlowStats {
        FlowStats {
            probe,
            remote,
            bytes_rx: rx,
            bytes_tx: tx,
            ..Default::default()
        }
    }

    #[test]
    fn shares_sum_to_100() {
        let p = Ip::from_octets(130, 192, 1, 1);
        let mut pf = ProbeFlows {
            probe: p,
            ..Default::default()
        };
        pf.flows
            .insert(Ip::from_octets(58, 1, 1, 1), flow(p, Ip::from_octets(58, 1, 1, 1), 70, 10));
        pf.flows
            .insert(Ip::from_octets(130, 192, 5, 5), flow(p, Ip::from_octets(130, 192, 5, 5), 20, 30));
        pf.flows
            .insert(Ip::from_octets(12, 1, 1, 1), flow(p, Ip::from_octets(12, 1, 1, 1), 10, 60));
        let g = geo_breakdown(&[pf], &reg());
        let peers: f64 = g.rows.iter().map(|r| r.peers_pct).sum();
        let rx: f64 = g.rows.iter().map(|r| r.rx_pct).sum();
        let tx: f64 = g.rows.iter().map(|r| r.tx_pct).sum();
        assert!((peers - 100.0).abs() < 1e-9);
        assert!((rx - 100.0).abs() < 1e-9);
        assert!((tx - 100.0).abs() < 1e-9);
        assert_eq!(g.total_peers, 3);
    }

    #[test]
    fn us_peers_fold_into_star() {
        let p = Ip::from_octets(130, 192, 1, 1);
        let us = Ip::from_octets(12, 1, 1, 1);
        let mut pf = ProbeFlows {
            probe: p,
            ..Default::default()
        };
        pf.flows.insert(us, flow(p, us, 100, 0));
        let g = geo_breakdown(&[pf], &reg());
        let star = g.rows.iter().find(|r| r.label == "*").unwrap();
        assert!((star.peers_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_peers_counted_once_across_probes() {
        let p1 = Ip::from_octets(130, 192, 1, 1);
        let p2 = Ip::from_octets(130, 192, 2, 1);
        let shared = Ip::from_octets(58, 1, 1, 1);
        let mk = |probe: Ip| {
            let mut pf = ProbeFlows {
                probe,
                ..Default::default()
            };
            pf.flows.insert(shared, flow(probe, shared, 10, 10));
            pf
        };
        let g = geo_breakdown(&[mk(p1), mk(p2)], &reg());
        assert_eq!(g.total_peers, 1);
    }

    #[test]
    fn rows_in_paper_order() {
        let g = geo_breakdown(&[], &reg());
        let labels: Vec<&str> = g.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["CN", "HU", "IT", "FR", "PL", "*"]);
    }
}

//! Packet-pair bandwidth inference.
//!
//! "Being a chunk built of several packets, the source transmits them in
//! a burst […] they can be then considered as several packet-pairs, that
//! can be used to infer the bottleneck capacity. By measuring the
//! minimum IPG, it is possible to easily classify a peer as a high- or
//! low-bandwidth peer, using 1 ms threshold, which corresponds to the
//! transmission time of a 1250 bytes packet over a 10 Mbps link."

use crate::flows::FlowStats;
use crate::heuristics::AnalysisConfig;

/// Classification of the path from a remote to the probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BwClass {
    /// Bottleneck above 10 Mb/s.
    High,
    /// Bottleneck at or below 10 Mb/s.
    Low,
    /// Not classifiable: fewer than two video packets received from this
    /// remote (upload-only flows, signalling-only contacts).
    Unknown,
}

/// Classifies a flow's remote from its minimum received-video IPG.
pub fn bw_class(f: &FlowStats, cfg: &AnalysisConfig) -> BwClass {
    match f.min_ipg_us {
        Some(g) if g < cfg.ipg_high_bw_us => BwClass::High,
        Some(_) => BwClass::Low,
        None => BwClass::Unknown,
    }
}

/// The bottleneck capacity (b/s) a given minimum IPG implies for
/// 1250-byte packets — diagnostic helper for the sensitivity ablation.
pub fn implied_capacity_bps(min_ipg_us: u64) -> u64 {
    if min_ipg_us == 0 {
        return u64::MAX;
    }
    1250 * 8 * 1_000_000 / min_ipg_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_with_ipg(ipg: Option<u64>) -> FlowStats {
        FlowStats {
            min_ipg_us: ipg,
            ..Default::default()
        }
    }

    #[test]
    fn lan_gap_is_high() {
        let cfg = AnalysisConfig::default();
        assert_eq!(bw_class(&flow_with_ipg(Some(100)), &cfg), BwClass::High);
    }

    #[test]
    fn threshold_is_exclusive() {
        let cfg = AnalysisConfig::default();
        assert_eq!(bw_class(&flow_with_ipg(Some(999)), &cfg), BwClass::High);
        assert_eq!(bw_class(&flow_with_ipg(Some(1_000)), &cfg), BwClass::Low);
    }

    #[test]
    fn dsl_gap_is_low() {
        let cfg = AnalysisConfig::default();
        assert_eq!(bw_class(&flow_with_ipg(Some(19_532)), &cfg), BwClass::Low);
    }

    #[test]
    fn no_train_is_unknown() {
        let cfg = AnalysisConfig::default();
        assert_eq!(bw_class(&flow_with_ipg(None), &cfg), BwClass::Unknown);
    }

    #[test]
    fn implied_capacity_constants() {
        // 1 ms ⇒ exactly 10 Mb/s; 100 µs ⇒ 100 Mb/s.
        assert_eq!(implied_capacity_bps(1_000), 10_000_000);
        assert_eq!(implied_capacity_bps(100), 100_000_000);
        assert_eq!(implied_capacity_bps(0), u64::MAX);
    }
}

//! # netaware-analysis — the paper's passive network-awareness framework
//!
//! This crate is the reproduction's core contribution: the methodology of
//! Ciullo et al. (IPDPS 2009) for inferring, from packet traces alone,
//! which network properties a P2P-TV application's peer selection and
//! byte scheduling respond to.
//!
//! Pipeline (all strictly passive — no simulator ground truth crosses
//! this boundary):
//!
//! 1. [`pass`] — the streaming engine: [`pass::AnalysisPass`]
//!    accumulators observe each record of a probe exactly once (flow
//!    aggregation, windowed rates, timeseries buckets), composing in
//!    tuples so one sweep feeds every registered pass;
//! 2. [`flows`] — aggregate each probe's trace into per-remote flow
//!    statistics: bytes/packets per direction, video bytes by the size
//!    heuristic, minimum inter-packet gap of received video trains, and
//!    received TTLs;
//! 2. [`contributors`] — the heuristic of the NAPA-WINE tech report
//!    (ref. \[14\]): a remote is a contributor in a direction when it
//!    moved at least a chunk's worth of video-sized payload;
//! 3. [`ipg`] — packet-pair capacity inference: a remote has a
//!    high-bandwidth (>10 Mb/s) path when some 1250-byte packet pair
//!    arrived less than 1 ms apart;
//! 4. [`hop`] — `128 − TTL` hop estimation and the median split;
//! 5. [`partition`] — the preferential-partition abstraction
//!    `X = X_P ∪ X̄_P` with the five instances the paper studies (BW,
//!    AS, CC, NET, HOP);
//! 6. [`preference`] — the `P` (peer-wise) and `B` (byte-wise)
//!    preference percentages of Eq. (7)–(8), in the four variants of
//!    Table IV ({download, upload} × {all contributors, excluding the
//!    probe set `W`});
//! 7. [`summary`], [`selfbias`], [`geo`], [`asmatrix`] — the remaining
//!    tables and figures (Table II, Table III, Fig. 1, Fig. 2);
//! 8. [`report`] — one-call orchestration producing a serialisable
//!    [`report::ExperimentAnalysis`] and the
//!    paper-style text tables.
//!
//! Per-probe work is embarrassingly parallel and runs under rayon.

#![warn(missing_docs)]

pub mod asmatrix;
pub mod compare;
pub mod confidence;
pub mod contributors;
pub mod csv;
pub mod flows;
pub mod geo;
pub mod heuristics;
pub mod hop;
pub mod hopdist;
pub mod ipg;
pub mod markdown;
pub mod netfriend;
pub mod partition;
pub mod pass;
pub mod persite;
pub mod preference;
pub mod report;
pub mod scenario;
pub mod scatter;
pub mod selfbias;
pub mod summary;
pub mod tables;
pub mod timeseries;
pub mod validation;

pub use heuristics::AnalysisConfig;
pub use pass::{run_pass, AnalysisPass};
pub use report::{
    analyze, analyze_corpus, analyze_corpus_with_obs, analyze_with_obs, ExperimentAnalysis,
};

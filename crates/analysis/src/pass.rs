//! The streaming analysis engine: single-pass record accumulators.
//!
//! The paper's framework digested >140M packets per campaign; holding a
//! campaign in memory and letting every analysis module re-walk the
//! record slices independently cannot scale there. An [`AnalysisPass`]
//! is the alternative contract: an accumulator that observes each
//! [`PacketRecord`] of one probe **once**, in timestamp order, and
//! yields its result at the end. Passes compose as tuples, so a driver
//! feeds one record stream through every registered pass in a single
//! sweep — from an in-memory trace or straight off disk
//! ([`crate::report::analyze_corpus`]) with peak memory bounded by the
//! accumulator state, not the capture size.
//!
//! Probes are independent, so drivers parallelise across probes with
//! rayon and reduce the collected per-probe outputs sequentially in
//! slice order (ND03-clean: no unordered parallel float reductions).

use crate::flows::{FlowStats, ProbeFlows};
use crate::heuristics::AnalysisConfig;
use crate::timeseries::RateSeries;
use netaware_net::Ip;
use netaware_sim::{RateMeter, SimTime};
use netaware_trace::PacketRecord;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// An incremental analysis over one probe's record stream.
///
/// Records arrive in timestamp order, exactly once each. Implementations
/// hold only their accumulator state, never the records themselves.
pub trait AnalysisPass {
    /// What the pass produces once the stream ends.
    type Output;

    /// Observes the next record of the stream.
    fn on_record(&mut self, rec: &PacketRecord);

    /// Consumes the accumulator into its result.
    fn finish(self) -> Self::Output;
}

/// Two passes over one stream, still one sweep.
impl<A: AnalysisPass, B: AnalysisPass> AnalysisPass for (A, B) {
    type Output = (A::Output, B::Output);

    fn on_record(&mut self, rec: &PacketRecord) {
        self.0.on_record(rec);
        self.1.on_record(rec);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish())
    }
}

/// Three passes over one stream, still one sweep.
impl<A: AnalysisPass, B: AnalysisPass, C: AnalysisPass> AnalysisPass for (A, B, C) {
    type Output = (A::Output, B::Output, C::Output);

    fn on_record(&mut self, rec: &PacketRecord) {
        self.0.on_record(rec);
        self.1.on_record(rec);
        self.2.on_record(rec);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish(), self.2.finish())
    }
}

/// Streams `records` once through `pass` and returns its output.
pub fn run_pass<'a, P: AnalysisPass>(
    records: impl IntoIterator<Item = &'a PacketRecord>,
    mut pass: P,
) -> P::Output {
    for rec in records {
        pass.on_record(rec);
    }
    pass.finish()
}

/// Incremental per-remote flow aggregation — the streaming form of
/// [`crate::flows::aggregate_probe`], producing the same [`ProbeFlows`]
/// (direction/size splits, min video inter-packet gap, last received
/// TTL, first/last timestamps).
pub struct FlowPass {
    probe: Ip,
    video_size_threshold: u16,
    flows: BTreeMap<Ip, FlowStats>,
    last_video_rx: BTreeMap<Ip, u64>,
}

impl FlowPass {
    /// An empty aggregation for `probe`.
    pub fn new(probe: Ip, cfg: &AnalysisConfig) -> Self {
        FlowPass {
            probe,
            video_size_threshold: cfg.video_size_threshold,
            flows: BTreeMap::new(),
            last_video_rx: BTreeMap::new(),
        }
    }
}

impl AnalysisPass for FlowPass {
    type Output = ProbeFlows;

    fn on_record(&mut self, rec: &PacketRecord) {
        let probe = self.probe;
        let Some(remote) = rec.remote_of(probe) else {
            return; // foreign packet; defensive
        };
        let f = self.flows.entry(remote).or_insert_with(|| FlowStats {
            probe,
            remote,
            first_ts_us: rec.ts_us,
            ..Default::default()
        });
        f.last_ts_us = f.last_ts_us.max(rec.ts_us);
        f.first_ts_us = f.first_ts_us.min(rec.ts_us);
        let is_video = rec.size >= self.video_size_threshold;
        if rec.dst == probe {
            f.pkts_rx += 1;
            f.bytes_rx += rec.size as u64;
            f.rx_ttl = Some(rec.ttl);
            if is_video {
                f.video_pkts_rx += 1;
                f.video_bytes_rx += rec.size as u64;
                if let Some(prev) = self.last_video_rx.insert(remote, rec.ts_us) {
                    let gap = rec.ts_us.saturating_sub(prev);
                    f.min_ipg_us = Some(f.min_ipg_us.map_or(gap, |g| g.min(gap)));
                }
            }
        } else {
            f.pkts_tx += 1;
            f.bytes_tx += rec.size as u64;
            if is_video {
                f.video_pkts_tx += 1;
                f.video_bytes_tx += rec.size as u64;
            }
        }
    }

    fn finish(self) -> ProbeFlows {
        ProbeFlows {
            probe: self.probe,
            flows: self.flows,
        }
    }
}

/// One probe's windowed stream rates, as Table II consumes them.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbeRates {
    /// Mean windowed download rate, kb/s.
    pub rx_mean_kbps: f64,
    /// Maximum windowed download rate, kb/s.
    pub rx_max_kbps: f64,
    /// Mean windowed upload rate, kb/s.
    pub tx_mean_kbps: f64,
    /// Maximum windowed upload rate, kb/s.
    pub tx_max_kbps: f64,
}

/// Incremental windowed rate measurement for one probe — the per-record
/// half of [`crate::summary::summarize`]. Timestamps are clamped into
/// the experiment horizon exactly as the legacy path does.
pub struct RatePass {
    probe: Ip,
    duration_us: u64,
    rx: RateMeter,
    tx: RateMeter,
}

impl RatePass {
    /// Rate meters for `probe` over a `duration_us`-long experiment,
    /// windowed at `cfg.rate_window_us`.
    pub fn new(probe: Ip, duration_us: u64, cfg: &AnalysisConfig) -> Self {
        RatePass {
            probe,
            duration_us,
            rx: RateMeter::new(SimTime::from_us(cfg.rate_window_us)),
            tx: RateMeter::new(SimTime::from_us(cfg.rate_window_us)),
        }
    }
}

impl AnalysisPass for RatePass {
    type Output = ProbeRates;

    fn on_record(&mut self, rec: &PacketRecord) {
        let ts = SimTime::from_us(rec.ts_us.min(self.duration_us.saturating_sub(1)));
        if rec.dst == self.probe {
            self.rx.record(ts, rec.size as u64);
        } else {
            self.tx.record(ts, rec.size as u64);
        }
    }

    fn finish(mut self) -> ProbeRates {
        let horizon = SimTime::from_us(self.duration_us);
        self.rx.finish(horizon);
        self.tx.finish(horizon);
        ProbeRates {
            rx_mean_kbps: self.rx.mean_kbps(),
            rx_max_kbps: self.rx.max_kbps(),
            tx_mean_kbps: self.tx.mean_kbps(),
            tx_max_kbps: self.tx.max_kbps(),
        }
    }
}

/// Incremental timeseries bucketing — the streaming form of
/// [`crate::timeseries::probe_series`].
pub struct SeriesPass {
    probe: Ip,
    window_us: u64,
    rx: Vec<u64>,
    tx: Vec<u64>,
    peers: Vec<BTreeSet<Ip>>,
}

impl SeriesPass {
    /// Buckets for `probe` over `duration_us` at `window_us` granularity.
    ///
    /// # Panics
    /// If `window_us` is zero.
    pub fn new(probe: Ip, duration_us: u64, window_us: u64) -> Self {
        assert!(window_us > 0);
        let n = (duration_us.div_ceil(window_us)).max(1) as usize;
        SeriesPass {
            probe,
            window_us,
            rx: vec![0; n],
            tx: vec![0; n],
            peers: vec![BTreeSet::new(); n],
        }
    }
}

impl AnalysisPass for SeriesPass {
    type Output = RateSeries;

    fn on_record(&mut self, rec: &PacketRecord) {
        let w = ((rec.ts_us / self.window_us) as usize).min(self.rx.len() - 1);
        if rec.dst == self.probe {
            self.rx[w] += rec.size as u64;
        } else {
            self.tx[w] += rec.size as u64;
        }
        if let Some(remote) = rec.remote_of(self.probe) {
            self.peers[w].insert(remote);
        }
    }

    fn finish(self) -> RateSeries {
        let window_us = self.window_us;
        let to_kbps = |bytes: u64| bytes as f64 * 8.0 / window_us as f64 * 1_000.0;
        RateSeries {
            window_us,
            rx_kbps: self.rx.into_iter().map(to_kbps).collect(),
            tx_kbps: self.tx.into_iter().map(to_kbps).collect(),
            active_peers: self.peers.into_iter().map(|s| s.len() as u32).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_trace::{PayloadKind, ProbeTrace};

    fn rec(ts: u64, src: Ip, dst: Ip, size: u16, ttl: u8) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl,
            kind: PayloadKind::Video,
        }
    }

    fn sample_trace() -> ProbeTrace {
        let probe = Ip::from_octets(10, 0, 0, 1);
        let a = Ip::from_octets(58, 0, 0, 1);
        let b = Ip::from_octets(60, 0, 0, 1);
        let mut t = ProbeTrace::new(probe);
        for i in 0..200u64 {
            let remote = if i % 3 == 0 { b } else { a };
            if i % 4 == 0 {
                t.push(rec(i * 5_000, probe, remote, 1250, 128));
            } else {
                t.push(rec(i * 5_000, remote, probe, 1250, 110));
            }
        }
        t.finalize();
        t
    }

    #[test]
    fn flow_pass_matches_batch_aggregation() {
        let t = sample_trace();
        let cfg = AnalysisConfig::default();
        let streamed = run_pass(t.records(), FlowPass::new(t.probe, &cfg));
        let batch = crate::flows::aggregate_probe(&t, &cfg);
        assert_eq!(streamed.probe, batch.probe);
        assert_eq!(streamed.flows.len(), batch.flows.len());
        for (remote, f) in &streamed.flows {
            let g = &batch.flows[remote];
            assert_eq!(f.pkts_rx, g.pkts_rx);
            assert_eq!(f.bytes_tx, g.bytes_tx);
            assert_eq!(f.min_ipg_us, g.min_ipg_us);
            assert_eq!(f.rx_ttl, g.rx_ttl);
            assert_eq!((f.first_ts_us, f.last_ts_us), (g.first_ts_us, g.last_ts_us));
        }
    }

    #[test]
    fn series_pass_matches_batch_bucketing() {
        let t = sample_trace();
        let duration = 2_000_000;
        let streamed = run_pass(t.records(), SeriesPass::new(t.probe, duration, 100_000));
        let batch = crate::timeseries::probe_series(&t, duration, 100_000);
        assert_eq!(streamed.rx_kbps, batch.rx_kbps);
        assert_eq!(streamed.tx_kbps, batch.tx_kbps);
        assert_eq!(streamed.active_peers, batch.active_peers);
    }

    #[test]
    fn tuple_composition_is_one_sweep() {
        let t = sample_trace();
        let cfg = AnalysisConfig::default();
        let (flows, rates) = run_pass(
            t.records(),
            (
                FlowPass::new(t.probe, &cfg),
                RatePass::new(t.probe, 2_000_000, &cfg),
            ),
        );
        assert_eq!(flows.peers_seen(), 2);
        assert!(rates.rx_mean_kbps > 0.0);
        assert!(rates.tx_mean_kbps > 0.0);
    }

    #[test]
    fn empty_stream_finishes_clean() {
        let cfg = AnalysisConfig::default();
        let probe = Ip::from_octets(10, 0, 0, 1);
        let flows = run_pass([].iter(), FlowPass::new(probe, &cfg));
        assert_eq!(flows.peers_seen(), 0);
        let rates = run_pass([].iter(), RatePass::new(probe, 1_000_000, &cfg));
        assert_eq!(rates.rx_max_kbps, 0.0);
    }
}

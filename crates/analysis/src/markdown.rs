//! Markdown report generation.
//!
//! Renders a whole experiment suite as a self-contained Markdown
//! document — the shape of this repository's `EXPERIMENTS.md`, generated
//! instead of hand-written, so every reproduction run can ship its own
//! paper-style report (`netaware-cli suite --markdown report.md`).

use crate::report::ExperimentAnalysis;
use std::fmt::Write as _;

fn cell(v: f64, decimals: usize) -> String {
    if v.is_nan() {
        "–".into()
    } else {
        format!("{v:.decimals$}")
    }
}

/// Renders the full suite report.
pub fn render_report(analyses: &[&ExperimentAnalysis], title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {title}\n");
    let total_packets: usize = analyses.iter().map(|a| a.total_packets).sum();
    let _ = writeln!(
        s,
        "{} experiments, {} packets captured in total.\n",
        analyses.len(),
        total_packets
    );

    // Table II.
    let _ = writeln!(s, "## Table II — stream rates, peers, contributors\n");
    let _ = writeln!(
        s,
        "| app | RX kb/s (mean/max) | TX kb/s (mean/max) | peers | contrib RX | contrib TX |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for a in analyses {
        let m = &a.summary;
        let _ = writeln!(
            s,
            "| {} | {:.0} / {:.0} | {:.0} / {:.0} | {:.0} | {:.0} | {:.0} |",
            a.app,
            m.rx_kbps.mean,
            m.rx_kbps.max,
            m.tx_kbps.mean,
            m.tx_kbps.max,
            m.peers.mean,
            m.contrib_rx.mean,
            m.contrib_tx.mean,
        );
    }

    // Table III.
    let _ = writeln!(s, "\n## Table III — probe self-bias\n");
    let _ = writeln!(s, "| app | contrib peer % | contrib bytes % | all peer % | all bytes % |");
    let _ = writeln!(s, "|---|---|---|---|---|");
    for a in analyses {
        let b = &a.selfbias;
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} |",
            a.app,
            cell(b.contrib_peer_pct, 2),
            cell(b.contrib_bytes_pct, 2),
            cell(b.all_peer_pct, 2),
            cell(b.all_bytes_pct, 2),
        );
    }

    // Table IV.
    let _ = writeln!(s, "\n## Table IV — network awareness (B % / P %)\n");
    let _ = writeln!(
        s,
        "| metric | app | B′_D / P′_D | B_D / P_D | B′_U / P′_U | B_U / P_U |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    let metrics: Vec<String> = analyses
        .first()
        .map(|a| a.preferences.iter().map(|m| m.metric.clone()).collect())
        .unwrap_or_default();
    for metric in &metrics {
        for a in analyses {
            let Some(m) = a.preference(metric) else { continue };
            let pair = |v: crate::preference::PrefValue| {
                format!("{} / {}", cell(v.bytes_pct, 1), cell(v.peers_pct, 1))
            };
            let _ = writeln!(
                s,
                "| {} | {} | {} | {} | {} | {} |",
                m.metric,
                a.app,
                pair(m.download_nonw),
                pair(m.download_all),
                pair(m.upload_nonw),
                pair(m.upload_all),
            );
        }
    }

    // Fig. 1.
    let _ = writeln!(s, "\n## Figure 1 — geography (% peers / % RX / % TX)\n");
    let _ = writeln!(s, "| app | total peers | CN | HU | IT | FR | PL | * |");
    let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
    for a in analyses {
        let find = |label: &str| {
            a.geo
                .rows
                .iter()
                .find(|r| r.label == label)
                .map(|r| format!("{:.1}/{:.1}/{:.1}", r.peers_pct, r.rx_pct, r.tx_pct))
                .unwrap_or_default()
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            a.app,
            a.geo.total_peers,
            find("CN"),
            find("HU"),
            find("IT"),
            find("FR"),
            find("PL"),
            find("*"),
        );
    }

    // Fig. 2.
    let _ = writeln!(s, "\n## Figure 2 — intra/inter-AS ratio R\n");
    let _ = writeln!(s, "| app | R | intra-AS mean B | inter-AS mean B |");
    let _ = writeln!(s, "|---|---|---|---|");
    for a in analyses {
        let m = &a.asmatrix;
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} |",
            a.app,
            cell(m.r_ratio, 2),
            cell(m.intra_mean, 0),
            cell(m.inter_mean, 0),
        );
    }

    // Extensions.
    let _ = writeln!(s, "\n## Network friendliness (extension)\n");
    let _ = writeln!(
        s,
        "| app | subnet % | intra-AS % | intra-CC % | transit % | hops/byte |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for a in analyses {
        let f = &a.friendliness;
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} | {} |",
            a.app,
            cell(f.subnet_pct, 1),
            cell(f.intra_as_pct, 1),
            cell(f.intra_cc_pct, 1),
            cell(f.transit_pct, 1),
            cell(f.mean_hops_per_byte, 1),
        );
    }

    let _ = writeln!(s, "\n## Hop distributions\n");
    for a in analyses {
        let d = &a.hop_distribution;
        let _ = writeln!(
            s,
            "- **{}**: median {} hops (Q1 {}, Q3 {}), {:.1}% below the {}-hop threshold, {} measurable flows",
            a.app,
            d.median.map_or("–".into(), |v| v.to_string()),
            d.q1.map_or("–".into(), |v| v.to_string()),
            d.q3.map_or("–".into(), |v| v.to_string()),
            d.below_threshold_pct,
            a.hop_threshold,
            d.measurable,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asmatrix::AsMatrix;
    use crate::geo::{GeoBreakdown, GeoRow};
    use crate::hopdist::HopDistribution;
    use crate::netfriend::Friendliness;
    use crate::preference::{MetricPreference, PrefValue};
    use crate::selfbias::SelfBias;
    use crate::summary::{AppSummary, MeanMaxVal};

    fn sample(app: &str) -> ExperimentAnalysis {
        ExperimentAnalysis {
            app: app.into(),
            summary: AppSummary {
                app: app.into(),
                rx_kbps: MeanMaxVal { mean: 550.0, max: 900.0 },
                tx_kbps: MeanMaxVal { mean: 3000.0, max: 12000.0 },
                peers: MeanMaxVal { mean: 5000.0, max: 8000.0 },
                contrib_rx: MeanMaxVal { mean: 200.0, max: 500.0 },
                contrib_tx: MeanMaxVal { mean: 600.0, max: 900.0 },
            },
            selfbias: SelfBias {
                contrib_peer_pct: 2.4,
                contrib_bytes_pct: 3.3,
                all_peer_pct: 0.4,
                all_bytes_pct: 3.3,
            },
            preferences: vec![MetricPreference {
                metric: "BW".into(),
                download_nonw: PrefValue { peers_pct: 94.6, bytes_pct: 98.5 },
                download_all: PrefValue { peers_pct: 94.5, bytes_pct: 98.6 },
                upload_nonw: PrefValue::nan(),
                upload_all: PrefValue::nan(),
            }],
            geo: GeoBreakdown {
                rows: vec![GeoRow {
                    label: "CN".into(),
                    peers_pct: 87.0,
                    rx_pct: 86.0,
                    tx_pct: 93.0,
                }],
                total_peers: 45197,
            },
            asmatrix: AsMatrix {
                ases: vec![1],
                avg_bytes: vec![vec![10.0]],
                intra_mean: 100.0,
                inter_mean: 80.0,
                r_ratio: 1.25,
            },
            friendliness: Friendliness {
                subnet_pct: 3.0,
                intra_as_pct: 4.0,
                intra_cc_pct: 5.0,
                transit_pct: 96.0,
                mean_hops_per_byte: 16.8,
            },
            hop_distribution: HopDistribution {
                measurable: 1000,
                median: Some(19),
                q1: Some(16),
                q3: Some(21),
                below_threshold_pct: 48.0,
                ..Default::default()
            },
            hop_threshold: 19,
            total_packets: 1_000_000,
            total_bytes: 1_000_000_000,
        }
    }

    #[test]
    fn report_contains_all_sections() {
        let a = sample("PPLive");
        let b = sample("SopCast");
        let md = render_report(&[&a, &b], "Suite report");
        for needle in [
            "# Suite report",
            "## Table II",
            "## Table III",
            "## Table IV",
            "## Figure 1",
            "## Figure 2",
            "## Network friendliness",
            "## Hop distributions",
            "PPLive",
            "SopCast",
            "98.5 / 94.6",
            "| 1.25 |",
            "median 19 hops",
        ] {
            assert!(md.contains(needle), "missing {needle:?}");
        }
        // Unmeasurable upload cells render as en-dashes.
        assert!(md.contains("– / –"));
    }

    #[test]
    fn empty_suite_renders_header_only() {
        let md = render_report(&[], "Empty");
        assert!(md.contains("# Empty"));
        assert!(md.contains("0 experiments"));
    }
}

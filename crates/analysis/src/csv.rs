//! CSV export of the reproduced figures and tables.
//!
//! The text renderers in [`tables`](crate::tables) target terminals;
//! these writers emit the same data as tidy CSV so the figures can be
//! re-plotted with any tool (gnuplot/matplotlib/R) next to the paper's
//! originals. All writers produce RFC-4180-style output with a header
//! row and no trailing newline-quoting surprises (fields here are
//! numeric or simple tokens; nothing needs quoting).

use crate::report::ExperimentAnalysis;
use std::fmt::Write as _;

/// Table IV rows: one line per (app, metric) with all eight cells.
pub fn table4_csv(analyses: &[&ExperimentAnalysis]) -> String {
    let mut s = String::from(
        "app,metric,b_d_nonw,p_d_nonw,b_d_all,p_d_all,b_u_nonw,p_u_nonw,b_u_all,p_u_all\n",
    );
    let cell = |v: f64| {
        if v.is_nan() {
            String::new()
        } else {
            format!("{v:.3}")
        }
    };
    for a in analyses {
        for m in &a.preferences {
            let _ = writeln!(
                s,
                "{},{},{},{},{},{},{},{},{},{}",
                a.app,
                m.metric,
                cell(m.download_nonw.bytes_pct),
                cell(m.download_nonw.peers_pct),
                cell(m.download_all.bytes_pct),
                cell(m.download_all.peers_pct),
                cell(m.upload_nonw.bytes_pct),
                cell(m.upload_nonw.peers_pct),
                cell(m.upload_all.bytes_pct),
                cell(m.upload_all.peers_pct),
            );
        }
    }
    s
}

/// Fig. 1 rows: one line per (app, country).
pub fn fig1_csv(analyses: &[&ExperimentAnalysis]) -> String {
    let mut s = String::from("app,country,peers_pct,rx_pct,tx_pct\n");
    for a in analyses {
        for r in &a.geo.rows {
            let _ = writeln!(
                s,
                "{},{},{:.3},{:.3},{:.3}",
                a.app, r.label, r.peers_pct, r.rx_pct, r.tx_pct
            );
        }
    }
    s
}

/// Fig. 2 cells: one line per (app, from_as, to_as).
pub fn fig2_csv(analyses: &[&ExperimentAnalysis]) -> String {
    let mut s = String::from("app,from_as,to_as,avg_bytes\n");
    for a in analyses {
        let m = &a.asmatrix;
        for (i, &from) in m.ases.iter().enumerate() {
            for (j, &to) in m.ases.iter().enumerate() {
                let _ = writeln!(s, "{},AS{},AS{},{:.1}", a.app, from, to, m.avg_bytes[i][j]);
            }
        }
    }
    s
}

/// Hop-distribution rows: one line per (app, hops).
pub fn hopdist_csv(analyses: &[&ExperimentAnalysis]) -> String {
    let mut s = String::from("app,hops,flows\n");
    for a in analyses {
        for (h, &c) in a.hop_distribution.counts.iter().enumerate() {
            if c > 0 {
                let _ = writeln!(s, "{},{},{}", a.app, h, c);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asmatrix::AsMatrix;
    use crate::geo::{GeoBreakdown, GeoRow};
    use crate::hopdist::HopDistribution;
    use crate::netfriend::Friendliness;
    use crate::preference::{MetricPreference, PrefValue};
    use crate::selfbias::SelfBias;
    use crate::summary::{AppSummary, MeanMaxVal};

    fn sample() -> ExperimentAnalysis {
        ExperimentAnalysis {
            app: "X".into(),
            summary: AppSummary {
                app: "X".into(),
                rx_kbps: MeanMaxVal::default(),
                tx_kbps: MeanMaxVal::default(),
                peers: MeanMaxVal::default(),
                contrib_rx: MeanMaxVal::default(),
                contrib_tx: MeanMaxVal::default(),
            },
            selfbias: SelfBias::default(),
            preferences: vec![MetricPreference {
                metric: "BW".into(),
                download_nonw: PrefValue { peers_pct: 85.0, bytes_pct: 96.0 },
                download_all: PrefValue { peers_pct: 86.0, bytes_pct: 95.5 },
                upload_nonw: PrefValue::nan(),
                upload_all: PrefValue::nan(),
            }],
            geo: GeoBreakdown {
                rows: vec![GeoRow {
                    label: "CN".into(),
                    peers_pct: 87.0,
                    rx_pct: 90.0,
                    tx_pct: 92.0,
                }],
                total_peers: 100,
            },
            asmatrix: AsMatrix {
                ases: vec![1, 2],
                avg_bytes: vec![vec![10.0, 20.0], vec![30.0, 40.0]],
                intra_mean: 25.0,
                inter_mean: 25.0,
                r_ratio: 1.0,
            },
            friendliness: Friendliness::default(),
            hop_distribution: HopDistribution {
                counts: {
                    let mut v = vec![0u64; 65];
                    v[19] = 7;
                    v
                },
                ..Default::default()
            },
            hop_threshold: 19,
            total_packets: 0,
            total_bytes: 0,
        }
    }

    #[test]
    fn table4_csv_shape() {
        let a = sample();
        let out = table4_csv(&[&a]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("app,metric"));
        assert!(lines[1].starts_with("X,BW,96.000,85.000,95.500,86.000,"));
        // NaN cells become empty fields.
        assert!(lines[1].ends_with(",,,,"));
    }

    #[test]
    fn fig1_and_fig2_csv() {
        let a = sample();
        let f1 = fig1_csv(&[&a]);
        assert!(f1.contains("X,CN,87.000,90.000,92.000"));
        let f2 = fig2_csv(&[&a]);
        assert!(f2.contains("X,AS1,AS2,20.0"));
        assert_eq!(f2.lines().count(), 1 + 4);
    }

    #[test]
    fn hopdist_csv_skips_empty_bins() {
        let a = sample();
        let out = hopdist_csv(&[&a]);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("X,19,7"));
    }
}

//! Cross-scenario awareness report: the per-cell summary rows and the
//! deterministic matrix document the testbed's scenario-matrix runner
//! emits.
//!
//! The paper compared three applications under *one* network condition.
//! The scenario matrix generalises the comparison to a grid of
//! (application profile × swarm scale × session model × fault plan)
//! cells and asks, per cell, the paper's own question: how
//! network-aware does the traffic look? This module owns the output
//! side — [`CellSummary`] condenses one cell's analysis (plus the few
//! ground-truth health counters that validate it) into a flat row, and
//! [`MatrixReport`] serialises the whole grid to JSON and a paper-style
//! markdown table.
//!
//! ## Determinism contract
//!
//! A report is a pure function of the per-cell analyses: it embeds no
//! wall-clock time, host name, shard count or toolchain version, so the
//! same seed must yield a **byte-identical** report across runs, shard
//! layouts and toolchains (the CI `scenario-matrix` job diffs exactly
//! this).

use crate::report::ExperimentAnalysis;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One cell of the scenario matrix, flattened: coordinates, stream
/// health (ground truth), and the passive awareness verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Stable cell label, `profile/x<scale>/<session>/<faults>` — the
    /// per-cell corpus directory uses a sanitised form of this.
    pub cell: String,
    /// Application profile name.
    pub profile: String,
    /// Swarm scale factor.
    pub scale: f64,
    /// Session-model spec name (`baseline` = plain churn or none).
    pub session: String,
    /// Link-fault spec name (`clean` = no link impairment).
    pub faults: String,
    /// Ground-truth stream continuity (delivered / scheduled).
    pub continuity: f64,
    /// Chunks delivered to probes before their deadline.
    pub chunks_delivered: u64,
    /// Chunks moved by the epidemic push behaviour (0 for pull-only).
    pub chunks_pushed: u64,
    /// External-peer departures the churn process produced.
    pub peers_departed: u64,
    /// External-peer re-arrivals.
    pub peers_arrived: u64,
    /// Traffic share exchanged inside the probe's own subnet, %.
    pub subnet_pct: f64,
    /// Traffic share that never left the origin AS, %.
    pub intra_as_pct: f64,
    /// Traffic share that stayed in-country, %.
    pub intra_cc_pct: f64,
    /// Traffic share crossing transit (inter-AS) links, %.
    pub transit_pct: f64,
    /// Mean IP hops travelled per video byte.
    pub mean_hops_per_byte: f64,
    /// Byte-wise download preference for high-bandwidth peers, % (the
    /// paper's `B` of the BW partition, all contributors); `None` when
    /// not measurable in this cell.
    pub bw_bytes_pct: Option<f64>,
    /// Byte-wise download preference for same-AS peers, %; `None` when
    /// not measurable.
    pub as_bytes_pct: Option<f64>,
}

impl CellSummary {
    /// Builds a row from one cell's passive analysis plus the handful
    /// of ground-truth counters that contextualise it. `health` is
    /// `(continuity, chunks_delivered, chunks_pushed, peers_departed,
    /// peers_arrived)` — passed as plain numbers because this crate
    /// never sees simulator types.
    pub fn from_analysis(
        cell: String,
        profile: String,
        scale: f64,
        session: String,
        faults: String,
        analysis: &ExperimentAnalysis,
        health: (f64, u64, u64, u64, u64),
    ) -> Self {
        let f = &analysis.friendliness;
        let pref_bytes = |metric: &str| {
            analysis.preference(metric).and_then(|p| {
                p.download_all
                    .is_measurable()
                    .then_some(p.download_all.bytes_pct)
            })
        };
        CellSummary {
            cell,
            profile,
            scale,
            session,
            faults,
            continuity: health.0,
            chunks_delivered: health.1,
            chunks_pushed: health.2,
            peers_departed: health.3,
            peers_arrived: health.4,
            subnet_pct: f.subnet_pct,
            intra_as_pct: f.intra_as_pct,
            intra_cc_pct: f.intra_cc_pct,
            transit_pct: f.transit_pct,
            mean_hops_per_byte: f.mean_hops_per_byte,
            bw_bytes_pct: pref_bytes("BW"),
            as_bytes_pct: pref_bytes("AS"),
        }
    }
}

/// The whole scenario grid: run coordinates that *are* part of the
/// experiment identity (seed, duration) plus one row per cell, in the
/// fixed sweep order (profiles × scales × sessions × faults).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Seed every cell ran under.
    pub seed: u64,
    /// Simulated duration per cell, µs.
    pub duration_us: u64,
    /// One row per cell, sweep order.
    pub cells: Vec<CellSummary>,
}

fn opt_pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "–".into(),
    }
}

impl MatrixReport {
    /// Serialises to pretty JSON (stable key order; byte-identical for
    /// the same seed by the determinism contract above).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses a report back (CI uses this to sanity-check artifacts).
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Renders the paper-style markdown table: one row per cell,
    /// awareness columns alongside stream health.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# Scenario matrix — cross-scenario awareness report\n");
        let _ = writeln!(
            s,
            "{} cells, seed {}, {} s simulated per cell.\n",
            self.cells.len(),
            self.seed,
            self.duration_us / 1_000_000
        );
        let _ = writeln!(
            s,
            "| cell | cont. | pushed | churn (−/+) | subnet % | intra-AS % | transit % | hops/byte | BW pref B% | AS pref B% |"
        );
        let _ = writeln!(s, "|---|---|---|---|---|---|---|---|---|---|");
        for c in &self.cells {
            let _ = writeln!(
                s,
                "| {} | {:.3} | {} | {}/{} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {} |",
                c.cell,
                c.continuity,
                c.chunks_pushed,
                c.peers_departed,
                c.peers_arrived,
                c.subnet_pct,
                c.intra_as_pct,
                c.transit_pct,
                c.mean_hops_per_byte,
                opt_pct(c.bw_bytes_pct),
                opt_pct(c.as_bytes_pct),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cell: &str, pushed: u64) -> CellSummary {
        CellSummary {
            cell: cell.into(),
            profile: "PPLive".into(),
            scale: 0.02,
            session: "baseline".into(),
            faults: "clean".into(),
            continuity: 0.987,
            chunks_delivered: 1234,
            chunks_pushed: pushed,
            peers_departed: 3,
            peers_arrived: 2,
            subnet_pct: 0.5,
            intra_as_pct: 12.25,
            intra_cc_pct: 40.0,
            transit_pct: 87.75,
            mean_hops_per_byte: 9.5,
            bw_bytes_pct: Some(61.2),
            as_bytes_pct: None,
        }
    }

    #[test]
    fn report_round_trips_and_renders() {
        let report = MatrixReport {
            seed: 777,
            duration_us: 20_000_000,
            cells: vec![row("pplive/x0.02/baseline/clean", 0), row("rp", 42)],
        };
        let back = MatrixReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(report, back);
        let md = report.to_markdown();
        assert!(md.contains("| pplive/x0.02/baseline/clean | 0.987 | 0 | 3/2 |"));
        assert!(md.contains("| 61.20 | – |"));
        assert!(md.contains("2 cells, seed 777, 20 s simulated per cell."));
    }

    #[test]
    fn serialisation_is_reproducible() {
        let report = MatrixReport {
            seed: 1,
            duration_us: 5_000_000,
            cells: vec![row("a", 7)],
        };
        assert_eq!(report.to_json(), report.to_json());
        assert_eq!(report.to_markdown(), report.to_markdown());
    }
}

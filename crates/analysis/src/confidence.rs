//! Probe-level bootstrap confidence intervals.
//!
//! The paper reports each preference as a single percentage aggregated
//! over 44 vantage points. Whether 12.8 % is meaningfully different from
//! 3.5 % depends on how much the probes disagree — so this module
//! resamples *probes* with replacement (the correct exchangeable unit:
//! flows within a probe are dependent) and reports percentile bootstrap
//! intervals for any preference cell.

use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::partition::Metric;
use crate::preference::{preference, Dir, PrefValue};
use netaware_net::{GeoRegistry, Ip};
use netaware_sim::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A bootstrap interval around a point estimate.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Interval {
    /// The full-sample point estimate.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// Whether the interval excludes a value (e.g. the 50 % coin-flip
    /// line for HOP, or 0 for set-membership metrics).
    pub fn excludes(&self, v: f64) -> bool {
        v < self.lo || v > self.hi
    }
}

/// Bootstrap CI for one metric/direction's byte-wise preference.
///
/// `level` is the two-sided confidence level (e.g. 0.95); `replicates`
/// the number of bootstrap resamples. Returns `None` when the point
/// estimate is unmeasurable.
#[allow(clippy::too_many_arguments)]
pub fn bootstrap_bytes_ci(
    pfs: &[ProbeFlows],
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    hop_threshold: u8,
    metric: Metric,
    dir: Dir,
    exclude: Option<&BTreeSet<Ip>>,
    level: f64,
    replicates: usize,
    seed: u64,
) -> Option<Interval> {
    let point = preference(pfs, registry, cfg, hop_threshold, metric, dir, exclude);
    if !point.is_measurable() {
        return None;
    }
    let n = pfs.len();
    if n == 0 {
        return None;
    }
    let mut rng = DetRng::stream(seed, "bootstrap");
    let mut samples: Vec<f64> = Vec::with_capacity(replicates);
    let mut resample: Vec<ProbeFlows> = Vec::with_capacity(n);
    for _ in 0..replicates {
        resample.clear();
        for _ in 0..n {
            resample.push(pfs[rng.range(0..n)].clone());
        }
        let v: PrefValue =
            preference(&resample, registry, cfg, hop_threshold, metric, dir, exclude);
        if v.is_measurable() && !v.bytes_pct.is_nan() {
            samples.push(v.bytes_pct);
        }
    }
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    let alpha = (1.0 - level.clamp(0.0, 1.0)) / 2.0;
    let idx = |q: f64| -> f64 {
        let k = (q * (samples.len() - 1) as f64).round() as usize;
        samples[k.min(samples.len() - 1)]
    };
    Some(Interval {
        point: point.bytes_pct,
        lo: idx(alpha),
        hi: idx(1.0 - alpha),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    fn probe_flows(probe_idx: u8, high_share: f64) -> ProbeFlows {
        let probe = Ip::from_octets(10, 0, probe_idx, 1);
        let mut pf = ProbeFlows {
            probe,
            ..Default::default()
        };
        for i in 0..20u32 {
            let high = (i as f64) < 20.0 * high_share;
            let remote = Ip(0x3A00_0000 | ((probe_idx as u32) << 8) | i);
            pf.flows.insert(
                remote,
                FlowStats {
                    probe,
                    remote,
                    bytes_rx: 30_000,
                    video_bytes_rx: 30_000,
                    video_pkts_rx: 24,
                    min_ipg_us: Some(if high { 100 } else { 20_000 }),
                    rx_ttl: Some(110),
                    ..Default::default()
                },
            );
        }
        pf
    }

    #[test]
    fn homogeneous_probes_give_tight_interval() {
        let pfs: Vec<ProbeFlows> = (0..12).map(|i| probe_flows(i, 0.8)).collect();
        let ci = bootstrap_bytes_ci(
            &pfs,
            &reg(),
            &AnalysisConfig::default(),
            19,
            Metric::Bw,
            Dir::Download,
            None,
            0.95,
            200,
            7,
        )
        .unwrap();
        assert!((ci.point - 80.0).abs() < 1.0, "point {}", ci.point);
        assert!(ci.hi - ci.lo < 5.0, "interval [{}, {}]", ci.lo, ci.hi);
        assert!(ci.excludes(50.0));
    }

    #[test]
    fn heterogeneous_probes_widen_the_interval() {
        // Half the probes see 100% high-bw, half see 0%.
        let pfs: Vec<ProbeFlows> = (0..12)
            .map(|i| probe_flows(i, if i % 2 == 0 { 1.0 } else { 0.0 }))
            .collect();
        let ci = bootstrap_bytes_ci(
            &pfs,
            &reg(),
            &AnalysisConfig::default(),
            19,
            Metric::Bw,
            Dir::Download,
            None,
            0.95,
            200,
            7,
        )
        .unwrap();
        assert!(ci.hi - ci.lo > 20.0, "interval [{}, {}]", ci.lo, ci.hi);
        assert!(!ci.excludes(50.0));
    }

    #[test]
    fn unmeasurable_returns_none() {
        let ci = bootstrap_bytes_ci(
            &[],
            &reg(),
            &AnalysisConfig::default(),
            19,
            Metric::Bw,
            Dir::Download,
            None,
            0.95,
            50,
            1,
        );
        assert!(ci.is_none());
    }

    #[test]
    fn deterministic_in_seed() {
        let pfs: Vec<ProbeFlows> = (0..6).map(|i| probe_flows(i, 0.5)).collect();
        let run = |seed| {
            bootstrap_bytes_ci(
                &pfs,
                &reg(),
                &AnalysisConfig::default(),
                19,
                Metric::Bw,
                Dir::Download,
                None,
                0.9,
                100,
                seed,
            )
            .unwrap()
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
    }
}

//! Temporal evolution of per-probe metrics.
//!
//! The closest prior work the paper cites (\[11\], Ali et al.) studied
//! the *temporal evolution* of transmitted/received bytes and peer
//! counts; this module provides the same view over our traces: windowed
//! RX/TX rates and active-peer counts per probe or aggregated, with a
//! terminal sparkline renderer. Useful for eyeballing warm-up, churn
//! waves, and upload bursts that the scalar tables average away.

use crate::pass::{run_pass, SeriesPass};
use netaware_trace::{ProbeTrace, TraceSet};
use serde::{Deserialize, Serialize};

/// One probe's (or an aggregate's) windowed series.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RateSeries {
    /// Window length, µs.
    pub window_us: u64,
    /// RX rate per window, kb/s.
    pub rx_kbps: Vec<f64>,
    /// TX rate per window, kb/s.
    pub tx_kbps: Vec<f64>,
    /// Distinct remotes seen per window.
    pub active_peers: Vec<u32>,
}

impl RateSeries {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.rx_kbps.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.rx_kbps.is_empty()
    }

    /// Element-wise accumulation (for aggregating probes).
    pub fn accumulate(&mut self, other: &RateSeries) {
        let n = self.len().max(other.len());
        self.rx_kbps.resize(n, 0.0);
        self.tx_kbps.resize(n, 0.0);
        self.active_peers.resize(n, 0);
        for (i, v) in other.rx_kbps.iter().enumerate() {
            self.rx_kbps[i] += v;
        }
        for (i, v) in other.tx_kbps.iter().enumerate() {
            self.tx_kbps[i] += v;
        }
        for (i, v) in other.active_peers.iter().enumerate() {
            self.active_peers[i] += v;
        }
    }

    /// Renders a sparkline of one component.
    pub fn sparkline(values: &[f64]) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return "▁".repeat(values.len());
        }
        values
            .iter()
            .map(|&v| BARS[((v / max) * 7.0).round() as usize])
            .collect()
    }
}

/// Computes the windowed series for one probe trace — a
/// [`crate::pass::SeriesPass`] driven over the records (bucketing is
/// order-insensitive, so unsorted captures are fine here).
///
/// # Panics
/// If `window_us` is zero.
pub fn probe_series(trace: &ProbeTrace, duration_us: u64, window_us: u64) -> RateSeries {
    run_pass(
        trace.records_unsorted(),
        SeriesPass::new(trace.probe, duration_us, window_us),
    )
}

/// Aggregate series across every probe of an experiment (rates summed).
pub fn experiment_series(set: &TraceSet, window_us: u64) -> RateSeries {
    let mut acc = RateSeries {
        window_us,
        ..Default::default()
    };
    for t in &set.traces {
        acc.accumulate(&probe_series(t, set.duration_us, window_us));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_net::Ip;
    use netaware_trace::{PacketRecord, PayloadKind};

    fn rec(ts: u64, src: Ip, dst: Ip, size: u16) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl: 110,
            kind: PayloadKind::Video,
        }
    }

    #[test]
    fn windows_and_rates() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let a = Ip::from_octets(58, 0, 0, 1);
        let b = Ip::from_octets(58, 0, 0, 2);
        let mut t = ProbeTrace::new(p);
        // Window 0: 1000 B RX from a. Window 1: 500 B TX to b.
        t.push(rec(100, a, p, 1000));
        t.push(rec(1_000_100, p, b, 500));
        let s = probe_series(&t, 3_000_000, 1_000_000);
        assert_eq!(s.len(), 3);
        assert!((s.rx_kbps[0] - 8.0).abs() < 1e-9); // 1000B/1s = 8 kb/s
        assert!((s.tx_kbps[1] - 4.0).abs() < 1e-9);
        assert_eq!(s.active_peers, vec![1, 1, 0]);
    }

    #[test]
    fn late_records_clamp_into_last_window() {
        let p = Ip::from_octets(10, 0, 0, 1);
        let a = Ip::from_octets(58, 0, 0, 1);
        let mut t = ProbeTrace::new(p);
        t.push(rec(9_999_999, a, p, 100)); // beyond nominal duration
        let s = probe_series(&t, 2_000_000, 1_000_000);
        assert_eq!(s.len(), 2);
        assert!(s.rx_kbps[1] > 0.0);
    }

    #[test]
    fn accumulate_sums_and_resizes() {
        let mut a = RateSeries {
            window_us: 1,
            rx_kbps: vec![1.0],
            tx_kbps: vec![2.0],
            active_peers: vec![3],
        };
        let b = RateSeries {
            window_us: 1,
            rx_kbps: vec![1.0, 5.0],
            tx_kbps: vec![1.0, 1.0],
            active_peers: vec![1, 1],
        };
        a.accumulate(&b);
        assert_eq!(a.rx_kbps, vec![2.0, 5.0]);
        assert_eq!(a.tx_kbps, vec![3.0, 1.0]);
        assert_eq!(a.active_peers, vec![4, 1]);
    }

    #[test]
    fn sparkline_shapes() {
        let s = RateSeries::sparkline(&[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('█'));
        assert_eq!(RateSeries::sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    fn experiment_aggregation() {
        let p1 = Ip::from_octets(10, 0, 0, 1);
        let p2 = Ip::from_octets(10, 0, 1, 1);
        let a = Ip::from_octets(58, 0, 0, 1);
        let mut set = TraceSet::new("X", 2_000_000);
        let mut t1 = ProbeTrace::new(p1);
        t1.push(rec(0, a, p1, 1000));
        let mut t2 = ProbeTrace::new(p2);
        t2.push(rec(0, a, p2, 1000));
        set.add(t1);
        set.add(t2);
        let s = experiment_series(&set, 1_000_000);
        assert!((s.rx_kbps[0] - 16.0).abs() < 1e-9);
        assert_eq!(s.active_peers[0], 2);
    }
}

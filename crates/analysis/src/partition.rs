//! Preferential partitions.
//!
//! The paper's framework: pick a network property `X(·)`, split its
//! support into a preferred set `X_P` and its complement, and measure how
//! peers and bytes distribute across the two. The five instances studied
//! (§III-B):
//!
//! | metric | preferred class `1_P(p,e) = 1` |
//! |---|---|
//! | `BW`  | min IPG < 1 ms (bottleneck > 10 Mb/s) |
//! | `AS`  | `AS(p) = AS(e)` |
//! | `CC`  | `CC(p) = CC(e)` |
//! | `NET` | same subnet (`HOP = 0`) |
//! | `HOP` | `HOP(e,p) <` the median threshold (19) |
//!
//! A metric may be unmeasurable for a given pair (no received video
//! train for BW, no received packet or a non-Windows TTL for HOP); such
//! pairs are excluded from both numerator and denominator, mirroring the
//! paper's conservative handling.

use crate::flows::FlowStats;
use crate::heuristics::AnalysisConfig;
use crate::hop::flow_hops;
use crate::ipg::{bw_class, BwClass};
use netaware_net::GeoRegistry;

/// Everything a partition may inspect about one (probe, remote) pair.
pub struct PairCtx<'a> {
    /// The aggregated flow.
    pub flow: &'a FlowStats,
    /// The public geolocation registry (whois/GeoIP stand-in).
    pub registry: &'a GeoRegistry,
    /// Analysis thresholds.
    pub cfg: &'a AnalysisConfig,
    /// Hop threshold in force (fixed 19 or measured median).
    pub hop_threshold: u8,
}

/// The five network properties of the study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Access-capacity class of the path.
    Bw,
    /// Same Autonomous System.
    As,
    /// Same country.
    Cc,
    /// Same subnet.
    Net,
    /// Router distance below the median.
    Hop,
}

impl Metric {
    /// All metrics in the paper's presentation order (Table IV rows).
    pub const ALL: [Metric; 5] = [Metric::Bw, Metric::As, Metric::Cc, Metric::Net, Metric::Hop];

    /// Row label.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::Bw => "BW",
            Metric::As => "AS",
            Metric::Cc => "CC",
            Metric::Net => "NET",
            Metric::Hop => "HOP",
        }
    }

    /// `BW` can only be inferred from packets the remote *sends*, so it
    /// is measured on the download side only ("in order to gather
    /// conservative results, we limitedly consider the downlink
    /// direction for the BW metric").
    pub const fn upload_measurable(self) -> bool {
        !matches!(self, Metric::Bw)
    }

    /// Whether the pair belongs to the preferred class; `None` when the
    /// metric cannot be evaluated for this pair.
    pub fn preferred(self, ctx: &PairCtx<'_>) -> Option<bool> {
        let f = ctx.flow;
        match self {
            Metric::Bw => match bw_class(f, ctx.cfg) {
                BwClass::High => Some(true),
                BwClass::Low => Some(false),
                BwClass::Unknown => None,
            },
            Metric::As => {
                let pa = ctx.registry.as_of(f.probe);
                let ea = ctx.registry.as_of(f.remote);
                match (pa, ea) {
                    // Unresolvable remotes count as "different AS": the
                    // paper's whois lookups behaved the same way.
                    (Some(a), Some(b)) => Some(a == b),
                    _ => Some(false),
                }
            }
            Metric::Cc => {
                let pc = ctx.registry.country_of(f.probe);
                let ec = ctx.registry.country_of(f.remote);
                match (pc, ec) {
                    (Some(a), Some(b)) => Some(a == b),
                    _ => Some(false),
                }
            }
            Metric::Net => Some(f.probe.same_subnet(f.remote)),
            Metric::Hop => flow_hops(f.rx_ttl).map(|h| h < ctx.hop_threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Ip, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(3, CountryCode::IT, AsKind::ResidentialIsp, "IT-DSL"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(151, 0, 0, 0), 16), AsId(3))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    fn ctx_for<'a>(
        flow: &'a FlowStats,
        registry: &'a GeoRegistry,
        cfg: &'a AnalysisConfig,
    ) -> PairCtx<'a> {
        PairCtx {
            flow,
            registry,
            cfg,
            hop_threshold: 19,
        }
    }

    fn flow(probe: Ip, remote: Ip) -> FlowStats {
        FlowStats {
            probe,
            remote,
            ..Default::default()
        }
    }

    #[test]
    fn bw_partition_follows_ipg() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let mut f = flow(Ip::from_octets(130, 192, 1, 1), Ip::from_octets(58, 1, 1, 1));
        f.min_ipg_us = Some(120);
        assert_eq!(Metric::Bw.preferred(&ctx_for(&f, &r, &cfg)), Some(true));
        f.min_ipg_us = Some(8_000);
        assert_eq!(Metric::Bw.preferred(&ctx_for(&f, &r, &cfg)), Some(false));
        f.min_ipg_us = None;
        assert_eq!(Metric::Bw.preferred(&ctx_for(&f, &r, &cfg)), None);
    }

    #[test]
    fn as_partition() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let p = Ip::from_octets(130, 192, 1, 1);
        let same = flow(p, Ip::from_octets(130, 192, 200, 7));
        let diff = flow(p, Ip::from_octets(58, 1, 1, 1));
        let unknown = flow(p, Ip::from_octets(99, 9, 9, 9));
        assert_eq!(Metric::As.preferred(&ctx_for(&same, &r, &cfg)), Some(true));
        assert_eq!(Metric::As.preferred(&ctx_for(&diff, &r, &cfg)), Some(false));
        assert_eq!(
            Metric::As.preferred(&ctx_for(&unknown, &r, &cfg)),
            Some(false)
        );
    }

    #[test]
    fn cc_partition_spans_ases() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let p = Ip::from_octets(130, 192, 1, 1); // IT academic
        let same_cc_other_as = flow(p, Ip::from_octets(151, 0, 3, 3)); // IT DSL
        assert_eq!(
            Metric::As.preferred(&ctx_for(&same_cc_other_as, &r, &cfg)),
            Some(false)
        );
        assert_eq!(
            Metric::Cc.preferred(&ctx_for(&same_cc_other_as, &r, &cfg)),
            Some(true)
        );
    }

    #[test]
    fn net_partition_is_slash24() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let p = Ip::from_octets(130, 192, 1, 1);
        assert_eq!(
            Metric::Net.preferred(&ctx_for(&flow(p, Ip::from_octets(130, 192, 1, 77)), &r, &cfg)),
            Some(true)
        );
        assert_eq!(
            Metric::Net.preferred(&ctx_for(&flow(p, Ip::from_octets(130, 192, 2, 77)), &r, &cfg)),
            Some(false)
        );
    }

    #[test]
    fn hop_partition_uses_threshold() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let p = Ip::from_octets(130, 192, 1, 1);
        let mut f = flow(p, Ip::from_octets(58, 1, 1, 1));
        f.rx_ttl = Some(115); // 13 hops < 19
        assert_eq!(Metric::Hop.preferred(&ctx_for(&f, &r, &cfg)), Some(true));
        f.rx_ttl = Some(109); // 19 hops, not < 19
        assert_eq!(Metric::Hop.preferred(&ctx_for(&f, &r, &cfg)), Some(false));
        f.rx_ttl = None;
        assert_eq!(Metric::Hop.preferred(&ctx_for(&f, &r, &cfg)), None);
    }

    #[test]
    fn metric_metadata() {
        assert_eq!(Metric::ALL.len(), 5);
        assert!(!Metric::Bw.upload_measurable());
        assert!(Metric::As.upload_measurable());
        assert_eq!(Metric::Net.name(), "NET");
    }
}

//! Per-remote flow aggregation.
//!
//! One linear pass over each probe's (time-sorted) trace produces a
//! [`FlowStats`] per remote endpoint — the unit everything downstream
//! (contributor classification, partitions, preference sums) operates
//! on. Probes aggregate independently, so the whole step is a rayon
//! `par_iter` over probes.

use crate::heuristics::AnalysisConfig;
use crate::pass::{run_pass, FlowPass};
use netaware_net::Ip;
use netaware_trace::{ProbeTrace, TraceSet};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated statistics of one probe↔remote flow.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// The probe that captured the flow.
    pub probe: Ip,
    /// The remote endpoint.
    pub remote: Ip,
    /// Packets received from the remote.
    pub pkts_rx: u64,
    /// Packets sent to the remote.
    pub pkts_tx: u64,
    /// Bytes received from the remote.
    pub bytes_rx: u64,
    /// Bytes sent to the remote.
    pub bytes_tx: u64,
    /// Received bytes in video-sized packets.
    pub video_bytes_rx: u64,
    /// Sent bytes in video-sized packets.
    pub video_bytes_tx: u64,
    /// Received video-sized packets.
    pub video_pkts_rx: u64,
    /// Sent video-sized packets.
    pub video_pkts_tx: u64,
    /// Minimum gap between consecutive received video packets, µs
    /// (`None` until two such packets arrive). The packet-pair capacity
    /// signal.
    pub min_ipg_us: Option<u64>,
    /// TTL of the last received packet (paths are stable, so any works;
    /// `None` for flows that are TX-only).
    pub rx_ttl: Option<u8>,
    /// First packet timestamp, µs.
    pub first_ts_us: u64,
    /// Last packet timestamp, µs.
    pub last_ts_us: u64,
}

/// All flows of one probe.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbeFlows {
    /// The capturing probe.
    pub probe: Ip,
    /// Flows keyed by remote.
    pub flows: BTreeMap<Ip, FlowStats>,
}

impl ProbeFlows {
    /// Number of distinct remotes seen (the "# peers" of Table II).
    pub fn peers_seen(&self) -> usize {
        self.flows.len()
    }
}

/// Aggregates one probe trace — a [`crate::pass::FlowPass`] driven over
/// the records in one sweep. The trace must be time-sorted (call
/// [`ProbeTrace::finalize`] first, or let [`TraceSet::finalize`] do it):
/// the min-IPG and last-received-TTL accumulators depend on arrival
/// order.
pub fn aggregate_probe(trace: &ProbeTrace, cfg: &AnalysisConfig) -> ProbeFlows {
    run_pass(trace.records(), FlowPass::new(trace.probe, cfg))
}

/// Aggregates every probe of an experiment in parallel.
pub fn aggregate(set: &TraceSet, cfg: &AnalysisConfig) -> Vec<ProbeFlows> {
    set.traces
        .par_iter()
        .map(|t| aggregate_probe(t, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_trace::{PacketRecord, PayloadKind};

    fn rec(ts: u64, src: Ip, dst: Ip, size: u16, ttl: u8) -> PacketRecord {
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl,
            kind: if size >= 400 {
                PayloadKind::Video
            } else {
                PayloadKind::Signaling
            },
        }
    }

    fn probe() -> Ip {
        Ip::from_octets(10, 0, 0, 1)
    }
    fn remote_a() -> Ip {
        Ip::from_octets(58, 0, 0, 1)
    }
    fn remote_b() -> Ip {
        Ip::from_octets(60, 0, 0, 1)
    }

    #[test]
    fn splits_directions_and_sizes() {
        let p = probe();
        let a = remote_a();
        let mut t = ProbeTrace::new(p);
        t.push(rec(100, a, p, 1250, 110)); // video rx
        t.push(rec(200, a, p, 90, 110)); // signaling rx
        t.push(rec(300, p, a, 1250, 128)); // video tx
        t.push(rec(400, p, a, 60, 128)); // signaling tx
        let flows = aggregate_probe(&t, &AnalysisConfig::default());
        let f = &flows.flows[&a];
        assert_eq!(f.pkts_rx, 2);
        assert_eq!(f.pkts_tx, 2);
        assert_eq!(f.bytes_rx, 1340);
        assert_eq!(f.bytes_tx, 1310);
        assert_eq!(f.video_bytes_rx, 1250);
        assert_eq!(f.video_bytes_tx, 1250);
        assert_eq!(f.rx_ttl, Some(110));
        assert_eq!(f.first_ts_us, 100);
        assert_eq!(f.last_ts_us, 400);
    }

    #[test]
    fn min_ipg_over_video_only() {
        let p = probe();
        let a = remote_a();
        let mut t = ProbeTrace::new(p);
        t.push(rec(1_000, a, p, 1250, 110));
        t.push(rec(1_200, a, p, 80, 110)); // signaling must not break the train
        t.push(rec(1_500, a, p, 1250, 110)); // gap 500
        t.push(rec(9_000, a, p, 1250, 110)); // gap 7500
        let flows = aggregate_probe(&t, &AnalysisConfig::default());
        assert_eq!(flows.flows[&a].min_ipg_us, Some(500));
    }

    #[test]
    fn min_ipg_none_for_single_video_packet() {
        let p = probe();
        let a = remote_a();
        let mut t = ProbeTrace::new(p);
        t.push(rec(1_000, a, p, 1250, 110));
        let flows = aggregate_probe(&t, &AnalysisConfig::default());
        assert_eq!(flows.flows[&a].min_ipg_us, None);
    }

    #[test]
    fn ipg_tracked_per_remote_independently() {
        let p = probe();
        let (a, b) = (remote_a(), remote_b());
        let mut t = ProbeTrace::new(p);
        t.push(rec(0, a, p, 1250, 110));
        t.push(rec(100, b, p, 1250, 105)); // interleaved remote
        t.push(rec(200, a, p, 1250, 110)); // a's gap = 200, not 100
        t.push(rec(50_000, b, p, 1250, 105));
        let flows = aggregate_probe(&t, &AnalysisConfig::default());
        assert_eq!(flows.flows[&a].min_ipg_us, Some(200));
        assert_eq!(flows.flows[&b].min_ipg_us, Some(49_900));
    }

    #[test]
    fn tx_only_flow_has_no_ttl() {
        let p = probe();
        let a = remote_a();
        let mut t = ProbeTrace::new(p);
        t.push(rec(0, p, a, 90, 128));
        let flows = aggregate_probe(&t, &AnalysisConfig::default());
        let f = &flows.flows[&a];
        assert_eq!(f.rx_ttl, None);
        assert_eq!(f.pkts_rx, 0);
        assert_eq!(f.pkts_tx, 1);
    }

    #[test]
    fn peers_seen_counts_remotes() {
        let p = probe();
        let mut t = ProbeTrace::new(p);
        t.push(rec(0, remote_a(), p, 90, 110));
        t.push(rec(1, remote_b(), p, 90, 111));
        t.push(rec(2, p, remote_a(), 60, 128));
        let flows = aggregate_probe(&t, &AnalysisConfig::default());
        assert_eq!(flows.peers_seen(), 2);
    }

    #[test]
    fn parallel_aggregate_matches_sequential() {
        let p = probe();
        let mut set = TraceSet::new("X", 1_000_000);
        for k in 0..4u32 {
            let probe_ip = Ip(p.0 + k * 256);
            let mut t = ProbeTrace::new(probe_ip);
            for i in 0..100u64 {
                t.push(rec(
                    i * 10,
                    Ip(remote_a().0 + (i % 7) as u32),
                    probe_ip,
                    1250,
                    110,
                ));
            }
            set.add(t);
        }
        let cfg = AnalysisConfig::default();
        let par = aggregate(&set, &cfg);
        for (pf, t) in par.iter().zip(&set.traces) {
            let seq = aggregate_probe(t, &cfg);
            assert_eq!(pf.probe, seq.probe);
            assert_eq!(pf.flows.len(), seq.flows.len());
            for (r, f) in &pf.flows {
                assert_eq!(f.bytes_rx, seq.flows[r].bytes_rx);
                assert_eq!(f.min_ipg_us, seq.flows[r].min_ipg_us);
            }
        }
    }
}

//! Peer-wise and byte-wise preference percentages (Eq. 1–8).
//!
//! For a partition `X_P`, direction `dir ∈ {U, D}` and probe set `W`:
//!
//! ```text
//! P_dir = 100 · Σ_p Σ_{e ∈ dir(p)} 1_P(p,e)            / Σ_p |dir(p)|
//! B_dir = 100 · Σ_p Σ_{e ∈ dir(p)} 1_P(p,e) · B(p,e)   / Σ_p Σ_e B(p,e)
//! ```
//!
//! The primed variants `P'`, `B'` evaluate the same sums over
//! `P'(p) = P(p) \ W`, removing the self-induced bias of the probes
//! ("NAPA-WINE peers clearly prefer to exchange data among them").

use crate::contributors::{is_rx_contributor, is_tx_contributor};
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::partition::{Metric, PairCtx};
use netaware_net::{GeoRegistry, Ip};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// (De)serialises `f64::NAN` as JSON `null` so unmeasurable cells
/// survive a round trip.
pub mod nan_as_null {
    use serde::{Error, Value};

    /// Serialises NaN as `null`.
    pub fn serialize(v: &f64) -> Value {
        if v.is_nan() {
            Value::Null
        } else {
            Value::F64(*v)
        }
    }

    /// Deserialises `null` back to NaN.
    pub fn deserialize(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or_else(|| Error::expected("number or null", "nan_as_null")),
        }
    }
}

/// A peer-wise / byte-wise percentage pair. `NaN` encodes "no measurable
/// pairs" and renders as `-`, like the paper's empty cells.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PrefValue {
    /// Peer-wise preference `P`, percent.
    #[serde(with = "nan_as_null")]
    pub peers_pct: f64,
    /// Byte-wise preference `B`, percent.
    #[serde(with = "nan_as_null")]
    pub bytes_pct: f64,
}

impl PrefValue {
    /// An unmeasurable cell.
    pub const fn nan() -> Self {
        PrefValue {
            peers_pct: f64::NAN,
            bytes_pct: f64::NAN,
        }
    }

    /// Whether the cell carries data.
    pub fn is_measurable(&self) -> bool {
        !self.peers_pct.is_nan()
    }
}

/// Table IV cells for one metric and one application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricPreference {
    /// Row label ("BW", "AS", …).
    pub metric: String,
    /// Download, excluding probe set (B′_D, P′_D).
    pub download_nonw: PrefValue,
    /// Download, all contributors (B_D, P_D).
    pub download_all: PrefValue,
    /// Upload, excluding probe set (B′_U, P′_U).
    pub upload_nonw: PrefValue,
    /// Upload, all contributors (B_U, P_U).
    pub upload_all: PrefValue,
}

/// Traffic direction, relative to the probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Download: remotes in `D(p)`, bytes received.
    Download,
    /// Upload: remotes in `U(p)`, bytes sent.
    Upload,
}

/// Computes `P` and `B` for one metric/direction over the given probe
/// flows, optionally excluding remotes in `exclude` (the probe set `W`).
pub fn preference(
    pfs: &[ProbeFlows],
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    hop_threshold: u8,
    metric: Metric,
    dir: Dir,
    exclude: Option<&BTreeSet<Ip>>,
) -> PrefValue {
    if dir == Dir::Upload && !metric.upload_measurable() {
        return PrefValue::nan();
    }
    let mut peers_pref = 0u64;
    let mut peers_tot = 0u64;
    let mut bytes_pref = 0u64;
    let mut bytes_tot = 0u64;

    for pf in pfs {
        for f in pf.flows.values() {
            if let Some(w) = exclude {
                if w.contains(&f.remote) {
                    continue;
                }
            }
            let (in_dir, bytes) = match dir {
                Dir::Download => (is_rx_contributor(f, cfg), f.bytes_rx),
                Dir::Upload => (is_tx_contributor(f, cfg), f.bytes_tx),
            };
            if !in_dir {
                continue;
            }
            let ctx = PairCtx {
                flow: f,
                registry,
                cfg,
                hop_threshold,
            };
            let Some(pref) = metric.preferred(&ctx) else {
                continue; // unmeasurable pair: out of both sums
            };
            peers_tot += 1;
            bytes_tot += bytes;
            if pref {
                peers_pref += 1;
                bytes_pref += bytes;
            }
        }
    }
    if peers_tot == 0 {
        return PrefValue::nan();
    }
    PrefValue {
        peers_pct: 100.0 * peers_pref as f64 / peers_tot as f64,
        bytes_pct: if bytes_tot == 0 {
            f64::NAN
        } else {
            100.0 * bytes_pref as f64 / bytes_tot as f64
        },
    }
}

/// Computes the full Table IV row block (all four variants) for one
/// metric.
pub fn metric_preference(
    pfs: &[ProbeFlows],
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    hop_threshold: u8,
    metric: Metric,
    probe_set: &BTreeSet<Ip>,
) -> MetricPreference {
    MetricPreference {
        metric: metric.name().to_string(),
        download_nonw: preference(
            pfs,
            registry,
            cfg,
            hop_threshold,
            metric,
            Dir::Download,
            Some(probe_set),
        ),
        download_all: preference(pfs, registry, cfg, hop_threshold, metric, Dir::Download, None),
        upload_nonw: preference(
            pfs,
            registry,
            cfg,
            hop_threshold,
            metric,
            Dir::Upload,
            Some(probe_set),
        ),
        upload_all: preference(pfs, registry, cfg, hop_threshold, metric, Dir::Upload, None),
    }
}

/// All five metrics (the full Table IV block for one application).
pub fn all_preferences(
    pfs: &[ProbeFlows],
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    hop_threshold: u8,
    probe_set: &BTreeSet<Ip>,
) -> Vec<MetricPreference> {
    Metric::ALL
        .iter()
        .map(|&m| metric_preference(pfs, registry, cfg, hop_threshold, m, probe_set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    fn probe() -> Ip {
        Ip::from_octets(130, 192, 1, 1)
    }

    fn rx_flow(remote: Ip, bytes: u64, ipg: Option<u64>) -> FlowStats {
        FlowStats {
            probe: probe(),
            remote,
            bytes_rx: bytes,
            video_bytes_rx: bytes,
            video_pkts_rx: 100,
            min_ipg_us: ipg,
            rx_ttl: Some(110),
            ..Default::default()
        }
    }

    fn pfs_of(flows: Vec<FlowStats>) -> Vec<ProbeFlows> {
        let mut pf = ProbeFlows {
            probe: probe(),
            ..Default::default()
        };
        for f in flows {
            pf.flows.insert(f.remote, f);
        }
        vec![pf]
    }

    #[test]
    fn bw_preference_counts_peers_and_bytes() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        // 2 high-bw remotes carrying 90k of 110k bytes; 1 low-bw with
        // 20k (just at the contributor bar).
        let pfs = pfs_of(vec![
            rx_flow(Ip::from_octets(58, 0, 0, 1), 45_000, Some(100)),
            rx_flow(Ip::from_octets(58, 0, 0, 2), 45_000, Some(200)),
            rx_flow(Ip::from_octets(58, 0, 0, 3), 20_000, Some(20_000)),
        ]);
        let v = preference(&pfs, &r, &cfg, 19, Metric::Bw, Dir::Download, None);
        assert!((v.peers_pct - 66.666).abs() < 0.01, "{}", v.peers_pct);
        assert!((v.bytes_pct - 100.0 * 90.0 / 110.0).abs() < 0.01, "{}", v.bytes_pct);
    }

    #[test]
    fn complement_identity() {
        // P(X_P) + P(X̄_P) must equal 100 — evaluate by inverting the
        // preferred set via the AS metric on a mixed population.
        let r = reg();
        let cfg = AnalysisConfig::default();
        let pfs = pfs_of(vec![
            rx_flow(Ip::from_octets(130, 192, 9, 9), 20_000, Some(100)),
            rx_flow(Ip::from_octets(58, 0, 0, 2), 60_000, Some(100)),
        ]);
        let v = preference(&pfs, &r, &cfg, 19, Metric::As, Dir::Download, None);
        assert!((v.peers_pct - 50.0).abs() < 1e-9);
        assert!((v.bytes_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn excluding_probe_set_removes_their_flows() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let sibling = Ip::from_octets(130, 192, 1, 2); // also a probe
        let pfs = pfs_of(vec![
            rx_flow(sibling, 80_000, Some(100)),
            rx_flow(Ip::from_octets(58, 0, 0, 2), 20_000, Some(100)),
        ]);
        let mut w = BTreeSet::new();
        w.insert(probe());
        w.insert(sibling);
        let all = preference(&pfs, &r, &cfg, 19, Metric::As, Dir::Download, None);
        let nonw = preference(&pfs, &r, &cfg, 19, Metric::As, Dir::Download, Some(&w));
        assert!((all.peers_pct - 50.0).abs() < 1e-9);
        assert!((all.bytes_pct - 80.0).abs() < 1e-9);
        assert!((nonw.peers_pct - 0.0).abs() < 1e-9);
        assert!((nonw.bytes_pct - 0.0).abs() < 1e-9);
    }

    #[test]
    fn bw_upload_is_unmeasurable() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let pfs = pfs_of(vec![rx_flow(Ip::from_octets(58, 0, 0, 1), 45_000, Some(100))]);
        let v = preference(&pfs, &r, &cfg, 19, Metric::Bw, Dir::Upload, None);
        assert!(!v.is_measurable());
    }

    #[test]
    fn empty_contributor_set_is_nan() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let v = preference(&pfs_of(vec![]), &r, &cfg, 19, Metric::As, Dir::Download, None);
        assert!(!v.is_measurable());
    }

    #[test]
    fn unmeasurable_pairs_leave_both_sums() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        // One flow with no IPG train: BW skips it entirely, so the one
        // classifiable flow decides the percentages alone.
        let mut no_train = rx_flow(Ip::from_octets(58, 0, 0, 9), 50_000, None);
        no_train.min_ipg_us = None;
        let pfs = pfs_of(vec![
            no_train,
            rx_flow(Ip::from_octets(58, 0, 0, 1), 25_000, Some(100)),
        ]);
        let v = preference(&pfs, &r, &cfg, 19, Metric::Bw, Dir::Download, None);
        assert!((v.peers_pct - 100.0).abs() < 1e-9);
        assert!((v.bytes_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn full_block_has_five_rows() {
        let r = reg();
        let cfg = AnalysisConfig::default();
        let pfs = pfs_of(vec![rx_flow(Ip::from_octets(58, 0, 0, 1), 45_000, Some(100))]);
        let w = BTreeSet::new();
        let block = all_preferences(&pfs, &r, &cfg, 19, &w);
        assert_eq!(block.len(), 5);
        assert_eq!(block[0].metric, "BW");
        assert_eq!(block[4].metric, "HOP");
        assert!(!block[0].upload_all.is_measurable());
        assert!(block[1].download_all.is_measurable());
    }
}

//! One-call experiment analysis.
//!
//! Both drivers stream each probe's records exactly once through a
//! composite [`AnalysisPass`] (flows + windowed rates + packet/byte
//! totals), in parallel across probes, then reduce the per-probe outputs
//! sequentially in trace order. [`analyze`] walks an in-memory
//! [`netaware_trace::TraceSet`]; [`analyze_corpus`] walks an on-disk
//! corpus directory via [`CorpusStream`] without ever materialising a
//! trace, so peak memory is bounded by the accumulators.

use crate::asmatrix::{as_matrix, AsMatrix};
use crate::flows::ProbeFlows;
use crate::geo::{geo_breakdown, GeoBreakdown};
use crate::heuristics::AnalysisConfig;
use crate::hop::hop_threshold;
use crate::hopdist::{hop_distribution, HopDistribution};
use crate::netfriend::{friendliness, Friendliness};
use crate::pass::{AnalysisPass, FlowPass, ProbeRates, RatePass};
use crate::preference::{all_preferences, MetricPreference};
use crate::selfbias::{self_bias, SelfBias};
use crate::summary::{summarize_with_rates, AppSummary};
use netaware_net::{GeoRegistry, Ip};
use netaware_obs::{Level, Obs};
use netaware_sim::SimTime;
use netaware_trace::{CorpusStream, PacketRecord, TraceError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// Everything the paper reports about one experiment, computed from its
/// traces alone.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentAnalysis {
    /// Application under test.
    pub app: String,
    /// Table II row.
    pub summary: AppSummary,
    /// Table III row.
    pub selfbias: SelfBias,
    /// Table IV block (five metric rows).
    pub preferences: Vec<MetricPreference>,
    /// Figure 1 data.
    pub geo: GeoBreakdown,
    /// Figure 2 data.
    pub asmatrix: AsMatrix,
    /// Traffic-locality / network-friendliness summary (extension
    /// metric for the next-generation experiment).
    pub friendliness: Friendliness,
    /// Hop-count distribution of the contributors (§III-B: the median
    /// justifies the fixed threshold).
    pub hop_distribution: HopDistribution,
    /// Hop threshold used by the HOP partition.
    pub hop_threshold: u8,
    /// Total packets across all probes.
    pub total_packets: usize,
    /// Total bytes across all probes.
    pub total_bytes: u64,
}

/// Runs the complete pipeline on one experiment's traces.
///
/// `highbw_probes` is Table I knowledge: which probes sit on institution
/// LANs (needed for Figure 2's restriction to high-bandwidth probes).
///
/// ```no_run
/// use netaware_analysis::{analyze, AnalysisConfig};
/// # fn load_traces() -> netaware_trace::TraceSet { unimplemented!() }
/// # fn load_registry() -> netaware_net::GeoRegistry { unimplemented!() }
/// let traces = load_traces();
/// let registry = load_registry();
/// let analysis = analyze(&traces, &registry, &AnalysisConfig::paper(),
///                        &traces.probe_set());
/// let bw = analysis.preference("BW").unwrap();
/// println!("{:.1}% of received bytes come from high-bandwidth peers",
///          bw.download_all.bytes_pct);
/// ```
pub fn analyze(
    set: &netaware_trace::TraceSet,
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    highbw_probes: &BTreeSet<Ip>,
) -> ExperimentAnalysis {
    analyze_with_obs(set, registry, cfg, highbw_probes, &Obs::default())
}

/// [`analyze`] with observability: the parallel sweep and the sequential
/// reduction run under `analysis.sweep` / `analysis.assemble` spans,
/// `analysis.*` metrics are updated, and one `pass.flow` event per probe
/// (emitted sequentially in trace order, so the event log stays
/// deterministic) reports that probe's sweep output.
pub fn analyze_with_obs(
    set: &netaware_trace::TraceSet,
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    highbw_probes: &BTreeSet<Ip>,
    obs: &Obs,
) -> ExperimentAnalysis {
    let outs: Vec<ProbeOutput> = {
        let _sweep = obs.span("analysis.sweep");
        let psweep = obs.pspan("analysis.sweep");
        let outs: Vec<ProbeOutput> = set
            .traces
            .par_iter()
            .map(|t| {
                let mut pass = ProbePass::new(t.probe, set.duration_us, cfg);
                for rec in t.records() {
                    pass.on_record(rec);
                }
                pass.finish()
            })
            .collect();
        psweep.add_records(outs.iter().map(|o| o.packets as u64).sum());
        psweep.add_bytes(outs.iter().map(|o| o.bytes).sum());
        outs
    };
    assemble(
        &set.app,
        set.duration_us,
        set.probe_set(),
        outs,
        registry,
        cfg,
        highbw_probes,
        obs,
    )
}

/// Runs the complete pipeline straight off an on-disk corpus directory
/// (as written by [`netaware_trace::TraceSet::write_dir`] or a
/// [`netaware_trace::CorpusSink`]), streaming each probe's records
/// exactly once — no `TraceSet` is ever materialised, so memory stays
/// bounded by the per-probe accumulators regardless of corpus size.
///
/// Probes stream in parallel; per-probe outputs reduce sequentially in
/// manifest (trace) order, so the result is byte-identical to
/// [`analyze`] on the same corpus. Fails with a typed [`TraceError`] on
/// truncated/corrupt/misordered probe files, on a bad manifest, or when
/// the streamed packet total disagrees with the manifest.
pub fn analyze_corpus(
    dir: &Path,
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    highbw_probes: &BTreeSet<Ip>,
) -> Result<ExperimentAnalysis, TraceError> {
    analyze_corpus_with_obs(dir, registry, cfg, highbw_probes, &Obs::default())
}

/// [`analyze_corpus`] with observability — same instrumentation as
/// [`analyze_with_obs`], plus `stream.error` events from the underlying
/// [`CorpusStream`] when a probe file fails to stream.
pub fn analyze_corpus_with_obs(
    dir: &Path,
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    highbw_probes: &BTreeSet<Ip>,
    obs: &Obs,
) -> Result<ExperimentAnalysis, TraceError> {
    let corpus = CorpusStream::open_with(dir, obs.clone())?;
    let duration_us = corpus.duration_us();
    let streamed: Vec<Result<ProbeOutput, TraceError>> = {
        let _sweep = obs.span("analysis.sweep");
        let psweep = obs.pspan("analysis.sweep");
        let streamed: Vec<Result<ProbeOutput, TraceError>> = corpus
            .probes()
            .par_iter()
            .map(|&probe| {
                let mut pass = ProbePass::new(probe, duration_us, cfg);
                for rec in corpus.open_probe(probe)? {
                    pass.on_record(&rec?);
                }
                Ok(pass.finish())
            })
            .collect();
        let done: Vec<&ProbeOutput> = streamed.iter().filter_map(|r| r.as_ref().ok()).collect();
        psweep.add_records(done.iter().map(|o| o.packets as u64).sum());
        psweep.add_bytes(done.iter().map(|o| o.bytes).sum());
        streamed
    };
    let mut outs = Vec::with_capacity(streamed.len());
    for o in streamed {
        outs.push(o?);
    }
    let total: usize = outs.iter().map(|o| o.packets).sum();
    if total != corpus.total_packets() {
        return Err(TraceError::Truncated {
            expected: corpus.total_packets() as u64,
            got: total as u64,
        });
    }
    let probe_set: BTreeSet<Ip> = corpus.probes().iter().copied().collect();
    Ok(assemble(
        corpus.app(),
        duration_us,
        probe_set,
        outs,
        registry,
        cfg,
        highbw_probes,
        obs,
    ))
}

/// Everything one probe's single sweep produces: its flow table, its
/// windowed rates, and its raw packet/byte totals (which count *every*
/// captured record, including defensive foreign packets, to match
/// `TraceSet::total_packets`).
struct ProbeOutput {
    flows: ProbeFlows,
    rates: ProbeRates,
    packets: usize,
    bytes: u64,
}

/// The composite per-probe pass behind both drivers.
struct ProbePass {
    flow: FlowPass,
    rate: RatePass,
    packets: usize,
    bytes: u64,
}

impl ProbePass {
    fn new(probe: Ip, duration_us: u64, cfg: &AnalysisConfig) -> Self {
        ProbePass {
            flow: FlowPass::new(probe, cfg),
            rate: RatePass::new(probe, duration_us, cfg),
            packets: 0,
            bytes: 0,
        }
    }
}

impl AnalysisPass for ProbePass {
    type Output = ProbeOutput;

    fn on_record(&mut self, rec: &PacketRecord) {
        self.flow.on_record(rec);
        self.rate.on_record(rec);
        self.packets += 1;
        self.bytes += rec.size as u64;
    }

    fn finish(self) -> ProbeOutput {
        ProbeOutput {
            flows: self.flow.finish(),
            rates: self.rate.finish(),
            packets: self.packets,
            bytes: self.bytes,
        }
    }
}

/// Sequential, trace-ordered reduction shared by both drivers.
///
/// Per-probe `pass.flow` events are emitted from this sequential loop —
/// never from the parallel sweep — so the event log order is the trace
/// order, independent of rayon scheduling.
#[allow(clippy::too_many_arguments)]
fn assemble(
    app: &str,
    duration_us: u64,
    probe_set: BTreeSet<Ip>,
    outs: Vec<ProbeOutput>,
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    highbw_probes: &BTreeSet<Ip>,
    obs: &Obs,
) -> ExperimentAnalysis {
    let _assemble = obs.span("analysis.assemble");
    let passemble = obs.pspan("analysis.assemble");
    let records_swept = obs.counter("analysis.records_swept");
    let probes_analyzed = obs.counter("analysis.probes_analyzed");
    let flows_per_probe = obs.histogram("analysis.flows_per_probe", 4096);
    let horizon = SimTime::from_us(duration_us);
    let mut pfs = Vec::with_capacity(outs.len());
    let mut rates = Vec::with_capacity(outs.len());
    let mut total_packets = 0usize;
    let mut total_bytes = 0u64;
    for o in outs {
        records_swept.add(o.packets as u64);
        probes_analyzed.inc();
        flows_per_probe.record(o.flows.peers_seen());
        netaware_obs::event!(
            obs,
            Level::Debug,
            "pass.flow",
            horizon,
            "probe" = o.flows.probe.to_string(),
            "flows" = o.flows.peers_seen(),
            "packets" = o.packets,
            "bytes" = o.bytes,
        );
        total_packets += o.packets;
        total_bytes += o.bytes;
        pfs.push(o.flows);
        rates.push(o.rates);
    }
    let hop_thr = hop_threshold(&pfs, cfg);
    obs.gauge("analysis.hop_threshold").set(hop_thr as i64);
    let geo = geo_breakdown(&pfs, registry);
    obs.gauge("analysis.peers_observed")
        .set(geo.total_peers as i64);
    passemble.add_records(total_packets as u64);
    passemble.add_bytes(total_bytes);
    ExperimentAnalysis {
        app: app.to_string(),
        summary: summarize_with_rates(app, &rates, &pfs, cfg),
        selfbias: self_bias(&pfs, cfg, &probe_set),
        preferences: all_preferences(&pfs, registry, cfg, hop_thr, &probe_set),
        geo,
        asmatrix: as_matrix(&pfs, registry, highbw_probes),
        friendliness: friendliness(&pfs, registry, cfg),
        hop_distribution: hop_distribution(&pfs, cfg, hop_thr),
        hop_threshold: hop_thr,
        total_packets,
        total_bytes,
    }
}

impl ExperimentAnalysis {
    /// The Table IV block row for a given metric name.
    pub fn preference(&self, metric: &str) -> Option<&MetricPreference> {
        self.preferences.iter().find(|m| m.metric == metric)
    }

    /// Serialises to pretty JSON (for EXPERIMENTS.md artifacts).
    pub fn to_json(&self) -> String {
        // netaware-lint: allow(PA01) value-tree serialisation of an in-memory struct cannot fail
        serde_json::to_string_pretty(self).expect("analysis serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Prefix};
    use netaware_trace::{PacketRecord, PayloadKind, ProbeTrace, TraceSet};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    fn synthetic_set() -> TraceSet {
        let probe = Ip::from_octets(130, 192, 1, 1);
        let fast = Ip::from_octets(58, 0, 0, 1);
        let slow = Ip::from_octets(58, 0, 0, 2);
        let mut t = ProbeTrace::new(probe);
        // Fast remote: 60 chunks of 20 packets with 100 µs gaps.
        for c in 0..60u64 {
            for k in 0..20u64 {
                t.push(PacketRecord {
                    ts_us: c * 500_000 + k * 100,
                    src: fast,
                    dst: probe,
                    sport: 1,
                    dport: 2,
                    size: 1250,
                    ttl: 109,
                    kind: PayloadKind::Video,
                });
            }
        }
        // Slow remote: 3 chunks with 20 ms gaps.
        for c in 0..3u64 {
            for k in 0..20u64 {
                t.push(PacketRecord {
                    ts_us: 1_000 + c * 2_000_000 + k * 20_000,
                    src: slow,
                    dst: probe,
                    sport: 1,
                    dport: 2,
                    size: 1250,
                    ttl: 105,
                    kind: PayloadKind::Video,
                });
            }
        }
        let mut set = TraceSet::new("TestApp", 30_000_000);
        set.add(t);
        set.finalize();
        set
    }

    #[test]
    fn end_to_end_pipeline() {
        let set = synthetic_set();
        let cfg = AnalysisConfig::default();
        let highbw: BTreeSet<Ip> = set.probe_set();
        let a = analyze(&set, &reg(), &cfg, &highbw);
        assert_eq!(a.app, "TestApp");
        assert_eq!(a.hop_threshold, 19);
        assert_eq!(a.total_packets, 60 * 20 + 3 * 20);
        // Both remotes are download contributors; only the fast one is
        // high-bw: P_D = 50%, B_D ≈ 95%.
        let bw = a.preference("BW").unwrap();
        assert!((bw.download_all.peers_pct - 50.0).abs() < 1e-9);
        assert!(bw.download_all.bytes_pct > 90.0);
        // All traffic came from CN: geo CN RX share 100%.
        let cn = a.geo.rows.iter().find(|r| r.label == "CN").unwrap();
        assert!((cn.rx_pct - 100.0).abs() < 1e-9);
        // JSON round-trip sanity.
        let js = a.to_json();
        assert!(js.contains("\"app\""));
        let back: ExperimentAnalysis = serde_json::from_str(&js).unwrap();
        assert_eq!(back.total_packets, a.total_packets);
    }

    #[test]
    fn preference_lookup_by_name() {
        let set = synthetic_set();
        let cfg = AnalysisConfig::default();
        let a = analyze(&set, &reg(), &cfg, &BTreeSet::new());
        assert!(a.preference("BW").is_some());
        assert!(a.preference("HOP").is_some());
        assert!(a.preference("XYZ").is_none());
    }
}

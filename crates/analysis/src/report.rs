//! One-call experiment analysis.

use crate::asmatrix::{as_matrix, AsMatrix};
use crate::flows::{aggregate, ProbeFlows};
use crate::geo::{geo_breakdown, GeoBreakdown};
use crate::heuristics::AnalysisConfig;
use crate::hop::hop_threshold;
use crate::hopdist::{hop_distribution, HopDistribution};
use crate::netfriend::{friendliness, Friendliness};
use crate::preference::{all_preferences, MetricPreference};
use crate::selfbias::{self_bias, SelfBias};
use crate::summary::{summarize, AppSummary};
use netaware_net::{GeoRegistry, Ip};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Everything the paper reports about one experiment, computed from its
/// traces alone.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentAnalysis {
    /// Application under test.
    pub app: String,
    /// Table II row.
    pub summary: AppSummary,
    /// Table III row.
    pub selfbias: SelfBias,
    /// Table IV block (five metric rows).
    pub preferences: Vec<MetricPreference>,
    /// Figure 1 data.
    pub geo: GeoBreakdown,
    /// Figure 2 data.
    pub asmatrix: AsMatrix,
    /// Traffic-locality / network-friendliness summary (extension
    /// metric for the next-generation experiment).
    pub friendliness: Friendliness,
    /// Hop-count distribution of the contributors (§III-B: the median
    /// justifies the fixed threshold).
    pub hop_distribution: HopDistribution,
    /// Hop threshold used by the HOP partition.
    pub hop_threshold: u8,
    /// Total packets across all probes.
    pub total_packets: usize,
    /// Total bytes across all probes.
    pub total_bytes: u64,
}

/// Runs the complete pipeline on one experiment's traces.
///
/// `highbw_probes` is Table I knowledge: which probes sit on institution
/// LANs (needed for Figure 2's restriction to high-bandwidth probes).
///
/// ```no_run
/// use netaware_analysis::{analyze, AnalysisConfig};
/// # fn load_traces() -> netaware_trace::TraceSet { unimplemented!() }
/// # fn load_registry() -> netaware_net::GeoRegistry { unimplemented!() }
/// let traces = load_traces();
/// let registry = load_registry();
/// let analysis = analyze(&traces, &registry, &AnalysisConfig::paper(),
///                        &traces.probe_set());
/// let bw = analysis.preference("BW").unwrap();
/// println!("{:.1}% of received bytes come from high-bandwidth peers",
///          bw.download_all.bytes_pct);
/// ```
pub fn analyze(
    set: &netaware_trace::TraceSet,
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    highbw_probes: &BTreeSet<Ip>,
) -> ExperimentAnalysis {
    let pfs: Vec<ProbeFlows> = aggregate(set, cfg);
    let probe_set = set.probe_set();
    let hop_thr = hop_threshold(&pfs, cfg);
    ExperimentAnalysis {
        app: set.app.clone(),
        summary: summarize(set, &pfs, cfg),
        selfbias: self_bias(&pfs, cfg, &probe_set),
        preferences: all_preferences(&pfs, registry, cfg, hop_thr, &probe_set),
        geo: geo_breakdown(&pfs, registry),
        asmatrix: as_matrix(&pfs, registry, highbw_probes),
        friendliness: friendliness(&pfs, registry, cfg),
        hop_distribution: hop_distribution(&pfs, cfg, hop_thr),
        hop_threshold: hop_thr,
        total_packets: set.total_packets(),
        total_bytes: set.total_bytes(),
    }
}

impl ExperimentAnalysis {
    /// The Table IV block row for a given metric name.
    pub fn preference(&self, metric: &str) -> Option<&MetricPreference> {
        self.preferences.iter().find(|m| m.metric == metric)
    }

    /// Serialises to pretty JSON (for EXPERIMENTS.md artifacts).
    pub fn to_json(&self) -> String {
        // netaware-lint: allow(PA01) value-tree serialisation of an in-memory struct cannot fail
        serde_json::to_string_pretty(self).expect("analysis serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Prefix};
    use netaware_trace::{PacketRecord, PayloadKind, ProbeTrace, TraceSet};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    fn synthetic_set() -> TraceSet {
        let probe = Ip::from_octets(130, 192, 1, 1);
        let fast = Ip::from_octets(58, 0, 0, 1);
        let slow = Ip::from_octets(58, 0, 0, 2);
        let mut t = ProbeTrace::new(probe);
        // Fast remote: 60 chunks of 20 packets with 100 µs gaps.
        for c in 0..60u64 {
            for k in 0..20u64 {
                t.push(PacketRecord {
                    ts_us: c * 500_000 + k * 100,
                    src: fast,
                    dst: probe,
                    sport: 1,
                    dport: 2,
                    size: 1250,
                    ttl: 109,
                    kind: PayloadKind::Video,
                });
            }
        }
        // Slow remote: 3 chunks with 20 ms gaps.
        for c in 0..3u64 {
            for k in 0..20u64 {
                t.push(PacketRecord {
                    ts_us: 1_000 + c * 2_000_000 + k * 20_000,
                    src: slow,
                    dst: probe,
                    sport: 1,
                    dport: 2,
                    size: 1250,
                    ttl: 105,
                    kind: PayloadKind::Video,
                });
            }
        }
        let mut set = TraceSet::new("TestApp", 30_000_000);
        set.add(t);
        set.finalize();
        set
    }

    #[test]
    fn end_to_end_pipeline() {
        let set = synthetic_set();
        let cfg = AnalysisConfig::default();
        let highbw: BTreeSet<Ip> = set.probe_set();
        let a = analyze(&set, &reg(), &cfg, &highbw);
        assert_eq!(a.app, "TestApp");
        assert_eq!(a.hop_threshold, 19);
        assert_eq!(a.total_packets, 60 * 20 + 3 * 20);
        // Both remotes are download contributors; only the fast one is
        // high-bw: P_D = 50%, B_D ≈ 95%.
        let bw = a.preference("BW").unwrap();
        assert!((bw.download_all.peers_pct - 50.0).abs() < 1e-9);
        assert!(bw.download_all.bytes_pct > 90.0);
        // All traffic came from CN: geo CN RX share 100%.
        let cn = a.geo.rows.iter().find(|r| r.label == "CN").unwrap();
        assert!((cn.rx_pct - 100.0).abs() < 1e-9);
        // JSON round-trip sanity.
        let js = a.to_json();
        assert!(js.contains("\"app\""));
        let back: ExperimentAnalysis = serde_json::from_str(&js).unwrap();
        assert_eq!(back.total_packets, a.total_packets);
    }

    #[test]
    fn preference_lookup_by_name() {
        let set = synthetic_set();
        let cfg = AnalysisConfig::default();
        let a = analyze(&set, &reg(), &cfg, &BTreeSet::new());
        assert!(a.preference("BW").is_some());
        assert!(a.preference("HOP").is_some());
        assert!(a.preference("XYZ").is_none());
    }
}

//! Paper-style text rendering of the reproduced tables and figures.

use crate::asmatrix::AsMatrix;
use crate::geo::GeoBreakdown;
use crate::preference::MetricPreference;
use crate::selfbias::SelfBias;
use crate::summary::AppSummary;
use std::fmt::Write;

fn cell(v: f64, width: usize, decimals: usize) -> String {
    if v.is_nan() {
        format!("{:>width$}", "-", width = width)
    } else {
        format!("{:>width$.decimals$}", v, width = width, decimals = decimals)
    }
}

/// Renders Table II.
pub fn render_table2(rows: &[AppSummary]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE II — stream rates, peers and contributors (mean / max per probe)"
    );
    let _ = writeln!(
        s,
        "{:<9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "App",
        "RX mean",
        "RX max",
        "TX mean",
        "TX max",
        "Peers",
        "Pmax",
        "cRX",
        "cRXmax",
        "cTX",
        "cTXmax"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<9} {} {} {} {} {} {} {} {} {} {}",
            r.app,
            cell(r.rx_kbps.mean, 9, 0),
            cell(r.rx_kbps.max, 9, 0),
            cell(r.tx_kbps.mean, 9, 0),
            cell(r.tx_kbps.max, 9, 0),
            cell(r.peers.mean, 9, 0),
            cell(r.peers.max, 9, 0),
            cell(r.contrib_rx.mean, 9, 0),
            cell(r.contrib_rx.max, 9, 0),
            cell(r.contrib_tx.mean, 9, 0),
            cell(r.contrib_tx.max, 9, 0),
        );
    }
    s
}

/// Renders Table III.
pub fn render_table3(rows: &[(String, SelfBias)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE III — NAPA-WINE self-induced bias");
    let _ = writeln!(
        s,
        "{:<9} {:>12} {:>12} {:>12} {:>12}",
        "App", "cPeer%", "cBytes%", "aPeer%", "aBytes%"
    );
    for (app, b) in rows {
        let _ = writeln!(
            s,
            "{:<9} {} {} {} {}",
            app,
            cell(b.contrib_peer_pct, 12, 2),
            cell(b.contrib_bytes_pct, 12, 2),
            cell(b.all_peer_pct, 12, 2),
            cell(b.all_bytes_pct, 12, 2),
        );
    }
    s
}

/// Renders Table IV (one block of metric rows per application).
pub fn render_table4(blocks: &[(String, Vec<MetricPreference>)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE IV — network awareness as peer-wise and byte-wise bias");
    let _ = writeln!(
        s,
        "{:<5} {:<9} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
        "Net", "App", "B'D%", "P'D%", "BD%", "PD%", "B'U%", "P'U%", "BU%", "PU%"
    );
    // Group by metric across apps, like the paper.
    let metric_names: Vec<String> = blocks
        .first()
        .map(|(_, b)| b.iter().map(|m| m.metric.clone()).collect())
        .unwrap_or_default();
    for metric in &metric_names {
        for (app, block) in blocks {
            let Some(m) = block.iter().find(|m| &m.metric == metric) else {
                continue;
            };
            let _ = writeln!(
                s,
                "{:<5} {:<9} | {} {} {} {} | {} {} {} {}",
                m.metric,
                app,
                cell(m.download_nonw.bytes_pct, 7, 1),
                cell(m.download_nonw.peers_pct, 7, 1),
                cell(m.download_all.bytes_pct, 7, 1),
                cell(m.download_all.peers_pct, 7, 1),
                cell(m.upload_nonw.bytes_pct, 7, 1),
                cell(m.upload_nonw.peers_pct, 7, 1),
                cell(m.upload_all.bytes_pct, 7, 1),
                cell(m.upload_all.peers_pct, 7, 1),
            );
        }
    }
    s
}

/// Renders Figure 1 as a table of shares.
pub fn render_fig1(rows: &[(String, GeoBreakdown)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "FIGURE 1 — geographical breakdown (% peers / % RX / % TX)");
    for (app, g) in rows {
        let _ = writeln!(s, "{app} (total observed peers: {})", g.total_peers);
        let _ = writeln!(s, "  {:<4} {:>8} {:>8} {:>8}", "CC", "#%", "RX%", "TX%");
        for r in &g.rows {
            let _ = writeln!(
                s,
                "  {:<4} {} {} {}",
                r.label,
                cell(r.peers_pct, 8, 1),
                cell(r.rx_pct, 8, 1),
                cell(r.tx_pct, 8, 1),
            );
        }
    }
    s
}

/// Renders Figure 2 matrices and R ratios.
pub fn render_fig2(rows: &[(String, AsMatrix)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIGURE 2 — mean exchanged bytes between high-bw probes, by AS pair"
    );
    for (app, m) in rows {
        let _ = writeln!(s, "{app}: R = {}", cell(m.r_ratio, 0, 2).trim());
        let _ = write!(s, "  {:>8}", "from\\to");
        for a in &m.ases {
            let _ = write!(s, " {:>10}", format!("AS{a}"));
        }
        let _ = writeln!(s);
        for (i, a) in m.ases.iter().enumerate() {
            let _ = write!(s, "  {:>8}", format!("AS{a}"));
            for j in 0..m.ases.len() {
                let _ = write!(s, " {:>10.0}", m.avg_bytes[i][j]);
            }
            let _ = writeln!(s);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::PrefValue;
    use crate::summary::MeanMaxVal;

    #[test]
    fn nan_renders_as_dash() {
        assert_eq!(cell(f64::NAN, 5, 1), "    -");
        assert_eq!(cell(12.345, 7, 1), "   12.3");
    }

    #[test]
    fn table2_contains_app_and_numbers() {
        let rows = vec![AppSummary {
            app: "PPLive".into(),
            rx_kbps: MeanMaxVal { mean: 552.0, max: 934.0 },
            tx_kbps: MeanMaxVal { mean: 3384.0, max: 11818.0 },
            peers: MeanMaxVal { mean: 23101.0, max: 39797.0 },
            contrib_rx: MeanMaxVal { mean: 391.0, max: 841.0 },
            contrib_tx: MeanMaxVal { mean: 1025.0, max: 2570.0 },
        }];
        let out = render_table2(&rows);
        assert!(out.contains("PPLive"));
        assert!(out.contains("552"));
        assert!(out.contains("11818"));
    }

    #[test]
    fn table4_groups_metric_rows() {
        let block = vec![MetricPreference {
            metric: "BW".into(),
            download_nonw: PrefValue { peers_pct: 85.9, bytes_pct: 95.9 },
            download_all: PrefValue { peers_pct: 86.1, bytes_pct: 95.6 },
            upload_nonw: PrefValue::nan(),
            upload_all: PrefValue::nan(),
        }];
        let out = render_table4(&[("PPLive".into(), block)]);
        assert!(out.contains("BW"));
        assert!(out.contains("95.9"));
        assert!(out.contains("-"), "unmeasurable cells must render as dashes");
    }

    #[test]
    fn fig_renderers_do_not_panic_on_empty() {
        assert!(render_fig1(&[]).contains("FIGURE 1"));
        assert!(render_fig2(&[]).contains("FIGURE 2"));
        assert!(render_table3(&[]).contains("TABLE III"));
    }
}

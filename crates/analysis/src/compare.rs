//! Structured comparison of two experiment analyses.
//!
//! Used by the ablation tooling (native vs uniform-selection) and by
//! cross-application comparisons: for each metric it reports the
//! byte-wise preference delta and a qualitative verdict, so "the bias
//! collapsed" is a computed statement rather than an eyeballed one.

use crate::report::ExperimentAnalysis;
use serde::{Deserialize, Serialize};

/// Verdict on how a preference changed between two runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BiasChange {
    /// The preference dropped by more than the collapse threshold.
    Collapsed,
    /// Changed by less than the noise threshold.
    Unchanged,
    /// Dropped noticeably but not to baseline.
    Reduced,
    /// Grew.
    Increased,
    /// Not measurable in one or both runs.
    Unmeasurable,
}

/// One metric's comparison row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name ("BW", "AS", …).
    pub metric: String,
    /// Byte-wise download preference in `a`, %.
    pub a_bytes_pct: f64,
    /// Byte-wise download preference in `b`, %.
    pub b_bytes_pct: f64,
    /// `a − b`, percentage points.
    pub delta_points: f64,
    /// Qualitative verdict for `b` relative to `a`.
    pub change: BiasChange,
}

/// Full comparison of two analyses (download side, all contributors).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Comparison {
    /// First run (e.g. native policy).
    pub a: String,
    /// Second run (e.g. uniform control).
    pub b: String,
    /// Per-metric rows in Table IV order.
    pub rows: Vec<MetricDelta>,
}

/// Points of drop below which a change counts as noise.
pub const NOISE_POINTS: f64 = 3.0;
/// Fraction of the original bias that must vanish to call it collapsed.
pub const COLLAPSE_FRACTION: f64 = 0.6;

/// Compares the download-side byte preferences of two analyses.
pub fn compare(a: &ExperimentAnalysis, b: &ExperimentAnalysis) -> Comparison {
    let rows = a
        .preferences
        .iter()
        .map(|ma| {
            let mb = b.preference(&ma.metric);
            let av = ma.download_all.bytes_pct;
            let bv = mb.map_or(f64::NAN, |m| m.download_all.bytes_pct);
            let change = if av.is_nan() || bv.is_nan() {
                BiasChange::Unmeasurable
            } else {
                let delta = av - bv;
                // "Excess" bias above the 50% coin-flip line for HOP-like
                // metrics, above 0 for set-membership metrics: use the
                // drop relative to a as the collapse test.
                if delta.abs() <= NOISE_POINTS {
                    BiasChange::Unchanged
                } else if delta > 0.0 && delta >= COLLAPSE_FRACTION * av {
                    BiasChange::Collapsed
                } else if delta > 0.0 {
                    BiasChange::Reduced
                } else {
                    BiasChange::Increased
                }
            };
            MetricDelta {
                metric: ma.metric.clone(),
                a_bytes_pct: av,
                b_bytes_pct: bv,
                delta_points: av - bv,
                change,
            }
        })
        .collect();
    Comparison {
        a: a.app.clone(),
        b: b.app.clone(),
        rows,
    }
}

impl Comparison {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{} vs {} (B_D%, download, all contributors)", self.a, self.b);
        let _ = writeln!(
            s,
            "  {:<5} {:>8} {:>8} {delta:>8}  verdict",
            "Net",
            self.a_short(),
            self.b_short(),
            delta = "Δ",
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "  {:<5} {:>8.1} {:>8.1} {:>+8.1}  {:?}",
                r.metric, r.a_bytes_pct, r.b_bytes_pct, r.delta_points, r.change
            );
        }
        s
    }

    fn a_short(&self) -> &str {
        if self.a.len() > 8 { &self.a[..8] } else { &self.a }
    }
    fn b_short(&self) -> &str {
        if self.b.len() > 8 { &self.b[..8] } else { &self.b }
    }

    /// The row for a metric.
    pub fn row(&self, metric: &str) -> Option<&MetricDelta> {
        self.rows.iter().find(|r| r.metric == metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asmatrix::AsMatrix;
    use crate::geo::GeoBreakdown;
    use crate::hopdist::HopDistribution;
    use crate::netfriend::Friendliness;
    use crate::preference::{MetricPreference, PrefValue};
    use crate::selfbias::SelfBias;
    use crate::summary::{AppSummary, MeanMaxVal};

    fn analysis_with(app: &str, bw_bytes: f64) -> ExperimentAnalysis {
        let pref = |pct: f64| MetricPreference {
            metric: "BW".into(),
            download_nonw: PrefValue { peers_pct: pct, bytes_pct: pct },
            download_all: PrefValue { peers_pct: pct, bytes_pct: pct },
            upload_nonw: PrefValue::nan(),
            upload_all: PrefValue::nan(),
        };
        ExperimentAnalysis {
            app: app.into(),
            summary: AppSummary {
                app: app.into(),
                rx_kbps: MeanMaxVal::default(),
                tx_kbps: MeanMaxVal::default(),
                peers: MeanMaxVal::default(),
                contrib_rx: MeanMaxVal::default(),
                contrib_tx: MeanMaxVal::default(),
            },
            selfbias: SelfBias::default(),
            preferences: vec![pref(bw_bytes)],
            geo: GeoBreakdown::default(),
            asmatrix: AsMatrix::default(),
            friendliness: Friendliness::default(),
            hop_distribution: HopDistribution::default(),
            hop_threshold: 19,
            total_packets: 0,
            total_bytes: 0,
        }
    }

    #[test]
    fn collapse_detected() {
        let native = analysis_with("SopCast", 98.0);
        let uniform = analysis_with("SopCast-random", 39.0);
        let c = compare(&native, &uniform);
        let r = c.row("BW").unwrap();
        assert_eq!(r.change, BiasChange::Collapsed);
        assert!((r.delta_points - 59.0).abs() < 1e-9);
        assert!(c.render().contains("Collapsed"));
    }

    #[test]
    fn noise_is_unchanged() {
        let a = analysis_with("A", 50.0);
        let b = analysis_with("B", 48.5);
        assert_eq!(compare(&a, &b).row("BW").unwrap().change, BiasChange::Unchanged);
    }

    #[test]
    fn partial_drop_is_reduced_and_growth_is_increase() {
        let a = analysis_with("A", 50.0);
        let b = analysis_with("B", 35.0);
        assert_eq!(compare(&a, &b).row("BW").unwrap().change, BiasChange::Reduced);
        let c = analysis_with("C", 70.0);
        assert_eq!(compare(&a, &c).row("BW").unwrap().change, BiasChange::Increased);
    }

    #[test]
    fn missing_metric_is_unmeasurable() {
        let a = analysis_with("A", f64::NAN);
        let b = analysis_with("B", 10.0);
        assert_eq!(
            compare(&a, &b).row("BW").unwrap().change,
            BiasChange::Unmeasurable
        );
    }
}

//! Hop-count distributions.
//!
//! §III-B of the paper justifies its fixed HOP threshold by measuring
//! the distance distribution: "the actual HOP median ranges from 18 to
//! 20 depending on the application, we use a fixed threshold of 19 hops
//! for all applications […] approximately 50% of the peers falls in the
//! preferential class". This module reports that distribution — median,
//! quartiles, the share of measurable flows, and a rendered CDF — so
//! the threshold choice can be checked against the data instead of
//! assumed.

use crate::contributors::is_contributor;
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::hop::flow_hops;
use netaware_sim::Histogram;
use serde::{Deserialize, Serialize};

/// Summary of the hop-count distribution over contributor flows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HopDistribution {
    /// Flows with a measurable hop count.
    pub measurable: u64,
    /// Flows without (TX-only, or non-Windows TTLs).
    pub unmeasurable: u64,
    /// First quartile.
    pub q1: Option<u8>,
    /// Median — the paper's threshold basis.
    pub median: Option<u8>,
    /// Third quartile.
    pub q3: Option<u8>,
    /// Share of measurable flows strictly below the given threshold
    /// (should be ≈50 % when the threshold is the median).
    pub below_threshold_pct: f64,
    /// Raw per-hop counts (index = hops).
    pub counts: Vec<u64>,
}

/// Computes the hop distribution of an experiment's contributors.
pub fn hop_distribution(
    pfs: &[ProbeFlows],
    cfg: &AnalysisConfig,
    threshold: u8,
) -> HopDistribution {
    let mut h = Histogram::new(65);
    let mut unmeasurable = 0u64;
    for pf in pfs {
        for f in pf.flows.values() {
            if !is_contributor(f, cfg) {
                continue;
            }
            match flow_hops(f.rx_ttl) {
                Some(hops) => h.push(hops as usize),
                None => unmeasurable += 1,
            }
        }
    }
    let below: u64 = (0..threshold as usize).map(|i| h.count(i)).sum();
    HopDistribution {
        measurable: h.total(),
        unmeasurable,
        q1: h.quantile(0.25).map(|v| v as u8),
        median: h.quantile(0.5).map(|v| v as u8),
        q3: h.quantile(0.75).map(|v| v as u8),
        below_threshold_pct: if h.total() == 0 {
            0.0
        } else {
            100.0 * below as f64 / h.total() as f64
        },
        counts: (0..65).map(|i| h.count(i)).collect(),
    }
}

impl HopDistribution {
    /// Renders a terminal CDF sparkline plus the quartiles.
    pub fn render(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{label}: {} measurable flows ({} unmeasurable), Q1/median/Q3 = {}/{}/{}, \
             {:.1}% below threshold",
            self.measurable,
            self.unmeasurable,
            self.q1.map_or("-".into(), |v| v.to_string()),
            self.median.map_or("-".into(), |v| v.to_string()),
            self.q3.map_or("-".into(), |v| v.to_string()),
            self.below_threshold_pct,
        );
        if self.measurable > 0 {
            const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
            let hist: String = self
                .counts
                .iter()
                .take(40)
                .map(|&c| BARS[(c * 7 / max) as usize])
                .collect();
            let _ = writeln!(s, "  hops 0..40: {hist}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::Ip;

    fn pf_with_hops(hops: &[u8]) -> Vec<ProbeFlows> {
        let mut pf = ProbeFlows::default();
        for (i, &h) in hops.iter().enumerate() {
            pf.flows.insert(
                Ip(i as u32 + 1),
                FlowStats {
                    rx_ttl: Some(128 - h),
                    video_bytes_rx: 30_000,
                    video_pkts_rx: 24,
                    ..Default::default()
                },
            );
        }
        vec![pf]
    }

    #[test]
    fn quartiles_and_median() {
        let d = hop_distribution(
            &pf_with_hops(&[10, 14, 18, 19, 20, 22, 30]),
            &AnalysisConfig::default(),
            19,
        );
        assert_eq!(d.measurable, 7);
        assert_eq!(d.median, Some(19));
        assert_eq!(d.q1, Some(14));
        assert_eq!(d.q3, Some(22));
        // 10,14,18 below 19 → 3/7.
        assert!((d.below_threshold_pct - 300.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn unmeasurable_counted_separately() {
        let mut pfs = pf_with_hops(&[18, 20]);
        pfs[0].flows.insert(
            Ip(99),
            FlowStats {
                rx_ttl: None,
                video_bytes_rx: 30_000,
                video_pkts_rx: 24,
                ..Default::default()
            },
        );
        let d = hop_distribution(&pfs, &AnalysisConfig::default(), 19);
        assert_eq!(d.measurable, 2);
        assert_eq!(d.unmeasurable, 1);
    }

    #[test]
    fn non_contributors_ignored() {
        let mut pfs = pf_with_hops(&[18]);
        pfs[0].flows.insert(
            Ip(50),
            FlowStats {
                rx_ttl: Some(110),
                video_bytes_rx: 10, // below the contributor bar
                video_pkts_rx: 1,
                ..Default::default()
            },
        );
        let d = hop_distribution(&pfs, &AnalysisConfig::default(), 19);
        assert_eq!(d.measurable, 1);
    }

    #[test]
    fn render_handles_empty() {
        let d = hop_distribution(&[], &AnalysisConfig::default(), 19);
        let out = d.render("empty");
        assert!(out.contains("0 measurable"));
    }

    #[test]
    fn render_contains_sparkline() {
        let d = hop_distribution(&pf_with_hops(&[5, 19, 19, 30]), &AnalysisConfig::default(), 19);
        let out = d.render("X");
        assert!(out.contains("hops 0..40"));
        assert!(out.contains("median") || out.contains("Q1"));
    }
}

//! Flow-level scatter views (the method of Silverston & Fourmaux,
//! ref. \[12\] of the paper).
//!
//! The closest comparative study before NAPA-WINE characterised P2P-TV
//! systems by "flow-level scatter plots of mean packet size versus flow
//! duration and data rate of the top-10 contributors versus the overall
//! download rate". This module reproduces both views over our traces,
//! letting the two methodologies be compared on the same corpus.

use crate::flows::ProbeFlows;
use serde::{Deserialize, Serialize};

/// One flow's scatter point: the ref. \[12\] axes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlowPoint {
    /// Mean packet size over both directions, bytes.
    pub mean_pkt_size: f64,
    /// Flow duration, seconds.
    pub duration_s: f64,
    /// Mean flow rate over its lifetime, kb/s (both directions).
    pub rate_kbps: f64,
    /// Total bytes.
    pub bytes: u64,
}

/// Scatter points for every flow of the experiment (≥2 packets — a
/// single packet has no duration).
pub fn flow_points(pfs: &[ProbeFlows]) -> Vec<FlowPoint> {
    let mut pts = Vec::new();
    for pf in pfs {
        for f in pf.flows.values() {
            let pkts = f.pkts_rx + f.pkts_tx;
            if pkts < 2 {
                continue;
            }
            let bytes = f.bytes_rx + f.bytes_tx;
            let dur_us = f.last_ts_us.saturating_sub(f.first_ts_us).max(1);
            pts.push(FlowPoint {
                mean_pkt_size: bytes as f64 / pkts as f64,
                duration_s: dur_us as f64 / 1e6,
                rate_kbps: bytes as f64 * 8.0 / dur_us as f64 * 1_000.0,
                bytes,
            });
        }
    }
    pts
}

/// Quartile summary of the scatter cloud, for terminal rendering and
/// cross-application comparison without plotting.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ScatterSummary {
    /// Number of flows summarised.
    pub flows: usize,
    /// Mean-packet-size quartiles (Q1, median, Q3), bytes.
    pub pkt_size_q: [f64; 3],
    /// Duration quartiles, seconds.
    pub duration_q: [f64; 3],
    /// Rate quartiles, kb/s.
    pub rate_q: [f64; 3],
}

fn quartiles(mut xs: Vec<f64>) -> [f64; 3] {
    if xs.is_empty() {
        return [0.0; 3];
    }
    xs.sort_by(f64::total_cmp);
    let at = |q: f64| xs[((q * (xs.len() - 1) as f64).round() as usize).min(xs.len() - 1)];
    [at(0.25), at(0.5), at(0.75)]
}

/// Summarises a scatter cloud into quartiles per axis.
pub fn summarize(points: &[FlowPoint]) -> ScatterSummary {
    ScatterSummary {
        flows: points.len(),
        pkt_size_q: quartiles(points.iter().map(|p| p.mean_pkt_size).collect()),
        duration_q: quartiles(points.iter().map(|p| p.duration_s).collect()),
        rate_q: quartiles(points.iter().map(|p| p.rate_kbps).collect()),
    }
}

/// Ref. \[12\]'s second view: per probe, the share of the download that
/// the top-`k` contributors supply.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TopContributorShare {
    /// Probes measured.
    pub probes: usize,
    /// Mean share of RX bytes supplied by each probe's top-k remotes, %.
    pub mean_share_pct: f64,
    /// Minimum share across probes, %.
    pub min_share_pct: f64,
    /// Maximum share across probes, %.
    pub max_share_pct: f64,
}

/// Computes the top-`k` download concentration.
pub fn top_contributor_share(pfs: &[ProbeFlows], k: usize) -> TopContributorShare {
    let mut shares = Vec::new();
    for pf in pfs {
        let mut rx: Vec<u64> = pf.flows.values().map(|f| f.bytes_rx).collect();
        let total: u64 = rx.iter().sum();
        if total == 0 {
            continue;
        }
        rx.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = rx.iter().take(k).sum();
        shares.push(100.0 * top as f64 / total as f64);
    }
    if shares.is_empty() {
        return TopContributorShare::default();
    }
    TopContributorShare {
        probes: shares.len(),
        mean_share_pct: shares.iter().sum::<f64>() / shares.len() as f64,
        min_share_pct: shares.iter().cloned().fold(f64::MAX, f64::min),
        max_share_pct: shares.iter().cloned().fold(f64::MIN, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::Ip;

    fn flow(remote: u32, bytes_rx: u64, pkts: u64, first: u64, last: u64) -> (Ip, FlowStats) {
        let ip = Ip(remote);
        (
            ip,
            FlowStats {
                probe: Ip(1),
                remote: ip,
                bytes_rx,
                pkts_rx: pkts,
                first_ts_us: first,
                last_ts_us: last,
                ..Default::default()
            },
        )
    }

    fn pf(flows: Vec<(Ip, FlowStats)>) -> Vec<ProbeFlows> {
        let mut p = ProbeFlows {
            probe: Ip(1),
            ..Default::default()
        };
        for (ip, f) in flows {
            p.flows.insert(ip, f);
        }
        vec![p]
    }

    #[test]
    fn points_compute_the_ref12_axes() {
        let pts = flow_points(&pf(vec![flow(100, 10_000, 10, 0, 1_000_000)]));
        assert_eq!(pts.len(), 1);
        let p = pts[0];
        assert!((p.mean_pkt_size - 1_000.0).abs() < 1e-9);
        assert!((p.duration_s - 1.0).abs() < 1e-9);
        assert!((p.rate_kbps - 80.0).abs() < 1e-9);
    }

    #[test]
    fn single_packet_flows_skipped() {
        let pts = flow_points(&pf(vec![flow(100, 100, 1, 0, 0)]));
        assert!(pts.is_empty());
    }

    #[test]
    fn top_share_concentration() {
        // Top-1 of three flows carrying 80/15/5.
        let flows = vec![
            flow(1, 8_000, 8, 0, 10),
            flow(2, 1_500, 2, 0, 10),
            flow(3, 500, 2, 0, 10),
        ];
        let s = top_contributor_share(&pf(flows), 1);
        assert_eq!(s.probes, 1);
        assert!((s.mean_share_pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn top_share_with_k_exceeding_flows() {
        let s = top_contributor_share(&pf(vec![flow(1, 100, 2, 0, 10)]), 10);
        assert!((s.mean_share_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn summary_quartiles() {
        let flows: Vec<(Ip, FlowStats)> = (1..=9u32)
            .map(|i| flow(i, (i as u64) * 1_000, 10, 0, 1_000_000))
            .collect();
        let pts = flow_points(&pf(flows));
        let s = summarize(&pts);
        assert_eq!(s.flows, 9);
        // Mean packet sizes are 100..900 in steps of 100.
        assert!((s.pkt_size_q[1] - 500.0).abs() < 1e-9, "median {}", s.pkt_size_q[1]);
        assert!((s.pkt_size_q[0] - 300.0).abs() < 1e-9);
        assert!((s.pkt_size_q[2] - 700.0).abs() < 1e-9);
        assert!((s.duration_q[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty() {
        let s = summarize(&[]);
        assert_eq!(s.flows, 0);
        assert_eq!(s.pkt_size_q, [0.0; 3]);
    }

    #[test]
    fn empty_input_defaults() {
        assert!(flow_points(&[]).is_empty());
        let s = top_contributor_share(&[], 10);
        assert_eq!(s.probes, 0);
        assert_eq!(s.mean_share_pct, 0.0);
    }
}

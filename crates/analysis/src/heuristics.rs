//! Tunable heuristic constants.
//!
//! The paper's analysis rests on three thresholds; they live in one place
//! so the sensitivity ablation can sweep them.

use serde::{Deserialize, Serialize};

/// Thresholds and switches of the passive analysis.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Packets at least this large count as video payload. Must sit
    /// between the largest signalling datagram and the smallest video
    /// packet (2008-era P2P-TV video packets were near-MTU).
    pub video_size_threshold: u16,
    /// Minimum video bytes moved in a direction for a remote to count as
    /// a contributor in that direction (ref. \[14\]'s conservative
    /// chunk-exchange criterion; about one chunk).
    pub contributor_min_video_bytes: u64,
    /// Minimum video packets backing the byte criterion (guards against
    /// a few stray large packets).
    pub contributor_min_video_pkts: u64,
    /// IPG below which the path is classified high-bandwidth: 1 ms is
    /// the transmission time of a 1250-byte packet at 10 Mb/s.
    pub ipg_high_bw_us: u64,
    /// Fixed hop-median threshold. The paper measures medians of 18–20
    /// across applications and fixes 19 for comparability; `None`
    /// recomputes the median from the data instead.
    pub hop_median_override: Option<u8>,
    /// Windows used for the stream-rate mean/max of Table II, µs.
    pub rate_window_us: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            video_size_threshold: 400,
            contributor_min_video_bytes: 20_000,
            contributor_min_video_pkts: 8,
            ipg_high_bw_us: 1_000,
            hop_median_override: Some(19),
            rate_window_us: 10_000_000,
        }
    }
}

impl AnalysisConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        let c = AnalysisConfig::default();
        assert_eq!(c.ipg_high_bw_us, 1_000);
        assert_eq!(c.hop_median_override, Some(19));
        assert!(c.video_size_threshold >= 400);
        assert!(c.contributor_min_video_bytes >= 10_000);
    }
}

//! TTL-based hop estimation and the median split.
//!
//! "The hop count HOP(e,p) has been evaluated as 128 minus the TTL of
//! received packets […] As threshold to define two classes, we use the
//! median of the distance distribution. Since the actual HOP median
//! ranges from 18 to 20 depending on the application, we use a fixed
//! threshold of 19 hops for all applications."

use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use netaware_net::hops_from_ttl;
use netaware_sim::Histogram;

/// Estimated hops from a flow's received TTL; `None` when the flow is
/// TX-only or the remote does not use the Windows initial TTL.
pub fn flow_hops(rx_ttl: Option<u8>) -> Option<u8> {
    rx_ttl.and_then(hops_from_ttl)
}

/// Hop-count distribution over all contributors of an experiment,
/// weighted one entry per flow.
pub fn hop_histogram<'a>(flows: impl Iterator<Item = &'a crate::flows::FlowStats>) -> Histogram {
    let mut h = Histogram::new(129);
    for f in flows {
        if let Some(hops) = flow_hops(f.rx_ttl) {
            h.push(hops as usize);
        }
    }
    h
}

/// The hop threshold to use: the configured fixed value (the paper's 19)
/// or the measured median.
pub fn hop_threshold(pfs: &[ProbeFlows], cfg: &AnalysisConfig) -> u8 {
    if let Some(t) = cfg.hop_median_override {
        return t;
    }
    let h = hop_histogram(pfs.iter().flat_map(|pf| pf.flows.values()));
    h.quantile(0.5).unwrap_or(19) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::Ip;

    #[test]
    fn hops_from_received_ttl() {
        assert_eq!(flow_hops(Some(109)), Some(19));
        assert_eq!(flow_hops(Some(128)), Some(0));
        assert_eq!(flow_hops(Some(255)), None); // non-Windows stack
        assert_eq!(flow_hops(None), None); // TX-only flow
    }

    fn pf_with_ttls(ttls: &[u8]) -> ProbeFlows {
        let mut pf = ProbeFlows::default();
        for (i, &t) in ttls.iter().enumerate() {
            pf.flows.insert(
                Ip(i as u32 + 1),
                FlowStats {
                    rx_ttl: Some(t),
                    ..Default::default()
                },
            );
        }
        pf
    }

    #[test]
    fn override_wins() {
        let cfg = AnalysisConfig::default();
        let pfs = vec![pf_with_ttls(&[128, 128, 128])];
        assert_eq!(hop_threshold(&pfs, &cfg), 19);
    }

    #[test]
    fn measured_median_when_no_override() {
        let cfg = AnalysisConfig {
            hop_median_override: None,
            ..Default::default()
        };
        // Hops: 8, 18, 20, 22, 30 → median 20.
        let pfs = vec![pf_with_ttls(&[120, 110, 108, 106, 98])];
        assert_eq!(hop_threshold(&pfs, &cfg), 20);
    }

    #[test]
    fn median_of_empty_falls_back_to_19() {
        let cfg = AnalysisConfig {
            hop_median_override: None,
            ..Default::default()
        };
        assert_eq!(hop_threshold(&[], &cfg), 19);
    }

    #[test]
    fn histogram_skips_unmeasurable_flows() {
        let mut pf = pf_with_ttls(&[110, 110]);
        pf.flows.insert(
            Ip(99),
            FlowStats {
                rx_ttl: None,
                ..Default::default()
            },
        );
        let h = hop_histogram(pf.flows.values());
        assert_eq!(h.total(), 2);
    }
}

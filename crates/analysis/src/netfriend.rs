//! Network-friendliness metrics.
//!
//! The paper's conclusion calls for next-generation P2P-TV systems that
//! "better localize the traffic the network has to carry". This module
//! quantifies that: how much of the video volume crosses AS boundaries
//! (transit, the expensive part for carriers), how much crosses
//! country/continent boundaries, and the mean router distance each byte
//! travels — the cost function a network-aware application should be
//! minimising.

use crate::contributors::{is_rx_contributor, is_tx_contributor};
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::hop::flow_hops;
use netaware_net::GeoRegistry;
use serde::{Deserialize, Serialize};

/// Traffic-locality summary of one experiment (contributor traffic,
/// both directions, as seen at the probes).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Friendliness {
    /// Bytes that stayed inside the probe's subnet, %.
    pub subnet_pct: f64,
    /// Bytes that stayed inside the probe's AS (incl. subnet), %.
    pub intra_as_pct: f64,
    /// Bytes that stayed inside the probe's country, %.
    pub intra_cc_pct: f64,
    /// Transit share: bytes that crossed an AS boundary, %.
    pub transit_pct: f64,
    /// Mean router hops per received byte (download side only; hop
    /// counts are only measurable on received packets).
    pub mean_hops_per_byte: f64,
}

/// Computes the friendliness summary over contributor flows.
pub fn friendliness(
    pfs: &[ProbeFlows],
    reg: &GeoRegistry,
    cfg: &AnalysisConfig,
) -> Friendliness {
    let mut total = 0u64;
    let mut subnet = 0u64;
    let mut intra_as = 0u64;
    let mut intra_cc = 0u64;
    let mut hop_bytes = 0u128;
    let mut hop_total = 0u64;

    for pf in pfs {
        for f in pf.flows.values() {
            let rx = if is_rx_contributor(f, cfg) { f.bytes_rx } else { 0 };
            let tx = if is_tx_contributor(f, cfg) { f.bytes_tx } else { 0 };
            let bytes = rx + tx;
            if bytes == 0 {
                continue;
            }
            total += bytes;
            if f.probe.same_subnet(f.remote) {
                subnet += bytes;
            }
            let same_as = match (reg.as_of(f.probe), reg.as_of(f.remote)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if same_as || f.probe.same_subnet(f.remote) {
                intra_as += bytes;
            }
            let same_cc = match (reg.country_of(f.probe), reg.country_of(f.remote)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if same_cc || f.probe.same_subnet(f.remote) {
                intra_cc += bytes;
            }
            if rx > 0 {
                if let Some(h) = flow_hops(f.rx_ttl) {
                    hop_bytes += h as u128 * rx as u128;
                    hop_total += rx;
                }
            }
        }
    }
    if total == 0 {
        return Friendliness::default();
    }
    let pct = |x: u64| 100.0 * x as f64 / total as f64;
    Friendliness {
        subnet_pct: pct(subnet),
        intra_as_pct: pct(intra_as),
        intra_cc_pct: pct(intra_cc),
        transit_pct: 100.0 - pct(intra_as),
        mean_hops_per_byte: if hop_total == 0 {
            0.0
        } else {
            hop_bytes as f64 / hop_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Ip, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(3, CountryCode::IT, AsKind::ResidentialIsp, "IT-DSL"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(151, 0, 0, 0), 16), AsId(3))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    fn contributor_flow(probe: Ip, remote: Ip, bytes: u64, ttl: u8) -> FlowStats {
        FlowStats {
            probe,
            remote,
            bytes_rx: bytes,
            video_bytes_rx: bytes,
            video_pkts_rx: 100,
            rx_ttl: Some(ttl),
            ..Default::default()
        }
    }

    fn pfs(flows: Vec<FlowStats>) -> Vec<ProbeFlows> {
        let mut pf = ProbeFlows {
            probe: flows[0].probe,
            ..Default::default()
        };
        for f in flows {
            pf.flows.insert(f.remote, f);
        }
        vec![pf]
    }

    #[test]
    fn locality_ladder() {
        let probe = Ip::from_octets(130, 192, 1, 1);
        let f = friendliness(
            &pfs(vec![
                contributor_flow(probe, Ip::from_octets(130, 192, 1, 2), 25_000, 128), // subnet
                contributor_flow(probe, Ip::from_octets(130, 192, 9, 2), 25_000, 124), // AS
                contributor_flow(probe, Ip::from_octets(151, 0, 3, 3), 25_000, 118), // CC
                contributor_flow(probe, Ip::from_octets(58, 1, 1, 1), 25_000, 109), // transit far
            ]),
            &reg(),
            &AnalysisConfig::default(),
        );
        assert!((f.subnet_pct - 25.0).abs() < 1e-9);
        assert!((f.intra_as_pct - 50.0).abs() < 1e-9);
        assert!((f.intra_cc_pct - 75.0).abs() < 1e-9);
        assert!((f.transit_pct - 50.0).abs() < 1e-9);
        // Hops: (0 + 4 + 10 + 19)/4 = 8.25 weighted equally by bytes.
        assert!((f.mean_hops_per_byte - 8.25).abs() < 1e-9);
    }

    #[test]
    fn non_contributors_excluded() {
        let probe = Ip::from_octets(130, 192, 1, 1);
        let mut tiny = contributor_flow(probe, Ip::from_octets(58, 1, 1, 1), 100, 109);
        tiny.video_bytes_rx = 100; // below contributor bar
        tiny.video_pkts_rx = 1;
        let f = friendliness(
            &pfs(vec![
                tiny,
                contributor_flow(probe, Ip::from_octets(130, 192, 1, 2), 25_000, 128),
            ]),
            &reg(),
            &AnalysisConfig::default(),
        );
        assert!((f.intra_as_pct - 100.0).abs() < 1e-9);
        assert_eq!(f.transit_pct, 0.0);
    }

    #[test]
    fn empty_is_default() {
        let f = friendliness(&[], &reg(), &AnalysisConfig::default());
        assert_eq!(f.transit_pct, 0.0);
        assert_eq!(f.mean_hops_per_byte, 0.0);
    }
}

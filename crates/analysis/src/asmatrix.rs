//! Figure 2: AS×AS traffic matrix among high-bandwidth probes.
//!
//! "The average amount of traffic transferred from a high bandwidth
//! NAPA-WINE peer belonging to AS-i to a high bandwidth NAPA-WINE peer
//! within AS-j, for all the AS pairs. […] the ratio between the average
//! amount of traffic exchanged among intra-AS peers versus inter-AS peers
//! R" — with same-subnet pairs excluded from R, since LAN-local exchange
//! is the NET effect, not AS awareness.

use crate::flows::ProbeFlows;
use netaware_net::{AsId, GeoRegistry, Ip};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Figure 2 data for one application.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AsMatrix {
    /// ASes hosting high-bandwidth probes, sorted by number.
    pub ases: Vec<u32>,
    /// `avg_bytes[i][j]`: average bytes one probe in `ases[i]` sent to
    /// one probe in `ases[j]` (averaged over ordered host pairs).
    pub avg_bytes: Vec<Vec<f64>>,
    /// Mean intra-AS pair traffic (same AS, different subnet).
    #[serde(with = "crate::preference::nan_as_null")]
    pub intra_mean: f64,
    /// Mean inter-AS pair traffic.
    #[serde(with = "crate::preference::nan_as_null")]
    pub inter_mean: f64,
    /// `R = intra_mean / inter_mean`; `NaN` when either side is empty.
    #[serde(with = "crate::preference::nan_as_null")]
    pub r_ratio: f64,
}

/// Computes Figure 2 over the high-bandwidth probes.
///
/// `highbw_probes` is testbed knowledge (Table I tells which probes sit
/// on institution LANs) — legitimately available to the experimenters.
pub fn as_matrix(
    pfs: &[ProbeFlows],
    reg: &GeoRegistry,
    highbw_probes: &BTreeSet<Ip>,
) -> AsMatrix {
    // TX bytes per ordered probe pair, read from the sender's trace.
    let mut pair_bytes: BTreeMap<(Ip, Ip), u64> = BTreeMap::new();
    for pf in pfs {
        if !highbw_probes.contains(&pf.probe) {
            continue;
        }
        for f in pf.flows.values() {
            if highbw_probes.contains(&f.remote) && f.bytes_tx > 0 {
                *pair_bytes.entry((pf.probe, f.remote)).or_default() += f.bytes_tx;
            }
        }
    }

    let as_of = |ip: Ip| reg.as_of(ip);
    let mut ases: BTreeSet<AsId> = BTreeSet::new();
    for &p in highbw_probes {
        if let Some(a) = as_of(p) {
            ases.insert(a);
        }
    }
    let ases: Vec<AsId> = ases.into_iter().collect();
    let idx: BTreeMap<AsId, usize> = ases.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    // Sum bytes and count ordered host pairs per AS pair. Every ordered
    // pair of distinct high-bw probes counts in the denominator, whether
    // or not it exchanged traffic.
    let n = ases.len();
    let mut sum = vec![vec![0f64; n]; n];
    let mut cnt = vec![vec![0u64; n]; n];
    let probes: Vec<Ip> = highbw_probes.iter().copied().collect();
    let mut intra = (0f64, 0u64); // same AS, different subnet
    let mut inter = (0f64, 0u64);
    for &a in &probes {
        for &b in &probes {
            if a == b {
                continue;
            }
            let (Some(ia), Some(ib)) = (as_of(a).and_then(|x| idx.get(&x)), as_of(b).and_then(|x| idx.get(&x)))
            else {
                continue;
            };
            let bytes = pair_bytes.get(&(a, b)).copied().unwrap_or(0) as f64;
            sum[*ia][*ib] += bytes;
            cnt[*ia][*ib] += 1;
            if ia == ib {
                if !a.same_subnet(b) {
                    intra.0 += bytes;
                    intra.1 += 1;
                }
            } else {
                inter.0 += bytes;
                inter.1 += 1;
            }
        }
    }

    let avg_bytes = sum
        .into_iter()
        .zip(&cnt)
        .map(|(row, crow)| {
            row.into_iter()
                .zip(crow)
                .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                .collect()
        })
        .collect();
    let intra_mean = if intra.1 == 0 { f64::NAN } else { intra.0 / intra.1 as f64 };
    let inter_mean = if inter.1 == 0 { f64::NAN } else { inter.0 / inter.1 as f64 };
    let r_ratio = if inter_mean > 0.0 {
        intra_mean / inter_mean
    } else {
        f64::NAN
    };

    AsMatrix {
        ases: ases.into_iter().map(|a| a.0).collect(),
        avg_bytes,
        intra_mean,
        inter_mean,
        r_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::{AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(1, CountryCode::HU, AsKind::Academic, "BME"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(152, 66, 0, 0), 16), AsId(1))
            .unwrap();
        b.build()
    }

    fn pf_with_tx(probe: Ip, txs: &[(Ip, u64)]) -> ProbeFlows {
        let mut pf = ProbeFlows {
            probe,
            ..Default::default()
        };
        for &(remote, bytes) in txs {
            pf.flows.insert(
                remote,
                FlowStats {
                    probe,
                    remote,
                    bytes_tx: bytes,
                    ..Default::default()
                },
            );
        }
        pf
    }

    #[test]
    fn r_ratio_detects_as_locality() {
        // Probes: two in AS2 (different subnets), one in AS1.
        let a1 = Ip::from_octets(130, 192, 1, 10);
        let a2 = Ip::from_octets(130, 192, 7, 10); // same AS, other subnet
        let b1 = Ip::from_octets(152, 66, 1, 10);
        let w: BTreeSet<Ip> = [a1, a2, b1].into_iter().collect();
        // a1 sends 100k to its AS-mate, 10k across.
        let pfs = vec![
            pf_with_tx(a1, &[(a2, 100_000), (b1, 10_000)]),
            pf_with_tx(a2, &[(a1, 100_000), (b1, 10_000)]),
            pf_with_tx(b1, &[(a1, 10_000), (a2, 10_000)]),
        ];
        let m = as_matrix(&pfs, &reg(), &w);
        assert_eq!(m.ases, vec![1, 2]);
        assert!(m.r_ratio > 5.0, "R = {}", m.r_ratio);
        // AS2→AS2 average: 2 ordered intra pairs with 100k each.
        assert!((m.avg_bytes[1][1] - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn same_subnet_pairs_excluded_from_r() {
        // Both AS2 probes share a subnet → no intra-AS (non-subnet)
        // pairs exist, R is NaN even with huge LAN traffic.
        let a1 = Ip::from_octets(130, 192, 1, 10);
        let a2 = Ip::from_octets(130, 192, 1, 11);
        let b1 = Ip::from_octets(152, 66, 1, 10);
        let w: BTreeSet<Ip> = [a1, a2, b1].into_iter().collect();
        let pfs = vec![pf_with_tx(a1, &[(a2, 1_000_000), (b1, 1_000)])];
        let m = as_matrix(&pfs, &reg(), &w);
        assert!(m.intra_mean.is_nan());
        assert!(m.r_ratio.is_nan());
        assert!(m.inter_mean > 0.0);
    }

    #[test]
    fn uniform_traffic_gives_r_near_one() {
        let a1 = Ip::from_octets(130, 192, 1, 10);
        let a2 = Ip::from_octets(130, 192, 7, 10);
        let b1 = Ip::from_octets(152, 66, 1, 10);
        let w: BTreeSet<Ip> = [a1, a2, b1].into_iter().collect();
        let pfs = vec![
            pf_with_tx(a1, &[(a2, 50_000), (b1, 50_000)]),
            pf_with_tx(a2, &[(a1, 50_000), (b1, 50_000)]),
            pf_with_tx(b1, &[(a1, 50_000), (a2, 50_000)]),
        ];
        let m = as_matrix(&pfs, &reg(), &w);
        assert!((m.r_ratio - 1.0).abs() < 1e-9, "R = {}", m.r_ratio);
    }

    #[test]
    fn non_highbw_probes_ignored() {
        let a1 = Ip::from_octets(130, 192, 1, 10);
        let a2 = Ip::from_octets(130, 192, 7, 10);
        let dsl = Ip::from_octets(152, 66, 1, 10);
        let w: BTreeSet<Ip> = [a1, a2].into_iter().collect(); // dsl not high-bw
        let pfs = vec![pf_with_tx(a1, &[(a2, 10_000), (dsl, 999_000)])];
        let m = as_matrix(&pfs, &reg(), &w);
        assert_eq!(m.ases, vec![2]);
        assert!((m.avg_bytes[0][0] - 5_000.0).abs() < 1e-6); // 10k over 2 ordered pairs
    }

    #[test]
    fn empty_input() {
        let m = as_matrix(&[], &reg(), &BTreeSet::new());
        assert!(m.ases.is_empty());
        assert!(m.r_ratio.is_nan());
    }
}

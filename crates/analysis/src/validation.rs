//! Scoring passive inferences against ground truth.
//!
//! The reproduction can do something the original study could not:
//! since the traffic comes from a simulator, the true access class of
//! every peer is known, and the analysis' inferences can be graded.
//! These scores are how the test suite proves the framework *infers*
//! properties rather than echoing testbed composition — e.g. the
//! packet-pair BW classifier is required to reach high accuracy on
//! contributor flows under every selection policy.

use crate::contributors::is_rx_contributor;
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::ipg::{bw_class, BwClass};
use netaware_net::Ip;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What the simulator knows that the analysis must not see: which
/// addresses truly have >10 Mb/s upstream.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Peers whose access uplink exceeds the high-bandwidth threshold.
    pub high_bw: BTreeSet<Ip>,
    /// Probe addresses whose *downlink* is below the threshold — paths
    /// into them are genuinely bottlenecked below 10 Mb/s, so "low" is
    /// the correct verdict there regardless of the sender.
    pub narrow_probes: BTreeSet<Ip>,
}

/// Confusion-matrix style score of the BW classifier.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BwValidation {
    /// Flows classified High whose remote is truly high-bandwidth.
    pub true_high: u64,
    /// Flows classified Low whose remote is truly low-bandwidth (or
    /// whose probe downlink truly bottlenecks the path).
    pub true_low: u64,
    /// Classified High but truly low (the dangerous direction).
    pub false_high: u64,
    /// Classified Low but truly high.
    pub false_low: u64,
    /// Contributor flows without a classifiable packet train.
    pub unknown: u64,
}

impl BwValidation {
    /// Classification accuracy over classified flows.
    pub fn accuracy(&self) -> f64 {
        let total = self.true_high + self.true_low + self.false_high + self.false_low;
        if total == 0 {
            return 1.0;
        }
        (self.true_high + self.true_low) as f64 / total as f64
    }

    /// Fraction of contributor flows that could be classified at all.
    pub fn coverage(&self) -> f64 {
        let total =
            self.true_high + self.true_low + self.false_high + self.false_low + self.unknown;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.unknown as f64 / total as f64
    }
}

/// Grades the packet-pair BW inference on download-contributor flows.
///
/// The classifier measures the *path* bottleneck; a flow into a
/// narrow-downlink probe counts as truly low even when the sender is
/// fast (unless the interleaving modem hides the bottleneck, in which
/// case the sender class decides — mirroring what active measurement
/// through such lines reports).
pub fn validate_bw(pfs: &[ProbeFlows], cfg: &AnalysisConfig, truth: &GroundTruth) -> BwValidation {
    let mut v = BwValidation::default();
    for pf in pfs {
        for f in pf.flows.values() {
            if !is_rx_contributor(f, cfg) {
                continue;
            }
            let sender_high = truth.high_bw.contains(&f.remote);
            match bw_class(f, cfg) {
                BwClass::Unknown => v.unknown += 1,
                BwClass::High => {
                    if sender_high {
                        v.true_high += 1;
                    } else {
                        v.false_high += 1;
                    }
                }
                BwClass::Low => {
                    if !sender_high || truth.narrow_probes.contains(&f.probe) {
                        v.true_low += 1;
                    } else {
                        v.false_low += 1;
                    }
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;

    fn flow(probe: Ip, remote: Ip, ipg: Option<u64>) -> FlowStats {
        FlowStats {
            probe,
            remote,
            video_bytes_rx: 30_000,
            video_pkts_rx: 24,
            bytes_rx: 30_000,
            min_ipg_us: ipg,
            ..Default::default()
        }
    }

    fn pfs(flows: Vec<FlowStats>) -> Vec<ProbeFlows> {
        let mut pf = ProbeFlows::default();
        for f in flows {
            pf.flows.insert(f.remote, f);
        }
        vec![pf]
    }

    #[test]
    fn perfect_classification() {
        let probe = Ip(1);
        let fast = Ip(100);
        let slow = Ip(200);
        let mut truth = GroundTruth::default();
        truth.high_bw.insert(fast);
        let v = validate_bw(
            &pfs(vec![flow(probe, fast, Some(100)), flow(probe, slow, Some(20_000))]),
            &AnalysisConfig::default(),
            &truth,
        );
        assert_eq!(v.true_high, 1);
        assert_eq!(v.true_low, 1);
        assert_eq!(v.accuracy(), 1.0);
        assert_eq!(v.coverage(), 1.0);
    }

    #[test]
    fn false_high_detected() {
        let truth = GroundTruth::default(); // nobody is truly fast
        let v = validate_bw(
            &pfs(vec![flow(Ip(1), Ip(100), Some(100))]),
            &AnalysisConfig::default(),
            &truth,
        );
        assert_eq!(v.false_high, 1);
        assert_eq!(v.accuracy(), 0.0);
    }

    #[test]
    fn narrow_probe_excuses_low_verdict() {
        let probe = Ip(1);
        let fast = Ip(100);
        let mut truth = GroundTruth::default();
        truth.high_bw.insert(fast);
        truth.narrow_probes.insert(probe);
        // Fast sender reads low through a 6 Mb/s downlink: correct.
        let v = validate_bw(
            &pfs(vec![flow(probe, fast, Some(1_700))]),
            &AnalysisConfig::default(),
            &truth,
        );
        assert_eq!(v.true_low, 1);
        assert_eq!(v.false_low, 0);
    }

    #[test]
    fn unknown_hits_coverage_not_accuracy() {
        let v = validate_bw(
            &pfs(vec![flow(Ip(1), Ip(100), None)]),
            &AnalysisConfig::default(),
            &GroundTruth::default(),
        );
        assert_eq!(v.unknown, 1);
        assert_eq!(v.accuracy(), 1.0);
        assert_eq!(v.coverage(), 0.0);
    }
}

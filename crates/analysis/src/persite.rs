//! Per-vantage-point breakdowns.
//!
//! The paper aggregates the 44 probes into single numbers; this module
//! exposes the variation underneath — per-probe preference values — so
//! heterogeneity across sites/access types is visible (e.g. DSL probes
//! cannot observe high-bandwidth paths; firewalled probes upload less).
//! This is reproduction-quality tooling the original analysis scripts
//! would have had internally.

use crate::contributors::{is_rx_contributor, is_tx_contributor};
use crate::flows::ProbeFlows;
use crate::heuristics::AnalysisConfig;
use crate::partition::{Metric, PairCtx};
use netaware_net::{GeoRegistry, Ip};
use serde::{Deserialize, Serialize};

/// One probe's row of the per-site breakdown.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbeBreakdown {
    /// Vantage point.
    pub probe: Ip,
    /// Distinct peers seen.
    pub peers: usize,
    /// Download contributors.
    pub contrib_rx: usize,
    /// Upload contributors.
    pub contrib_tx: usize,
    /// RX bytes.
    pub bytes_rx: u64,
    /// TX bytes.
    pub bytes_tx: u64,
    /// Byte-wise download preference per metric, in [`Metric::ALL`]
    /// order; `NaN` when unmeasurable at this probe.
    pub bytes_pref_pct: [f64; 5],
}

/// Computes the per-probe breakdown of an experiment.
pub fn per_probe(
    pfs: &[ProbeFlows],
    registry: &GeoRegistry,
    cfg: &AnalysisConfig,
    hop_threshold: u8,
) -> Vec<ProbeBreakdown> {
    pfs.iter()
        .map(|pf| {
            let mut b = ProbeBreakdown {
                probe: pf.probe,
                peers: pf.peers_seen(),
                ..Default::default()
            };
            let mut pref = [0u64; 5];
            let mut tot = [0u64; 5];
            for f in pf.flows.values() {
                b.bytes_rx += f.bytes_rx;
                b.bytes_tx += f.bytes_tx;
                let rx = is_rx_contributor(f, cfg);
                if rx {
                    b.contrib_rx += 1;
                }
                if is_tx_contributor(f, cfg) {
                    b.contrib_tx += 1;
                }
                if !rx {
                    continue;
                }
                let ctx = PairCtx {
                    flow: f,
                    registry,
                    cfg,
                    hop_threshold,
                };
                for (k, m) in Metric::ALL.iter().enumerate() {
                    if let Some(p) = m.preferred(&ctx) {
                        tot[k] += f.bytes_rx;
                        if p {
                            pref[k] += f.bytes_rx;
                        }
                    }
                }
            }
            for k in 0..5 {
                b.bytes_pref_pct[k] = if tot[k] == 0 {
                    f64::NAN
                } else {
                    100.0 * pref[k] as f64 / tot[k] as f64
                };
            }
            b
        })
        .collect()
}

/// Renders the breakdown as a table (one row per probe).
pub fn render(rows: &[ProbeBreakdown]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<18} {:>7} {:>6} {:>6} {:>11} {:>11} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "probe", "peers", "cRX", "cTX", "RX bytes", "TX bytes", "BW%", "AS%", "CC%", "NET%", "HOP%"
    );
    for r in rows {
        let cell = |v: f64| {
            if v.is_nan() {
                "     -".to_string()
            } else {
                format!("{v:>6.1}")
            }
        };
        let _ = writeln!(
            s,
            "{:<18} {:>7} {:>6} {:>6} {:>11} {:>11} | {} {} {} {} {}",
            r.probe.to_string(),
            r.peers,
            r.contrib_rx,
            r.contrib_tx,
            r.bytes_rx,
            r.bytes_tx,
            cell(r.bytes_pref_pct[0]),
            cell(r.bytes_pref_pct[1]),
            cell(r.bytes_pref_pct[2]),
            cell(r.bytes_pref_pct[3]),
            cell(r.bytes_pref_pct[4]),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowStats;
    use netaware_net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistryBuilder, Prefix};

    fn reg() -> GeoRegistry {
        let mut b = GeoRegistryBuilder::new();
        b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
        b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN"));
        b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
            .unwrap();
        b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn per_probe_rows_and_preferences() {
        let probe = Ip::from_octets(130, 192, 1, 1);
        let mut pf = ProbeFlows {
            probe,
            ..Default::default()
        };
        let fast_cn = Ip::from_octets(58, 0, 0, 1);
        pf.flows.insert(
            fast_cn,
            FlowStats {
                probe,
                remote: fast_cn,
                bytes_rx: 50_000,
                video_bytes_rx: 50_000,
                video_pkts_rx: 40,
                pkts_rx: 40,
                min_ipg_us: Some(100),
                rx_ttl: Some(109),
                ..Default::default()
            },
        );
        let rows = per_probe(&[pf], &reg(), &AnalysisConfig::default(), 19);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.peers, 1);
        assert_eq!(r.contrib_rx, 1);
        assert_eq!(r.bytes_pref_pct[0], 100.0); // BW
        assert_eq!(r.bytes_pref_pct[1], 0.0); // AS (CN remote)
        assert_eq!(r.bytes_pref_pct[4], 0.0); // HOP: 19 not < 19

        let out = render(&rows);
        assert!(out.contains("130.192.1.1"));
        assert!(out.contains("100.0"));
    }

    #[test]
    fn probe_without_contributors_is_all_nan() {
        let probe = Ip::from_octets(130, 192, 1, 1);
        let pf = ProbeFlows {
            probe,
            ..Default::default()
        };
        let rows = per_probe(&[pf], &reg(), &AnalysisConfig::default(), 19);
        assert!(rows[0].bytes_pref_pct.iter().all(|v| v.is_nan()));
        let out = render(&rows);
        assert!(out.contains("-"));
    }
}

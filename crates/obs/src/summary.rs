//! Offline event-log summarisation (the `netaware-cli obs` subcommand).
//!
//! Re-reads a JSONL event log written by
//! [`JsonlSink`](crate::sink::JsonlSink) and produces the operator's
//! first-look digest: how many events, which targets dominate, what went
//! wrong, and how fast the chunk scheduler was deciding.

use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead;

/// Why a log could not be summarised.
#[derive(Debug)]
pub enum SummaryError {
    /// Underlying I/O failure while reading.
    Io(std::io::Error),
    /// A line that is not one complete event object (e.g. the file was
    /// truncated mid-write). Carries the 1-based line number.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for SummaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryError::Io(e) => write!(f, "reading event log: {e}"),
            SummaryError::Malformed { line, reason } => {
                write!(f, "event log line {line} is not a complete event: {reason}")
            }
        }
    }
}

impl std::error::Error for SummaryError {}

impl From<std::io::Error> for SummaryError {
    fn from(e: std::io::Error) -> Self {
        SummaryError::Io(e)
    }
}

/// Digest of one event log.
#[derive(Clone, Debug, Default)]
pub struct LogSummary {
    /// Total events.
    pub events: u64,
    /// Event count per target, sorted by target name.
    pub by_target: BTreeMap<String, u64>,
    /// Event count per severity level name.
    pub by_level: BTreeMap<String, u64>,
    /// Rendered error-level events, capped at [`LogSummary::ERROR_CAP`].
    pub errors: Vec<String>,
    /// Total error-level events (even beyond the cap).
    pub error_count: u64,
    /// Earliest event time, µs of sim time.
    pub first_us: u64,
    /// Latest event time, µs of sim time.
    pub last_us: u64,
    /// Per-probe stream continuity in permille, from `swarm.continuity`
    /// events (one per probe at end of run; empty when the log carries
    /// none).
    pub continuity_permille: Vec<u64>,
}

impl LogSummary {
    /// At most this many error lines are retained verbatim.
    pub const ERROR_CAP: usize = 20;

    /// Parses a JSONL event log. Every line must be one complete event
    /// object with at least `t` and `target`; anything else (including a
    /// line cut short by a crash or truncation) is a [`SummaryError`].
    pub fn from_reader(reader: impl BufRead) -> Result<LogSummary, SummaryError> {
        let mut s = LogSummary {
            first_us: u64::MAX,
            ..LogSummary::default()
        };
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let malformed = |reason: &str| SummaryError::Malformed {
                line: lineno,
                reason: reason.to_string(),
            };
            let value = serde_json::parse_value(&line)
                .map_err(|e| malformed(&format!("{e:?}")))?;
            let map = value.as_map().ok_or_else(|| malformed("not an object"))?;
            let t = serde_json::value::field(map, "t")
                .as_u64()
                .ok_or_else(|| malformed("missing `t`"))?;
            let target = serde_json::value::field(map, "target")
                .as_str()
                .ok_or_else(|| malformed("missing `target`"))?;
            let level = serde_json::value::field(map, "level")
                .as_str()
                .unwrap_or("info");
            s.events += 1;
            s.first_us = s.first_us.min(t);
            s.last_us = s.last_us.max(t);
            *s.by_target.entry(target.to_string()).or_insert(0) += 1;
            *s.by_level.entry(level.to_string()).or_insert(0) += 1;
            if target == "swarm.continuity" {
                if let Some(p) = serde_json::value::field(map, "permille").as_u64() {
                    s.continuity_permille.push(p);
                }
            }
            if level == "error" {
                s.error_count += 1;
                if s.errors.len() < Self::ERROR_CAP {
                    s.errors.push(line);
                }
            }
        }
        if s.events == 0 {
            s.first_us = 0;
        }
        Ok(s)
    }

    /// Sim-time span covered by the log, seconds.
    pub fn span_secs(&self) -> f64 {
        self.last_us.saturating_sub(self.first_us) as f64 / 1e6
    }

    /// Chunk-scheduler decision rate: `swarm.scheduling.chunk_sched`
    /// events per sim-second over the covered span (0 when the span is
    /// empty).
    pub fn chunk_sched_rate_hz(&self) -> f64 {
        let n = self
            .by_target
            .get("swarm.scheduling.chunk_sched")
            .copied()
            .unwrap_or(0);
        let span = self.span_secs();
        if span <= 0.0 {
            0.0
        } else {
            n as f64 / span
        }
    }

    /// Mean per-probe stream continuity (0..=1) from `swarm.continuity`
    /// events, if the log carries any.
    pub fn continuity_mean(&self) -> Option<f64> {
        if self.continuity_permille.is_empty() {
            return None;
        }
        let sum: u64 = self.continuity_permille.iter().sum();
        Some(sum as f64 / self.continuity_permille.len() as f64 / 1000.0)
    }

    /// Worst per-probe stream continuity (0..=1), if reported.
    pub fn continuity_min(&self) -> Option<f64> {
        self.continuity_permille
            .iter()
            .min()
            .map(|p| *p as f64 / 1000.0)
    }

    /// Human-readable report: totals, top targets by count, error lines,
    /// the chunk-scheduler decision rate, and stream continuity when the
    /// run reported it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events: {} spanning {:.3}–{:.3} s (sim time)",
            self.events,
            self.first_us as f64 / 1e6,
            self.last_us as f64 / 1e6,
        );
        let mut targets: Vec<(&String, &u64)> = self.by_target.iter().collect();
        targets.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let _ = writeln!(out, "top targets:");
        for (target, n) in targets.iter().take(10) {
            let _ = writeln!(out, "  {target:<24} {n}");
        }
        let rate = self.chunk_sched_rate_hz();
        if rate > 0.0 {
            let _ = writeln!(out, "chunk-scheduler decisions: {rate:.1}/s (sim)");
        }
        if let (Some(mean), Some(min)) = (self.continuity_mean(), self.continuity_min()) {
            let _ = writeln!(
                out,
                "continuity: mean {:.3}, worst probe {:.3} ({} probes)",
                mean,
                min,
                self.continuity_permille.len(),
            );
        }
        let _ = writeln!(out, "errors: {}", self.error_count);
        for line in &self.errors {
            let _ = writeln!(out, "  {line}");
        }
        out
    }

    /// Parses a `--metrics` snapshot JSON body (as written by
    /// `netaware-cli run --metrics`), for merging into the report.
    pub fn parse_metrics(body: &str) -> Result<MetricsSnapshot, SummaryError> {
        serde_json::from_str(body).map_err(|e| SummaryError::Malformed {
            line: 0,
            reason: format!("metrics snapshot: {e:?}"),
        })
    }

    /// [`LogSummary::render`] plus the metrics snapshot folded in: one
    /// report with continuity, per-counter sim-time throughput, and
    /// histogram percentiles, instead of two artifacts read separately.
    pub fn render_with_metrics(&self, metrics: Option<&MetricsSnapshot>) -> String {
        let mut out = self.render();
        let Some(m) = metrics else { return out };
        let _ = writeln!(
            out,
            "metrics: {} counters, {} gauges, {} histograms",
            m.counters.len(),
            m.gauges.len(),
            m.histograms.len(),
        );
        let span = self.span_secs();
        if span > 0.0 {
            let mut counters: Vec<(&String, &u64)> = m.counters.iter().collect();
            counters.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            let _ = writeln!(out, "counter throughput (per sim-second):");
            for (name, n) in counters.iter().take(12) {
                let _ = writeln!(out, "  {name:<32} {:>12.1}/s  ({n} total)", **n as f64 / span);
            }
        }
        if !m.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms: {:<24} {:>8} {:>6} {:>6} {:>6} {:>6}",
                "name", "total", "p50", "p90", "p99", "max"
            );
            for (name, h) in &m.histograms {
                let q = |v: Option<usize>| v.map_or(String::from("-"), |x| x.to_string());
                let _ = writeln!(
                    out,
                    "            {name:<24} {:>8} {:>6} {:>6} {:>6} {:>6}",
                    h.total,
                    q(h.p50),
                    q(h.p90),
                    q(h.p99),
                    q(h.max),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const LOG: &str = concat!(
        r#"{"t":0,"target":"testbed.run","level":"info","app":"sopcast"}"#,
        "\n",
        r#"{"t":1000000,"target":"swarm.scheduling.chunk_sched","level":"debug","chunk":1}"#,
        "\n",
        r#"{"t":2000000,"target":"swarm.scheduling.chunk_sched","level":"debug","chunk":2}"#,
        "\n",
        r#"{"t":3000000,"target":"stream.error","level":"error","kind":"truncated"}"#,
        "\n",
        r#"{"t":4000000,"target":"pass.flow","level":"info","probe":0}"#,
        "\n",
        r#"{"t":4000000,"target":"swarm.continuity","level":"info","probe":0,"permille":950}"#,
        "\n",
        r#"{"t":4000000,"target":"swarm.continuity","level":"info","probe":1,"permille":850}"#,
        "\n",
    );

    #[test]
    fn summarises_counts_span_and_rate() {
        let s = LogSummary::from_reader(BufReader::new(LOG.as_bytes())).expect("parse");
        assert_eq!(s.events, 7);
        assert_eq!(s.by_target["swarm.scheduling.chunk_sched"], 2);
        assert_eq!(s.error_count, 1);
        assert_eq!(s.errors.len(), 1);
        assert_eq!(s.first_us, 0);
        assert_eq!(s.last_us, 4_000_000);
        assert!((s.chunk_sched_rate_hz() - 0.5).abs() < 1e-9);
        assert_eq!(s.continuity_permille, vec![950, 850]);
        assert!((s.continuity_mean().unwrap() - 0.9).abs() < 1e-9);
        assert!((s.continuity_min().unwrap() - 0.85).abs() < 1e-9);
        let text = s.render();
        assert!(text.contains("events: 7"));
        assert!(text.contains("continuity: mean 0.900, worst probe 0.850 (2 probes)"));
        assert!(text.contains("swarm.scheduling.chunk_sched"));
        assert!(text.contains("errors: 1"));
        assert!(text.contains("chunk-scheduler decisions: 0.5/s"));
    }

    #[test]
    fn merged_report_folds_metrics_in() {
        let s = LogSummary::from_reader(BufReader::new(LOG.as_bytes())).expect("parse");
        let reg = crate::metrics::Registry::new();
        reg.counter("proto.chunks_requested").add(400);
        let h = reg.histogram("swarm.fanout", 64);
        for v in [1, 2, 2, 3, 9] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let merged = s.render_with_metrics(Some(&snap));
        // Still one report: log lines first, metrics folded in after.
        assert!(merged.contains("events: 7"));
        assert!(merged.contains("continuity: mean 0.900"));
        assert!(merged.contains("metrics: 1 counters, 0 gauges, 1 histograms"));
        // 400 requests over the 4-sim-second span.
        assert!(merged.contains("proto.chunks_requested"));
        assert!(merged.contains("100.0/s"));
        assert!(merged.contains("swarm.fanout"));
        // Snapshot JSON round-trips through the --metrics parser.
        let back = LogSummary::parse_metrics(&snap.to_json()).expect("parse metrics");
        assert_eq!(back, snap);
        // Without a snapshot the report is unchanged.
        assert_eq!(s.render_with_metrics(None), s.render());
    }

    #[test]
    fn truncated_line_is_an_error() {
        let broken = &LOG[..LOG.len() - 30]; // cut mid-line
        let err = LogSummary::from_reader(BufReader::new(broken.as_bytes()))
            .expect_err("must fail");
        match err {
            SummaryError::Malformed { line, .. } => assert_eq!(line, 7),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn missing_keys_are_errors() {
        let err = LogSummary::from_reader(BufReader::new(
            r#"{"target":"x.y","level":"info"}"#.as_bytes(),
        ))
        .expect_err("must fail");
        assert!(matches!(err, SummaryError::Malformed { line: 1, .. }));
    }

    #[test]
    fn empty_log_summarises_cleanly() {
        let s = LogSummary::from_reader(BufReader::new(&b""[..])).expect("parse");
        assert_eq!(s.events, 0);
        assert_eq!(s.first_us, 0);
        assert_eq!(s.chunk_sched_rate_hz(), 0.0);
        assert_eq!(s.continuity_mean(), None);
        assert_eq!(s.continuity_min(), None);
    }
}

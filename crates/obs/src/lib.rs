//! # netaware-obs — deterministic sim-time observability
//!
//! The instrument panel for the whole framework, built on three pillars:
//!
//! * a **structured event log** — [`Event`] records keyed by
//!   [`SimTime`](netaware_sim::SimTime) with a static `<layer>.<aspect>`
//!   target (`swarm.discovery.handshake`, `swarm.scheduling.chunk_sched`, `stream.error`,
//!   `pass.flow`, …), collected by a pluggable [`EventSink`] (ring
//!   buffer, JSONL writer, counting null sink) behind a per-target
//!   [`Filter`]. Timestamps are simulation time, so two runs with the
//!   same seed emit *byte-identical* logs — observability rides the same
//!   determinism contract as the traces themselves;
//! * a **metrics registry** — named [`Counter`]s/[`Gauge`]s and
//!   [`netaware_sim::stats::Histogram`]-backed histograms with a
//!   `BTreeMap`-ordered JSON/CSV [`MetricsSnapshot`];
//! * **span timing** — a [`Clock`] abstraction so the layers allowed to
//!   spend wall time (analysis, corpus streaming, report emission) can be
//!   timed without `sim`/`proto`/`net`/`testbed` ever naming `Instant`.
//!
//! The [`Obs`] handle bundles all three. It is a cheap `Arc` clone, and a
//! default-constructed (disabled) handle makes every operation — event
//! emission, metric updates, spans — a near-free no-op, so instrumented
//! hot paths cost nothing when nobody is watching (the `obs-overhead`
//! bench group pins this).
//!
//! ```
//! use netaware_obs::{event, Level, NullSink, Obs};
//! use netaware_sim::SimTime;
//! use std::sync::Arc;
//!
//! let sink = Arc::new(NullSink::new());
//! let obs = Obs::new(sink.clone());
//! event!(obs, Level::Info, "swarm.handshake", SimTime::from_us(10),
//!        "peer" = 7u64, "nat" = false);
//! obs.counter("proto.chunks_requested").inc();
//! assert_eq!(sink.events_seen(), 1);
//! assert_eq!(obs.metrics().expect("enabled").counters["proto.chunks_requested"], 1);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod clock;
pub mod event;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod summary;

pub use clock::{Clock, ManualClock, PhaseTiming, Span, Timings, WallClock};
pub use event::{Event, FieldValue, Level};
pub use metrics::{Counter, Gauge, HistogramMetric, MetricsSnapshot, Registry};
pub use profile::{
    masked_diff, PerfMeta, PerfReport, ProfCell, ProfSpan, ProfileNode, Profiler, MASKED_FIELDS,
};
pub use sink::{
    replay_merged, EventSink, Filter, JsonlSink, NullSink, RingSink, ShardBufferSink, TaggedEvent,
};
pub use summary::{LogSummary, SummaryError};

use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering the data from a poisoned lock (a panicked
/// holder can only have been mid-update on plain counters/buffers, which
/// are safe to keep reading).
pub(crate) fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Inner {
    filter: Filter,
    sink: Arc<dyn EventSink>,
    registry: Arc<Registry>,
    timings: Timings,
    profiler: Option<Profiler>,
    clock: Arc<dyn Clock>,
}

/// The observability handle threaded through the pipeline.
///
/// Cloning shares the sink, registry and timings. The default handle is
/// *disabled*: [`Obs::enabled`] is `false` for everything, metric handles
/// are no-ops, and spans record nothing.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Obs {
    /// The disabled handle (same as `Obs::default()`).
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// An enabled handle sending everything to `sink`, timing spans with
    /// the real [`WallClock`].
    pub fn new(sink: Arc<dyn EventSink>) -> Obs {
        Obs::with_parts(sink, Filter::all(), Arc::new(WallClock::new()))
    }

    /// An enabled handle with an explicit [`Filter`].
    pub fn with_filter(sink: Arc<dyn EventSink>, filter: Filter) -> Obs {
        Obs::with_parts(sink, filter, Arc::new(WallClock::new()))
    }

    /// Fully explicit construction: sink, filter and span clock. The
    /// handle collects events, metrics and timings but does *not*
    /// profile; see [`Obs::with_profiler`].
    pub fn with_parts(sink: Arc<dyn EventSink>, filter: Filter, clock: Arc<dyn Clock>) -> Obs {
        Obs::build(sink, filter, clock, false)
    }

    /// Like [`Obs::with_parts`] but with the span profiler armed:
    /// [`Obs::pspan`]/[`Obs::prof_cell`] record into a tree read back by
    /// [`Obs::profile_tree`]/[`Obs::perf_report`]. Profiling is opt-in
    /// because it reads the clock around every instrumented hook call.
    pub fn with_profiler(sink: Arc<dyn EventSink>, filter: Filter, clock: Arc<dyn Clock>) -> Obs {
        Obs::build(sink, filter, clock, true)
    }

    /// A profiling handle with no event collection (null sink, wall
    /// clock) — what `--profile FILE` uses when no `--obs-log` is asked
    /// for.
    pub fn profiled() -> Obs {
        Obs::with_profiler(
            Arc::new(NullSink::new()),
            Filter::all(),
            Arc::new(WallClock::new()),
        )
    }

    fn build(sink: Arc<dyn EventSink>, filter: Filter, clock: Arc<dyn Clock>, prof: bool) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                filter,
                sink: Arc::clone(&sink),
                registry: Arc::new(Registry::new()),
                timings: Timings::new(Arc::clone(&clock)),
                profiler: prof.then(|| Profiler::new(Arc::clone(&clock))),
                clock,
            })),
        }
    }

    /// A handle sharing this one's filter, metrics registry, profiler
    /// and clock, but writing events to `sink` instead. This is how
    /// shard workers observe into per-shard buffers while metric
    /// updates and profiler spans land in the shared collectors (both
    /// are commutative, so sharding never changes the merged totals).
    /// Forking a disabled handle yields a disabled handle.
    pub fn fork(&self, sink: Arc<dyn EventSink>) -> Obs {
        match &self.inner {
            None => Obs::disabled(),
            Some(inner) => Obs {
                inner: Some(Arc::new(Inner {
                    filter: inner.filter.clone(),
                    sink,
                    registry: Arc::clone(&inner.registry),
                    timings: Timings::new(Arc::clone(&inner.clock)),
                    profiler: inner.profiler.clone(),
                    clock: Arc::clone(&inner.clock),
                })),
            },
        }
    }

    /// The sink this handle writes events to; `None` when disabled.
    pub fn sink(&self) -> Option<Arc<dyn EventSink>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.sink))
    }

    /// Whether this handle collects anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether an event for `target` at `level` would be collected. The
    /// [`event!`] macro consults this *before* evaluating any field
    /// expressions.
    pub fn enabled(&self, target: &'static str, level: Level) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.filter.allows(target, level) && inner.sink.accepts(target, level)
            }
        }
    }

    /// Hands one event to the sink. Callers normally go through
    /// [`event!`], which performs the [`Obs::enabled`] check first.
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&event);
        }
    }

    /// The counter named `name` (a no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::default(),
            Some(inner) => inner.registry.counter(name),
        }
    }

    /// The gauge named `name` (a no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::default(),
            Some(inner) => inner.registry.gauge(name),
        }
    }

    /// The histogram named `name` over `0..upper` (no-op when disabled).
    pub fn histogram(&self, name: &str, upper: usize) -> HistogramMetric {
        match &self.inner {
            None => HistogramMetric::default(),
            Some(inner) => inner.registry.histogram(name, upper),
        }
    }

    /// A stable snapshot of the metrics registry; `None` when disabled.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    /// Starts a wall-clock span; the guard records on drop (nothing when
    /// disabled).
    pub fn span(&self, name: &str) -> Span<'_> {
        match &self.inner {
            None => Span::disabled(),
            Some(inner) => inner.timings.span(name),
        }
    }

    /// Whether the span profiler is armed (see [`Obs::with_profiler`]).
    pub fn profiling(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.profiler.is_some())
    }

    /// Opens a profiler span; nests under the innermost open span on
    /// this thread, records on drop. A no-op guard when the handle is
    /// disabled or not profiling.
    pub fn pspan(&self, name: &str) -> ProfSpan {
        match self.inner.as_ref().and_then(|i| i.profiler.as_ref()) {
            None => ProfSpan::disabled(),
            Some(p) => p.span(name),
        }
    }

    /// Registers a hot-path profiler cell under the current ambient
    /// span position (no-op when not profiling).
    pub fn prof_cell(&self, name: &str) -> ProfCell {
        match self.inner.as_ref().and_then(|i| i.profiler.as_ref()) {
            None => ProfCell::disabled(),
            Some(p) => p.cell(name),
        }
    }

    /// Snapshot of the profiler's span tree; `None` when not profiling.
    pub fn profile_tree(&self) -> Option<ProfileNode> {
        self.inner
            .as_ref()
            .and_then(|i| i.profiler.as_ref())
            .map(Profiler::tree)
    }

    /// Assembles the `BENCH_*.json` payload for a finished run: span
    /// tree, derived throughput, peak heap and the metrics snapshot.
    /// `None` when not profiling.
    pub fn perf_report(&self, meta: PerfMeta) -> Option<PerfReport> {
        let tree = self.profile_tree()?;
        let metrics = self.metrics()?;
        Some(PerfReport::new(meta, tree, metrics))
    }

    /// Completed spans, in completion order (empty when disabled).
    pub fn timings(&self) -> Vec<PhaseTiming> {
        self.inner
            .as_ref()
            .map(|i| i.timings.snapshot())
            .unwrap_or_default()
    }

    /// Flushes the sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.sink.flush(),
        }
    }
}

/// Emits a structured event if (and only if) the handle collects this
/// target at this level. Field expressions are **not evaluated** when the
/// event is filtered out, so instrumentation may compute derived values
/// in the field position without taxing the disabled path:
///
/// ```
/// use netaware_obs::{event, Level, Obs};
/// use netaware_sim::SimTime;
///
/// let obs = Obs::disabled();
/// let mut evaluated = false;
/// event!(obs, Level::Info, "swarm.handshake", SimTime::ZERO,
///        "peer" = { evaluated = true; 7u64 });
/// assert!(!evaluated);
/// ```
#[macro_export]
macro_rules! event {
    ($obs:expr, $level:expr, $target:expr, $time:expr $(,)?) => {{
        let obs = &$obs;
        if obs.enabled($target, $level) {
            obs.emit($crate::Event {
                time: $time,
                target: $target,
                level: $level,
                fields: Vec::new(),
            });
        }
    }};
    ($obs:expr, $level:expr, $target:expr, $time:expr, $($key:literal = $val:expr),+ $(,)?) => {{
        let obs = &$obs;
        if obs.enabled($target, $level) {
            obs.emit($crate::Event {
                time: $time,
                target: $target,
                level: $level,
                fields: vec![$(($key, $crate::FieldValue::from($val))),+],
            });
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_sim::SimTime;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.enabled("swarm.handshake", Level::Error));
        obs.counter("x").inc();
        obs.gauge("y").set(3);
        obs.histogram("z", 8).record(1);
        assert!(obs.metrics().is_none());
        assert!(obs.timings().is_empty());
        obs.flush().expect("flush never fails when disabled");
        let _ = format!("{obs:?}");
    }

    #[test]
    fn macro_skips_field_evaluation_when_filtered() {
        // Disabled handle: nothing runs.
        let obs = Obs::disabled();
        let mut hits = 0u32;
        event!(obs, Level::Error, "swarm.handshake", SimTime::ZERO,
               "n" = { hits += 1; hits });
        assert_eq!(hits, 0, "field expression ran on a disabled handle");

        // Enabled handle, but the target is filtered below threshold:
        // still nothing runs.
        let sink = Arc::new(NullSink::new());
        let obs = Obs::with_filter(sink.clone(), Filter::min(Level::Warn));
        event!(obs, Level::Debug, "swarm.chunk_sched", SimTime::ZERO,
               "n" = { hits += 1; hits });
        assert_eq!(hits, 0, "field expression ran for a filtered event");
        assert_eq!(sink.events_seen(), 0);

        // At or above threshold the fields evaluate and the sink sees it.
        event!(obs, Level::Warn, "swarm.chunk_sched", SimTime::ZERO,
               "n" = { hits += 1; hits });
        assert_eq!(hits, 1);
        assert_eq!(sink.events_seen(), 1);
    }

    #[test]
    fn ring_sink_round_trip_through_handle() {
        let ring = Arc::new(RingSink::new(16));
        let obs = Obs::new(ring.clone());
        event!(obs, Level::Info, "pass.flow", SimTime::from_us(5), "probe" = 3u64);
        event!(obs, Level::Info, "pass.flow", SimTime::from_us(6));
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].fields, vec![("probe", FieldValue::U64(3))]);
        assert!(events[1].fields.is_empty());
    }

    #[test]
    fn clones_share_registry_and_sink() {
        let sink = Arc::new(NullSink::new());
        let obs = Obs::new(sink.clone());
        let clone = obs.clone();
        obs.counter("shared").inc();
        clone.counter("shared").add(2);
        let snap = clone.metrics().expect("enabled");
        assert_eq!(snap.counters["shared"], 3);
        event!(clone, Level::Info, "swarm.handshake", SimTime::ZERO);
        assert_eq!(sink.events_seen(), 1);
    }

    #[test]
    fn fork_shares_metrics_but_not_the_sink() {
        let main_sink = Arc::new(NullSink::new());
        let shard_sink = Arc::new(NullSink::new());
        let obs = Obs::new(main_sink.clone());
        let forked = obs.fork(shard_sink.clone());
        forked.counter("shared").add(5);
        assert_eq!(obs.metrics().expect("enabled").counters["shared"], 5);
        event!(forked, Level::Info, "swarm.handshake", SimTime::ZERO);
        assert_eq!(main_sink.events_seen(), 0);
        assert_eq!(shard_sink.events_seen(), 1);
        assert!(!Obs::disabled().fork(shard_sink).is_enabled());
    }

    #[test]
    fn fork_profiles_into_the_shared_tree() {
        let obs = Obs::profiled();
        let forked = obs.fork(Arc::new(NullSink::new()));
        assert!(forked.profiling());
        {
            let _s = forked.pspan("shard.window");
        }
        let tree = obs.profile_tree().expect("profiling");
        assert!(
            tree.children.iter().any(|c| c.name == "shard.window"),
            "forked span must land in the parent's tree"
        );
    }

    #[test]
    fn spans_record_through_the_handle() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_parts(Arc::new(NullSink::new()), Filter::all(), clock.clone());
        {
            let _s = obs.span("analysis.sweep");
            clock.advance(42);
        }
        let t = obs.timings();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].name, "analysis.sweep");
        assert_eq!(t[0].elapsed_us, 42);
    }
}

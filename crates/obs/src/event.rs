//! The structured event record and its deterministic JSONL encoding.
//!
//! Events are keyed by [`SimTime`], not wall-clock time: two runs with
//! the same seed emit byte-identical logs, which is what lets
//! `tests/determinism.rs` pin the whole observability surface.

use netaware_sim::SimTime;
use serde::Value;

/// Event severity, ordered from chattiest to most severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Very fine-grained detail (per-packet scale).
    Trace,
    /// Per-decision detail (chunk scheduling, gossip exchanges).
    Debug,
    /// Lifecycle milestones (run start, probe sunk, pass finished).
    Info,
    /// Recoverable anomalies (handshake refused, request timed out).
    Warn,
    /// Failures surfaced to the caller (stream errors, corrupt input).
    Error,
}

impl Level {
    /// Stable lowercase name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses the name written by [`Level::as_str`].
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed field value. The small closed set keeps the JSONL encoding
/// (and therefore the determinism test surface) trivial to audit.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, ids, byte totals).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point value (rates, fractions).
    F64(f64),
    /// Short free-form text (kinds, names).
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::U64(v) => Value::U64(*v),
            FieldValue::I64(v) => Value::I64(*v),
            FieldValue::F64(v) => Value::F64(*v),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// One structured log record.
///
/// `target` names the subsystem and decision point with a
/// `<layer>.<aspect>` convention (`swarm.discovery.handshake`, `swarm.scheduling.chunk_sched`,
/// `stream.error`, `pass.flow`, …); it is `&'static str` so emitting an
/// event never allocates for the routing key and filtering is a pointer-
/// and-prefix affair.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Simulation time of the event (the deterministic key).
    pub time: SimTime,
    /// Static target, `<layer>.<aspect>`.
    pub target: &'static str,
    /// Severity.
    pub level: Level,
    /// Typed key/value payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Encodes the event as one compact JSON object (no trailing
    /// newline). Key order is fixed (`t`, `target`, `level`, then the
    /// fields in emission order), so the encoding is deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut pairs: Vec<(Value, Value)> = vec![
            (Value::Str("t".into()), Value::U64(self.time.as_us())),
            (Value::Str("target".into()), Value::Str(self.target.into())),
            (
                Value::Str("level".into()),
                Value::Str(self.level.as_str().into()),
            ),
        ];
        for (k, v) in &self.fields {
            pairs.push((Value::Str((*k).into()), v.to_value()));
        }
        let value = Value::Map(pairs);
        // The encoder only fails on non-finite floats; clamp those to
        // null rather than poisoning the whole log line.
        serde_json::to_string(&value).unwrap_or_else(|_| {
            let sane: Vec<(Value, Value)> = match value {
                Value::Map(pairs) => pairs
                    .into_iter()
                    .map(|(k, v)| match v {
                        Value::F64(f) if !f.is_finite() => (k, Value::Null),
                        other => (k, other),
                    })
                    .collect(),
                _ => Vec::new(),
            };
            serde_json::to_string(&Value::Map(sane)).unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_round_trip_and_order() {
        for l in [Level::Trace, Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("fatal"), None);
    }

    #[test]
    fn jsonl_encoding_is_stable() {
        let e = Event {
            time: SimTime::from_us(1_500_000),
            target: "swarm.handshake",
            level: Level::Info,
            fields: vec![
                ("peer", FieldValue::U64(7)),
                ("nat", FieldValue::Bool(true)),
                ("kind", FieldValue::Str("probe".into())),
            ],
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t":1500000,"target":"swarm.handshake","level":"info","peer":7,"nat":true,"kind":"probe"}"#
        );
        // Encoding twice yields identical bytes.
        assert_eq!(e.to_jsonl(), e.to_jsonl());
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let e = Event {
            time: SimTime::ZERO,
            target: "pass.flow",
            level: Level::Debug,
            fields: vec![("rate", FieldValue::F64(f64::NAN))],
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t":0,"target":"pass.flow","level":"debug","rate":null}"#
        );
    }
}

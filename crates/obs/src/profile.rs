//! Hierarchical span profiler and the `BENCH_*.json` perf-snapshot
//! format.
//!
//! # Span tree semantics
//!
//! A [`Profiler`] owns a tree of named nodes. Scopes open a span with
//! [`Profiler::span`] (through [`crate::Obs::pspan`]); spans nest via an
//! ambient per-thread stack, so `obs.pspan("analysis.sweep")` inside a
//! scope that already holds `testbed.run` lands as its child without any
//! context threading. Each node accumulates:
//!
//! * **wall time** (`wall_ns`, via the [`Clock`] abstraction — the whole
//!   scope, children included; "self" time is derived at render time),
//! * **call counts**,
//! * **allocation deltas** (calls + bytes) sampled from the global
//!   [counting allocator](crate::alloc),
//! * **work items** — records, events, simulated-time microseconds and
//!   bytes fed in by the instrumented code ([`ProfSpan::add_records`]
//!   and friends) — from which per-phase throughput is derived.
//!
//! Hot paths that cannot afford an RAII guard per call (the dispatcher's
//! per-event behaviour hooks) use a pre-registered [`ProfCell`] instead:
//! a leaf handle that times closures and tallies items with a couple of
//! atomic adds, and collapses to a no-op when profiling is off.
//!
//! # Deterministic vs wall-clock
//!
//! The tree *shape*, call counts, item tallies and sim-time coverage are
//! deterministic: same seed, same tree. Wall times, allocation counters
//! and everything derived from them (throughput, peak heap) are
//! observations of the host and are declared in [`MASKED_FIELDS`];
//! [`masked_json`] blanks exactly those so two same-seed reports can be
//! compared byte-for-byte — the contract `tests/profiler.rs` pins.
//!
//! Spans close in `Drop`, so a panicking scope still records itself and
//! its ancestors stay balanced (also pinned by tests).

use crate::alloc;
use crate::clock::Clock;
use crate::locked;
use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-node accumulators. All adds are commutative, so rayon workers may
/// tally into a shared node without ordering concerns.
#[derive(Default)]
struct NodeStats {
    calls: AtomicU64,
    wall_ns: AtomicU64,
    sim_us: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
    records: AtomicU64,
    events: AtomicU64,
    bytes: AtomicU64,
}

struct Node {
    name: String,
    stats: NodeStats,
    children: Mutex<BTreeMap<String, Arc<Node>>>,
}

impl Node {
    fn new(name: &str) -> Arc<Node> {
        Arc::new(Node {
            name: name.to_string(),
            stats: NodeStats::default(),
            children: Mutex::new(BTreeMap::new()),
        })
    }

    fn child(&self, name: &str) -> Arc<Node> {
        let mut map = locked(&self.children);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Node::new(name)),
        )
    }

    fn snapshot(&self) -> ProfileNode {
        let s = &self.stats;
        ProfileNode {
            name: self.name.clone(),
            calls: s.calls.load(Ordering::Relaxed),
            wall_ns: s.wall_ns.load(Ordering::Relaxed),
            sim_us: s.sim_us.load(Ordering::Relaxed),
            allocs: s.allocs.load(Ordering::Relaxed),
            alloc_bytes: s.alloc_bytes.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            events: s.events.load(Ordering::Relaxed),
            bytes: s.bytes.load(Ordering::Relaxed),
            children: locked(&self.children)
                .values()
                .map(|c| c.snapshot())
                .collect(),
        }
    }
}

// The ambient span stack: (profiler identity, open node). Entries from
// different profilers interleave safely because lookups filter by
// identity; rayon workers start with an empty stack, so spans opened
// there root at the profiler's top level.
thread_local! {
    static STACK: RefCell<Vec<(usize, Arc<Node>)>> = const { RefCell::new(Vec::new()) };
}

/// The span-tree collector. Usually reached through
/// [`crate::Obs::pspan`] rather than held directly.
pub struct Profiler {
    clock: Arc<dyn Clock>,
    root: Arc<Node>,
}

impl Clone for Profiler {
    /// Clones share the tree: spans recorded through the clone land in
    /// the same nodes (same-named children merge), which is what lets
    /// shard worker threads profile into one merged report.
    fn clone(&self) -> Profiler {
        Profiler {
            clock: Arc::clone(&self.clock),
            root: Arc::clone(&self.root),
        }
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler").finish_non_exhaustive()
    }
}

impl Profiler {
    /// A profiler timing spans with `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Profiler {
        Profiler {
            clock,
            root: Node::new(""),
        }
    }

    fn id(&self) -> usize {
        Arc::as_ptr(&self.root) as usize
    }

    /// The innermost open node of *this* profiler on the current thread,
    /// or the root.
    fn current(&self) -> Arc<Node> {
        let id = self.id();
        STACK
            .with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|(owner, _)| *owner == id)
                    .map(|(_, node)| Arc::clone(node))
            })
            .unwrap_or_else(|| Arc::clone(&self.root))
    }

    /// Opens a span named `name` under the current ambient position; the
    /// guard records on drop.
    pub fn span(&self, name: &str) -> ProfSpan {
        let node = self.current().child(name);
        STACK.with(|s| s.borrow_mut().push((self.id(), Arc::clone(&node))));
        let heap = alloc::snapshot();
        ProfSpan {
            state: Some(SpanState {
                owner: self.id(),
                node,
                clock: Arc::clone(&self.clock),
                start_ns: self.clock.elapsed_ns(),
                start_allocs: heap.allocs,
                start_alloc_bytes: heap.bytes,
            }),
        }
    }

    /// Registers a leaf cell named `name` under the current ambient
    /// position, for hot paths that tally many times into one node.
    pub fn cell(&self, name: &str) -> ProfCell {
        ProfCell {
            inner: Some(Arc::new(CellInner {
                node: self.current().child(name),
                clock: Arc::clone(&self.clock),
            })),
        }
    }

    /// Snapshot of the whole tree. The synthetic root (empty name)
    /// carries no tallies of its own; its children are the top-level
    /// spans.
    pub fn tree(&self) -> ProfileNode {
        self.root.snapshot()
    }
}

struct SpanState {
    owner: usize,
    node: Arc<Node>,
    clock: Arc<dyn Clock>,
    start_ns: u64,
    start_allocs: u64,
    start_alloc_bytes: u64,
}

/// RAII guard for one open profiler span. Obtained from
/// [`crate::Obs::pspan`]; a disabled guard records nothing and every
/// method is a no-op.
pub struct ProfSpan {
    state: Option<SpanState>,
}

impl ProfSpan {
    /// A guard that records nothing.
    pub fn disabled() -> ProfSpan {
        ProfSpan { state: None }
    }

    /// Whether this span actually records.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Credits `n` processed records to this span's node.
    pub fn add_records(&self, n: u64) {
        if let Some(s) = &self.state {
            s.node.stats.records.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Credits `n` processed events.
    pub fn add_events(&self, n: u64) {
        if let Some(s) = &self.state {
            s.node.stats.events.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Credits `n` processed bytes.
    pub fn add_bytes(&self, n: u64) {
        if let Some(s) = &self.state {
            s.node.stats.bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Credits `us` microseconds of covered simulation time.
    pub fn add_sim_us(&self, us: u64) {
        if let Some(s) = &self.state {
            s.node.stats.sim_us.fetch_add(us, Ordering::Relaxed);
        }
    }

    /// A leaf cell under this span (for handing to worker threads, which
    /// have no ambient stack entry for it).
    pub fn cell(&self, name: &str) -> ProfCell {
        match &self.state {
            None => ProfCell::disabled(),
            Some(s) => ProfCell {
                inner: Some(Arc::new(CellInner {
                    node: s.node.child(name),
                    clock: Arc::clone(&s.clock),
                })),
            },
        }
    }
}

impl Drop for ProfSpan {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        // Pop this span's stack entry. It is normally the innermost
        // entry for its owner, but a panic unwinding through several
        // guards drops them in unspecified relative order, so search
        // from the top rather than assuming.
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|(owner, node)| *owner == s.owner && Arc::ptr_eq(node, &s.node))
            {
                stack.remove(pos);
            }
        });
        let heap = alloc::snapshot();
        let stats = &s.node.stats;
        stats.calls.fetch_add(1, Ordering::Relaxed);
        stats.wall_ns.fetch_add(
            s.clock.elapsed_ns().saturating_sub(s.start_ns),
            Ordering::Relaxed,
        );
        stats
            .allocs
            .fetch_add(heap.allocs.saturating_sub(s.start_allocs), Ordering::Relaxed);
        stats.alloc_bytes.fetch_add(
            heap.bytes.saturating_sub(s.start_alloc_bytes),
            Ordering::Relaxed,
        );
    }
}

struct CellInner {
    node: Arc<Node>,
    clock: Arc<dyn Clock>,
}

/// Pre-registered leaf handle for hot paths: times closures and tallies
/// items into one fixed node with a couple of atomic adds. Cloneable and
/// `Send`, so one cell can be shared with rayon workers. Disabled cells
/// run the closure untimed — the cost of instrumentation when nobody is
/// profiling is one `Option` check.
#[derive(Clone)]
pub struct ProfCell {
    inner: Option<Arc<CellInner>>,
}

impl Default for ProfCell {
    /// Same as [`ProfCell::disabled`].
    fn default() -> ProfCell {
        ProfCell::disabled()
    }
}

impl ProfCell {
    /// A cell that records nothing.
    pub fn disabled() -> ProfCell {
        ProfCell { inner: None }
    }

    /// Whether this cell actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f`, charging its wall time and one call to the cell.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            None => f(),
            Some(c) => {
                let t0 = c.clock.elapsed_ns();
                let r = f();
                let stats = &c.node.stats;
                stats.calls.fetch_add(1, Ordering::Relaxed);
                stats
                    .wall_ns
                    .fetch_add(c.clock.elapsed_ns().saturating_sub(t0), Ordering::Relaxed);
                r
            }
        }
    }

    /// Tallies `calls` calls without timing.
    pub fn add_calls(&self, calls: u64) {
        if let Some(c) = &self.inner {
            c.node.stats.calls.fetch_add(calls, Ordering::Relaxed);
        }
    }

    /// Credits processed records.
    pub fn add_records(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.node.stats.records.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Credits processed events.
    pub fn add_events(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.node.stats.events.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Credits processed bytes.
    pub fn add_bytes(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.node.stats.bytes.fetch_add(n, Ordering::Relaxed);
        }
    }
}

// Wrapping the `Arc` keeps clones of an enabled cell pointing at the
// same node even though `CellInner` itself is not `Clone`.
impl std::fmt::Debug for ProfCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfCell")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// One node of a serialised profile tree. Children are sorted by name,
/// so the serialisation is order-stable regardless of which thread
/// created what first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Span name (`testbed.run`, `swarm.dispatch`, …). Empty for the
    /// synthetic root.
    pub name: String,
    /// Completed calls (guard drops or cell tallies).
    pub calls: u64,
    /// Accumulated wall time, nanoseconds, children included.
    pub wall_ns: u64,
    /// Simulated time covered by this span, microseconds.
    pub sim_us: u64,
    /// Heap allocations observed during the span (masked field).
    pub allocs: u64,
    /// Heap bytes requested during the span (masked field).
    pub alloc_bytes: u64,
    /// Records processed (trace records swept, sunk, …).
    pub records: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Bytes processed.
    pub bytes: u64,
    /// Child spans, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Wall time not attributable to any child, nanoseconds.
    pub fn self_wall_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.children.iter().map(|c| c.wall_ns).sum())
    }

    /// Depth-first lookup by `/`-separated path (`testbed.run/swarm.run`).
    pub fn find(&self, path: &str) -> Option<&ProfileNode> {
        let (head, rest) = match path.split_once('/') {
            Some((h, r)) => (h, Some(r)),
            None => (path, None),
        };
        let child = self.children.iter().find(|c| c.name == head)?;
        match rest {
            None => Some(child),
            Some(rest) => child.find(rest),
        }
    }

    /// Sum of `f` over this node and every descendant.
    pub fn total(&self, f: impl Fn(&ProfileNode) -> u64 + Copy) -> u64 {
        f(self) + self.children.iter().map(|c| c.total(f)).sum::<u64>()
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", if self.name.is_empty() { "(root)" } else { &self.name });
        let _ = writeln!(
            out,
            "{label:<38} {:>10.3} {:>10.3} {:>9} {:>10} {:>12}",
            self.wall_ns as f64 / 1e6,
            self.self_wall_ns() as f64 / 1e6,
            self.calls,
            self.allocs,
            fmt_items(self),
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

fn fmt_items(n: &ProfileNode) -> String {
    if n.records > 0 {
        format!("{} rec", n.records)
    } else if n.events > 0 {
        format!("{} ev", n.events)
    } else if n.bytes > 0 {
        format!("{} B", n.bytes)
    } else {
        String::from("-")
    }
}

/// Identity of one perf-matrix cell, carried into its [`PerfReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfMeta {
    /// Scenario id (`pplive_clean`, `tvants_faulted`, …).
    pub scenario: String,
    /// Toolchain string (`rustc 1.87.0`…); informational.
    pub toolchain: String,
    /// Run seed.
    pub seed: u64,
    /// Swarm scale in permille of paper scale (integer so the report
    /// never carries float formatting surprises).
    pub scale_permille: u64,
    /// Simulated duration, seconds.
    pub sim_secs: u64,
}

/// The `BENCH_<scenario>.json` payload: one profiled run, serialised.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Snapshot schema version.
    pub schema: u32,
    /// Cell identity.
    pub meta: PerfMeta,
    /// The span tree.
    pub profile: ProfileNode,
    /// Derived per-phase throughput, items per wall-second (masked
    /// field: wall-derived).
    pub throughput: BTreeMap<String, f64>,
    /// Peak live heap during the run, bytes (masked field).
    pub peak_heap_bytes: u64,
    /// Metrics registry at end of run.
    pub metrics: MetricsSnapshot,
}

/// Current [`PerfReport::schema`] version.
pub const PERF_SCHEMA: u32 = 1;

/// Field names whose values are wall-clock observations of the host
/// rather than deterministic outputs: blanked by [`masked_json`], and
/// exactly the set allowed to differ between two same-seed reports.
pub const MASKED_FIELDS: &[&str] = &[
    "wall_ns",
    "allocs",
    "alloc_bytes",
    "throughput",
    "peak_heap_bytes",
    "toolchain",
];

impl PerfReport {
    /// Assembles a report from a finished profiled run: derives
    /// throughput from the tree and stamps the peak-heap counter.
    pub fn new(meta: PerfMeta, profile: ProfileNode, metrics: MetricsSnapshot) -> PerfReport {
        let mut throughput = BTreeMap::new();
        derive_throughput(&profile, "", &mut throughput);
        PerfReport {
            schema: PERF_SCHEMA,
            meta,
            profile,
            throughput,
            peak_heap_bytes: alloc::snapshot().peak_bytes,
            metrics,
        }
    }

    /// Pretty JSON, ready to be written as `BENCH_<scenario>.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses a `BENCH_*.json` file body.
    pub fn from_json(s: &str) -> Result<PerfReport, String> {
        serde_json::from_str(s).map_err(|e| format!("{e:?}"))
    }

    /// JSON with every [`MASKED_FIELDS`] value blanked: two same-seed
    /// runs must produce byte-identical masked JSON.
    pub fn masked_json(&self) -> String {
        let mut v = serde::Serialize::to_value(self);
        mask_value(&mut v);
        serde_json::to_string_pretty(&v).unwrap_or_default()
    }

    /// Flat `series name → value` view used by the perf-budget gate.
    /// Wall series carry the scenario totals; deterministic series
    /// (events, records, sim coverage) guard the workload itself.
    pub fn series(&self) -> BTreeMap<String, f64> {
        let p = &self.profile;
        let mut out = BTreeMap::new();
        let scen = &self.meta.scenario;
        out.insert(format!("{scen}/wall_ns"), p.total(|n| n.wall_ns).max(1) as f64);
        out.insert(format!("{scen}/allocs"), p.total(|n| n.allocs) as f64);
        out.insert(
            format!("{scen}/alloc_bytes"),
            p.total(|n| n.alloc_bytes) as f64,
        );
        out.insert(format!("{scen}/peak_heap_bytes"), self.peak_heap_bytes as f64);
        out.insert(format!("{scen}/events"), p.total(|n| n.events) as f64);
        out.insert(format!("{scen}/records"), p.total(|n| n.records) as f64);
        for (k, v) in &self.throughput {
            out.insert(format!("{scen}/{k}"), *v);
        }
        out
    }

    /// The indented flame-style table (`obs profile <FILE>`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {} · seed {} · scale {}‰ · {} sim-s · {}",
            self.meta.scenario,
            self.meta.seed,
            self.meta.scale_permille,
            self.meta.sim_secs,
            self.meta.toolchain,
        );
        let _ = writeln!(out, "peak heap: {:.2} MiB", self.peak_heap_bytes as f64 / (1 << 20) as f64);
        let _ = writeln!(
            out,
            "{:<38} {:>10} {:>10} {:>9} {:>10} {:>12}",
            "span", "total ms", "self ms", "calls", "allocs", "items"
        );
        for c in &self.profile.children {
            c.render_into(&mut out, 0);
        }
        if !self.throughput.is_empty() {
            let _ = writeln!(out, "throughput:");
            for (k, v) in &self.throughput {
                let _ = writeln!(out, "  {k:<40} {}/s", fmt_rate(*v));
            }
        }
        out
    }
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Compares two report JSON bodies modulo [`MASKED_FIELDS`]. `Ok` when
/// the masked forms match; `Err` carries the first differing line.
pub fn masked_diff(a: &str, b: &str) -> Result<(), String> {
    let mask = |s: &str| -> Result<String, String> {
        let mut v = serde_json::parse_value(s).map_err(|e| format!("unparsable report: {e:?}"))?;
        mask_value(&mut v);
        serde_json::to_string_pretty(&v).map_err(|e| format!("{e:?}"))
    };
    let (ma, mb) = (mask(a)?, mask(b)?);
    if ma == mb {
        return Ok(());
    }
    for (la, lb) in ma.lines().zip(mb.lines()) {
        if la != lb {
            return Err(format!("first divergence:\n  left:  {la}\n  right: {lb}"));
        }
    }
    Err(String::from("reports differ in length"))
}

fn mask_value(v: &mut Value) {
    match v {
        Value::Map(entries) => {
            for (k, val) in entries.iter_mut() {
                let masked = matches!(k, Value::Str(name) if MASKED_FIELDS.contains(&name.as_str()));
                if masked {
                    *val = Value::Null;
                } else {
                    mask_value(val);
                }
            }
        }
        Value::Seq(items) => {
            for item in items {
                mask_value(item);
            }
        }
        _ => {}
    }
}

fn derive_throughput(node: &ProfileNode, prefix: &str, out: &mut BTreeMap<String, f64>) {
    let path = if node.name.is_empty() {
        String::new()
    } else if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix}/{}", node.name)
    };
    if node.wall_ns > 0 && !path.is_empty() {
        let secs = node.wall_ns as f64 / 1e9;
        for (kind, n) in [
            ("records", node.records),
            ("events", node.events),
            ("bytes", node.bytes),
        ] {
            if n > 0 {
                out.insert(format!("{path}:{kind}_per_sec"), n as f64 / secs);
            }
        }
    }
    for c in &node.children {
        derive_throughput(c, &path, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn profiler() -> (Arc<ManualClock>, Profiler) {
        let clock = Arc::new(ManualClock::new());
        (clock.clone(), Profiler::new(clock))
    }

    #[test]
    fn spans_nest_ambient_and_accumulate() {
        let (clock, p) = profiler();
        {
            let run = p.span("run");
            clock.advance(10);
            {
                let _sweep = p.span("sweep");
                clock.advance(5);
            }
            {
                let sweep = p.span("sweep");
                sweep.add_records(100);
                clock.advance(5);
            }
            run.add_sim_us(1_000_000);
        }
        let tree = p.tree();
        let run = tree.find("run").expect("run node");
        assert_eq!(run.calls, 1);
        assert_eq!(run.wall_ns, 20_000);
        assert_eq!(run.sim_us, 1_000_000);
        let sweep = tree.find("run/sweep").expect("nested sweep");
        assert_eq!(sweep.calls, 2);
        assert_eq!(sweep.wall_ns, 10_000);
        assert_eq!(sweep.records, 100);
        assert_eq!(run.self_wall_ns(), 10_000);
    }

    #[test]
    fn cells_time_and_tally() {
        let (clock, p) = profiler();
        let root = p.span("run");
        let cell = root.cell("hook");
        let out = cell.time(|| {
            clock.advance(3);
            7
        });
        assert_eq!(out, 7);
        cell.add_records(2);
        cell.add_calls(4);
        drop(root);
        let tree = p.tree();
        let hook = tree.find("run/hook").expect("cell node");
        assert_eq!(hook.calls, 5);
        assert_eq!(hook.wall_ns, 3_000);
        assert_eq!(hook.records, 2);
    }

    #[test]
    fn disabled_guards_are_inert() {
        let span = ProfSpan::disabled();
        span.add_records(5);
        span.add_sim_us(5);
        assert!(!span.is_enabled());
        let cell = span.cell("x");
        assert!(!cell.is_enabled());
        assert_eq!(cell.time(|| 3), 3);
        cell.add_records(1);
        let _ = format!("{cell:?}");
    }

    #[test]
    fn panicking_scope_still_closes_its_spans() {
        let (clock, p) = profiler();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = p.span("a");
            clock.advance(2);
            let _b = p.span("b");
            clock.advance(1);
            panic!("boom");
        }));
        assert!(caught.is_err());
        let tree = p.tree();
        let a = tree.find("a").expect("a closed");
        let b = tree.find("a/b").expect("b closed under a");
        assert_eq!(a.calls, 1);
        assert_eq!(b.calls, 1);
        // The stack is balanced again: a fresh span roots at top level.
        drop(p.span("after"));
        assert!(tree.find("a/after").is_none());
        assert!(p.tree().find("after").is_some());
    }

    #[test]
    fn two_profilers_interleave_without_cross_talk() {
        let (_, p1) = profiler();
        let (_, p2) = profiler();
        let _a = p1.span("a");
        let _x = p2.span("x");
        let _b = p1.span("b");
        drop(_b);
        drop(_x);
        drop(_a);
        assert!(p1.tree().find("a/b").is_some());
        assert!(p2.tree().find("x").is_some());
        assert!(p2.tree().find("a").is_none());
    }

    fn sample_report(wall: u64) -> PerfReport {
        let (clock, p) = profiler();
        {
            let run = p.span("run");
            run.add_records(1_000);
            run.add_events(500);
            clock.advance(wall);
        }
        PerfReport::new(
            PerfMeta {
                scenario: "test_clean".into(),
                toolchain: "rustc test".into(),
                seed: 7,
                scale_permille: 20,
                sim_secs: 30,
            },
            p.tree(),
            MetricsSnapshot {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            },
        )
    }

    #[test]
    fn report_round_trips_and_masks() {
        let r = sample_report(1_000);
        let json = r.to_json();
        let back = PerfReport::from_json(&json).expect("round trip");
        assert_eq!(back.meta.scenario, "test_clean");
        assert_eq!(back.profile.find("run").map(|n| n.records), Some(1_000));
        // Different wall time, same workload → masked-equal.
        let slower = sample_report(2_000);
        masked_diff(&json, &slower.to_json()).expect("wall time is masked");
        // Different workload → masked diff trips.
        let mut other = sample_report(1_000);
        other.profile.children[0].records = 1;
        assert!(masked_diff(&json, &other.to_json()).is_err());
    }

    #[test]
    fn series_and_throughput_cover_the_tree() {
        let r = sample_report(1_000_000); // ManualClock advances in µs: 1 s
        let series = r.series();
        assert_eq!(series["test_clean/records"], 1_000.0);
        assert_eq!(series["test_clean/events"], 500.0);
        assert!(series["test_clean/wall_ns"] >= 1e9);
        let rate = series["test_clean/run:records_per_sec"];
        assert!((rate - 1e3).abs() < 1e-6, "1000 records / 1s, got {rate}");
        let text = r.render();
        assert!(text.contains("run"));
        assert!(text.contains("records_per_sec"));
        assert!(text.contains("scenario test_clean"));
    }
}

//! Named counters, gauges and histograms with a stable snapshot export.
//!
//! Counter and gauge updates are commutative atomic adds, so metrics stay
//! deterministic even when incremented from rayon workers (the analysis
//! layer); histograms reuse [`netaware_sim::stats::Histogram`] (see its
//! docs for the dense-integer semantics) behind a mutex, and merging is
//! bucket-wise addition, again order-independent. Snapshots are
//! `BTreeMap`-ordered, so the JSON/CSV exports are byte-stable.

use crate::locked;
use netaware_sim::stats::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to a named monotonically-increasing counter. Disabled handles
/// (from a disabled [`crate::Obs`]) are no-ops.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to a named signed gauge (last-set value).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to a named dense-integer histogram.
#[derive(Clone, Debug, Default)]
pub struct HistogramMetric(Option<Arc<Mutex<Histogram>>>);

impl HistogramMetric {
    /// Records one observation (clamped into the bucket range).
    pub fn record(&self, v: usize) {
        if let Some(cell) = &self.0 {
            locked(cell).push(v);
        }
    }

    /// Records an observation with a weight (e.g. bytes).
    pub fn record_weighted(&self, v: usize, w: u64) {
        if let Some(cell) = &self.0 {
            locked(cell).push_weighted(v, w);
        }
    }
}

/// The metrics registry: name → cell. Handles are cheap Arc clones, so
/// hot paths register once and update lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = locked(&self.counters);
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = locked(&self.gauges);
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    /// The histogram named `name` over values `0..upper`, registering it
    /// on first use (later calls keep the original bucket range).
    pub fn histogram(&self, name: &str, upper: usize) -> HistogramMetric {
        let mut map = locked(&self.histograms);
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(upper.max(1)))));
        HistogramMetric(Some(Arc::clone(cell)))
    }

    /// A stable snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = locked(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = locked(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = locked(&self.histograms)
            .iter()
            .map(|(k, v)| {
                let h = locked(v);
                (
                    k.clone(),
                    HistogramSummary {
                        total: h.total(),
                        p50: h.quantile(0.5),
                        p90: h.quantile(0.9),
                        p99: h.quantile(0.99),
                        max: h.quantile(1.0),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Quantile digest of one histogram at snapshot time. Percentiles are
/// bucket indices from the fixed-bucket [`Histogram`], so they are
/// exactly reproducible across runs and platforms.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Total recorded weight.
    pub total: u64,
    /// Median bucket (`None` when empty).
    pub p50: Option<usize>,
    /// 90th-percentile bucket.
    pub p90: Option<usize>,
    /// 99th-percentile bucket.
    pub p99: Option<usize>,
    /// Highest occupied bucket.
    pub max: Option<usize>,
}

/// Point-in-time view of the registry, ordered by name for stable
/// serialisation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Pretty JSON export (byte-stable across identical runs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// CSV export: `kind,name,stat,value`, one line per scalar, sorted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,stat,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},value,{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("histogram,{name},total,{}\n", h.total));
            for (stat, q) in [("p50", h.p50), ("p90", h.p90), ("p99", h.p99), ("max", h.max)] {
                if let Some(q) = q {
                    out.push_str(&format!("histogram,{name},{stat},{q}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::new();
        let a = r.counter("proto.chunks_requested");
        let b = r.counter("proto.chunks_requested");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("analysis.peers_observed");
        g.set(41);
        g.add(1);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = HistogramMetric::default();
        h.record(3);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.mid").set(-7);
        let h = r.histogram("h.fanout", 16);
        for v in [1, 2, 2, 3, 9] {
            h.record(v);
        }
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.gauges["m.mid"], -7);
        let hs = &snap.histograms["h.fanout"];
        assert_eq!(hs.total, 5);
        assert_eq!(hs.p50, Some(2));
        assert_eq!(hs.p99, Some(9));
        assert_eq!(hs.max, Some(9));
        // Same registry state → identical exports.
        assert_eq!(snap.to_json(), r.snapshot().to_json());
        assert_eq!(snap.to_csv(), r.snapshot().to_csv());
        assert!(snap.to_csv().starts_with("kind,name,stat,value\n"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(-2);
        let h = r.histogram("h", 128);
        for v in 0..100 {
            h.record(v);
        }
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].p99, Some(98));
        let back: MetricsSnapshot =
            serde_json::from_str(&snap.to_json()).expect("snapshot round trip");
        assert_eq!(back, snap);
        // CSV carries the new percentile column.
        assert!(snap.to_csv().contains("histogram,h,p99,98\n"));
    }

    #[test]
    fn histogram_registration_keeps_first_range() {
        let r = Registry::new();
        r.histogram("h", 4).record(100); // clamps into 0..4
        r.histogram("h", 1024).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].max, Some(3));
        assert_eq!(snap.histograms["h"].total, 2);
    }
}

//! Wall-clock abstraction and span timing.
//!
//! The determinism contract (ND01) bans `Instant`/`SystemTime` from the
//! simulation-facing crates; this module is where the one sanctioned
//! wall-clock read lives. Layers that may spend real time (analysis
//! passes, corpus streaming, report emission) time themselves through
//! the [`Clock`] trait, so they never name a concrete clock — tests
//! inject a [`ManualClock`], production uses [`WallClock`], and the
//! simulation crates stay wall-clock-free.

use crate::locked;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Source of elapsed real time, microseconds since the clock's epoch.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock was created (or last reset).
    fn elapsed_us(&self) -> u64;

    /// Nanoseconds elapsed. The profiler times sub-microsecond scopes
    /// (per-event behaviour hooks), so clocks that can should override
    /// this; the default derives it from [`Clock::elapsed_us`].
    fn elapsed_ns(&self) -> u64 {
        self.elapsed_us().saturating_mul(1_000)
    }
}

/// The real monotonic clock. This is the only place in the workspace
/// where library code reads `Instant`; everything else goes through
/// [`Clock`].
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for tests: `elapsed_us` returns whatever was
/// last set, so span durations are exact and reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_us: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now_us.fetch_add(us, Ordering::SeqCst);
    }

    /// Sets the absolute elapsed time.
    pub fn set(&self, us: u64) {
        self.now_us.store(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn elapsed_us(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }
}

/// One completed span: a named phase and how long it took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (`analysis.sweep`, `report.render`, …).
    pub name: String,
    /// Wall time spent in the phase, microseconds.
    pub elapsed_us: u64,
}

/// Collects completed spans. Timings are wall-clock observations and are
/// deliberately kept out of the deterministic artifacts (event log,
/// metrics snapshot); they surface only through explicit reports like
/// `netaware-cli run` and `paper_tables --timings`.
pub struct Timings {
    clock: Arc<dyn Clock>,
    spans: Mutex<Vec<PhaseTiming>>,
}

impl std::fmt::Debug for Timings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timings")
            .field("spans", &locked(&self.spans).len())
            .finish()
    }
}

impl Timings {
    /// A recorder reading from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Timings {
            clock,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Starts a span; the elapsed time is recorded when the guard drops.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span {
            timings: Some(self),
            name: name.to_string(),
            start_us: self.clock.elapsed_us(),
        }
    }

    /// Completed spans, in completion order.
    pub fn snapshot(&self) -> Vec<PhaseTiming> {
        locked(&self.spans).clone()
    }
}

/// RAII guard for one running span. A disabled guard (from a disabled
/// `Obs`) records nothing.
pub struct Span<'a> {
    timings: Option<&'a Timings>,
    name: String,
    start_us: u64,
}

impl Span<'_> {
    /// A guard that records nothing on drop.
    pub fn disabled() -> Span<'static> {
        Span {
            timings: None,
            name: String::new(),
            start_us: 0,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.timings {
            let elapsed_us = t.clock.elapsed_us().saturating_sub(self.start_us);
            locked(&t.spans).push(PhaseTiming {
                name: std::mem::take(&mut self.name),
                elapsed_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_drives_spans_exactly() {
        let clock = Arc::new(ManualClock::new());
        let t = Timings::new(clock.clone());
        {
            let _a = t.span("phase.a");
            clock.advance(1_500);
        }
        clock.set(10_000);
        {
            let _b = t.span("phase.b");
            clock.advance(250);
        }
        let spans = t.snapshot();
        assert_eq!(
            spans,
            vec![
                PhaseTiming { name: "phase.a".into(), elapsed_us: 1_500 },
                PhaseTiming { name: "phase.b".into(), elapsed_us: 250 },
            ]
        );
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.elapsed_us();
        let b = c.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _s = Span::disabled();
    }
}
